"""A fleet of Southampton server shards behind one station-facing surface.

"The Beauty of the Commons" shows stations hopping between base stations
to balance load; here the Southampton end grows the matching shape — N
:class:`~repro.server.server.SouthamptonServer` shards that share the
*control plane* (power-state store, special-command queues, code releases,
id sequencers) while keeping independent *data planes* (per-shard archive
indexes, upload logs, load accounting).  A station may carry any session
to any shard: the override it receives and the specials it drains are the
same everywhere, while the bytes it uploads land on — and load — only the
shard it chose.

Operators talk to the fleet object; stations talk to a shard picked by
their :class:`~repro.core.targets.FleetClient` policy.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.server.deployment import CodeRelease
from repro.server.server import SouthamptonServer, SpecialCommand
from repro.server.state_store import PowerStateStore, Sequencer, TenantStateStore
from repro.sim.kernel import Simulation


def tenant_map(station_names: Sequence[str], tenant_size: int) -> Callable[[str], str]:
    """Group ``station_names`` into tenants of ``tenant_size`` by position.

    Unknown stations (late joiners, tests poking the store directly) fall
    back to a tenant of their own, which keeps the min rule harmless.
    """
    mapping = {
        name: f"tenant{index // tenant_size}"
        for index, name in enumerate(station_names)
    }

    def tenant_of(station: str) -> str:
        return mapping.get(station, station)

    return tenant_of


class ServerFleet:
    """N server shards sharing one control plane.

    ``tenant_of`` switches the shared power-state store to per-tenant min
    rule (see :class:`~repro.server.state_store.TenantStateStore`); without
    it the fleet behaves like the paper's single global-minimum store.
    """

    def __init__(
        self,
        sim: Simulation,
        count: int,
        *,
        tenant_of: Optional[Callable[[str], str]] = None,
    ) -> None:
        if count < 1:
            raise ValueError(f"fleet needs at least one shard, got {count}")
        self.sim = sim
        power_states: Any = (
            TenantStateStore(tenant_of) if tenant_of is not None else PowerStateStore()
        )
        specials: Dict[str, List[SpecialCommand]] = {}
        releases: Dict[str, CodeRelease] = {}
        command_ids = Sequencer()
        ingest_seq = Sequencer()
        seen_names: set = set()
        self.shards: List[SouthamptonServer] = [
            SouthamptonServer(
                sim,
                name=f"server{index}",
                power_states=power_states,
                specials=specials,
                releases=releases,
                command_ids=command_ids,
                ingest_seq=ingest_seq,
                seen_names=seen_names,
            )
            for index in range(count)
        ]
        for shard in self.shards:
            shard.fleet = self

    def __len__(self) -> int:
        return len(self.shards)

    def shard(self, index: int) -> SouthamptonServer:
        """The shard at ``index`` (stations index shards, not names)."""
        return self.shards[index]

    # ------------------------------------------------------------------
    # Shared control plane (operator-facing)
    # ------------------------------------------------------------------
    @property
    def power_states(self) -> Any:
        """The shared state store (same object on every shard)."""
        return self.shards[0].power_states

    @property
    def releases(self) -> Dict[str, CodeRelease]:
        """The shared release registry (same dict on every shard)."""
        return self.shards[0].releases

    def set_manual_override(self, state: Optional[int]) -> None:
        """Operator override, visible through every shard."""
        self.power_states.set_manual_override(state)

    def stage_special(self, station: str, script: Callable[[], str]) -> int:
        """Queue a one-shot command; the station drains it from any shard."""
        return self.shards[0].stage_special(station, script)

    def publish_release(self, release: CodeRelease) -> None:
        """Publish to the shared registry (downloadable from any shard)."""
        self.shards[0].publish_release(release)

    def get_release(self, name: str) -> Optional[CodeRelease]:
        """Fetch a release descriptor by name."""
        return self.shards[0].get_release(name)

    def last_checksum_report(self, release_name: str) -> Optional[Tuple[float, str, str, str]]:
        """Most recent checksum report for a release across all shards."""
        matching = [
            report
            for shard in self.shards
            for report in shard.reported_checksums
            if report[2] == release_name
        ]
        if not matching:
            return None
        matching.sort(key=lambda report: report[0])
        return matching[-1]

    # ------------------------------------------------------------------
    # Data-plane aggregation (analysis-facing)
    # ------------------------------------------------------------------
    def received_bytes(self, station: Optional[str] = None, kind: Optional[str] = None,
                       unique: bool = False) -> int:
        """Total payload received across the fleet, optionally filtered."""
        return sum(
            shard.received_bytes(station=station, kind=kind, unique=unique)
            for shard in self.shards
        )

    @property
    def retransfers(self) -> int:
        """Duplicate-file uploads absorbed across the fleet."""
        return sum(shard.retransfers for shard in self.shards)

    def load_hints(self) -> Dict[str, int]:
        """Per-shard trailing-window load, as advertised to stations."""
        return {shard.name: shard.recent_load() for shard in self.shards}
