"""The Southampton operations console: automated station management.

Section VI's closing lesson — "the importance of a reliable robust remote
configuration system" — as an operator bot that runs on the server side
every day and uses only the channels the deployed system had:

- **health review** (from :class:`~repro.server.archive.ScienceArchive`):
  declining batteries, snow burial, humidity, stations gone silent;
- **automatic overrides**: hold both stations down when one battery is
  declining (the operators did this by hand in Fig 5);
- **release management**: publish code, watch the immediately-reported
  checksums, and re-stage failed downloads as special commands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.server.archive import ScienceArchive
from repro.server.deployment import CodeRelease
from repro.server.server import SouthamptonServer
from repro.sim.kernel import Simulation
from repro.sim.simtime import DAY


@dataclass(frozen=True)
class Alert:
    """One operator-facing finding from the daily review."""

    time: float
    station: str
    kind: str
    detail: str


class OperationsConsole:
    """Daily automated review + remedial actions on the server side.

    Parameters
    ----------
    sim, server:
        Kernel and the server whose uploads are reviewed.
    auto_override:
        When True, a station with a declining battery trend causes a
        server-side manual override one state below the healthy minimum —
        pre-empting the stations' own (slower) min-rule coupling.
    review_hour:
        Time of day the review runs (after the stations' midday uploads).
    """

    #: A station is "silent" after this many days without an upload.
    SILENCE_DAYS = 2.0

    def __init__(
        self,
        sim: Simulation,
        server: SouthamptonServer,
        stations: Optional[List[str]] = None,
        auto_override: bool = False,
        review_hour: float = 16.0,
        monthly_data_budget_mb: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.server = server
        self.archive = ScienceArchive(server)
        self.stations = stations or ["base", "reference"]
        self.auto_override = auto_override
        self.review_hour = review_hour
        #: GPRS data is "paid for per megabyte" (Section II): alert when a
        #: station's calendar-month volume crosses this budget.
        self.monthly_data_budget_mb = monthly_data_budget_mb
        self.alerts: List[Alert] = []
        self.override_actions: List[tuple] = []
        self._budget_flagged: set = set()
        sim.process(self._daily_review(), name="operations.review")

    # ------------------------------------------------------------------
    # Review
    # ------------------------------------------------------------------
    def _alert(self, station: str, kind: str, detail: str) -> None:
        alert = Alert(time=self.sim.now, station=station, kind=kind, detail=detail)
        self.alerts.append(alert)
        self.sim.trace.emit("operations", "alert", station=station, alert=kind)

    def _last_contact(self, station: str) -> Optional[float]:
        times = [u.time for u in self.server.uploads if u.station == station]
        return max(times) if times else None

    def review_once(self) -> List[Alert]:
        """Run one review pass; returns the alerts it raised."""
        before = len(self.alerts)
        for station in self.stations:
            last = self._last_contact(station)
            if last is not None and self.sim.now - last > self.SILENCE_DAYS * DAY:
                self._alert(station, "silent",
                            f"no upload for {(self.sim.now - last) / DAY:.1f} days")
            if self.archive.battery_declining(station):
                self._alert(station, "battery_declining",
                            "daily-minimum voltage trending down")
            if self.archive.snow_burial_risk(station):
                self._alert(station, "burial_risk", "snow approaching the frame")
            if self.archive.enclosure_humidity_alert(station):
                self._alert(station, "humidity", "condensation risk in enclosure")
            self._check_data_budget(station)
        new_alerts = self.alerts[before:]
        if self.auto_override:
            self._apply_override_policy(new_alerts)
        return new_alerts

    def _apply_override_policy(self, new_alerts: List[Alert]) -> None:
        declining = {a.station for a in new_alerts if a.kind == "battery_declining"}
        if declining:
            # Hold the whole system one notch down (never to 0: the
            # station-side floor would ignore it anyway).
            states = [
                report.state
                for station in self.stations
                if (report := self.server.power_states.report_for(station)) is not None
            ]
            if states:
                target = max(1, min(states) - 1)
                self.server.power_states.set_manual_override(target)
                self.override_actions.append((self.sim.now, target))
                self.sim.trace.emit("operations", "auto_override", state=target)
        elif self.server.power_states.manual_override is not None:
            # All clear: release the hold.
            self.server.power_states.set_manual_override(None)
            self.override_actions.append((self.sim.now, None))

    def _check_data_budget(self, station: str) -> None:
        """Per-MB billing watch: alert once per (station, month) over budget."""
        if self.monthly_data_budget_mb is None:
            return
        month_key = (station, self.sim.utcnow().strftime("%Y-%m"))
        if month_key in self._budget_flagged:
            return
        month_start_day = self.sim.utcnow().replace(day=1)
        from repro.sim.simtime import from_datetime

        start_s = from_datetime(month_start_day)
        month_bytes = sum(
            u.nbytes for u in self.server.uploads
            if u.station == station and u.time >= start_s
        )
        if month_bytes / 1e6 > self.monthly_data_budget_mb:
            self._budget_flagged.add(month_key)
            self._alert(station, "data_budget",
                        f"{month_bytes / 1e6:.1f} MB this month exceeds "
                        f"{self.monthly_data_budget_mb:.0f} MB budget")

    def _daily_review(self):
        from repro.sim.simtime import next_time_of_day

        while True:
            yield self.sim.timeout(
                next_time_of_day(self.sim.now, self.review_hour) - self.sim.now
            )
            self.review_once()

    # ------------------------------------------------------------------
    # Release management
    # ------------------------------------------------------------------
    def push_release(self, release: CodeRelease) -> None:
        """Publish a release for the stations to pull."""
        self.server.publish_release(release)

    def release_status(self, release_name: str) -> str:
        """"installed" / "corrupt" / "pending" from the checksum channel."""
        release = self.server.get_release(release_name)
        if release is None:
            return "unknown"
        report = self.server.last_checksum_report(release_name)
        if report is None:
            return "pending"
        return "installed" if report[3] == release.md5 else "corrupt"

    def alerts_by_kind(self) -> Dict[str, int]:
        """Alert counts, for the daily operator summary."""
        counts: Dict[str, int] = {}
        for alert in self.alerts:
            counts[alert.kind] = counts.get(alert.kind, 0) + 1
        return counts
