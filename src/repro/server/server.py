"""The in-process model of the project server in Southampton.

Every method is a plain synchronous call: the *time and failure* of
reaching the server belong to the station's modem session, not to the
server itself.  Station code must only call these while its GPRS session is
up — the clients in :mod:`repro.core.sync` and :mod:`repro.core.station`
enforce that.

A server can run standalone (the paper's deployment) or as one shard of a
:class:`~repro.server.fleet.ServerFleet`: shards share the control plane
(power states, special queues, releases, id sequencers) but keep their own
data-plane archives, so a station may upload to any shard and still see
one coherent service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.server.deployment import CodeRelease
from repro.server.index import ArchiveIndex
from repro.server.state_store import PowerStateStore, Sequencer
from repro.sim.kernel import Simulation
from repro.sim.simtime import DAY


@dataclass
class SpecialCommand:
    """A one-shot command script staged for a station.

    ``script`` is a callable executed on the station; whatever string it
    returns is the command's output, which reaches Southampton via the
    normal log upload — i.e. a day later (the Section VI 24/48-hour lesson).
    """

    command_id: int
    script: Callable[[], str]
    staged_at: float


@dataclass
class DataUpload:
    """One received station upload."""

    station: str
    time: float
    nbytes: int
    kind: str
    payload: Any = None
    name: Optional[str] = None


#: How far back :meth:`SouthamptonServer.recent_load` looks when computing
#: the load hint piggybacked on responses for the station-side hop policy.
LOAD_WINDOW_S = DAY


class SouthamptonServer:
    """State sync + data ingest + special commands + code releases."""

    def __init__(
        self,
        sim: Simulation,
        name: str = "server",
        *,
        power_states: Optional[Any] = None,
        specials: Optional[Dict[str, List[SpecialCommand]]] = None,
        releases: Optional[Dict[str, CodeRelease]] = None,
        command_ids: Optional[Sequencer] = None,
        ingest_seq: Optional[Sequencer] = None,
        seen_names: Optional[set] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.power_states = power_states if power_states is not None else PowerStateStore()
        self.uploads: List[DataUpload] = []
        self.index = ArchiveIndex()
        self._specials: Dict[str, List[SpecialCommand]] = (
            specials if specials is not None else {}
        )
        self._command_ids = command_ids if command_ids is not None else Sequencer()
        self._ingest_seq = ingest_seq if ingest_seq is not None else Sequencer()
        self.releases: Dict[str, CodeRelease] = releases if releases is not None else {}
        self.reported_checksums: List[Tuple[float, str, str, str]] = []
        #: Back-reference set by :class:`~repro.server.fleet.ServerFleet`.
        self.fleet: Optional[Any] = None
        # Shared across a fleet: a re-upload is a retransfer no matter
        # which shard first archived the file.
        self._seen_names: set = seen_names if seen_names is not None else set()
        self.retransfers = 0
        self.state_uploads = 0
        self._load_events: List[Tuple[float, int]] = []
        self._load_start = 0
        self._load_total = 0
        # The standalone server keeps its historical label sets (and trace
        # source "server") byte-for-byte; only fleet shards add the label.
        self._metric_labels: Dict[str, str] = {} if name == "server" else {"server": name}

    # ------------------------------------------------------------------
    # Power-state sync (Section III)
    # ------------------------------------------------------------------
    def upload_power_state(self, station: str, state: int) -> None:
        """A station reports its locally-computed power state."""
        self.power_states.upload(station, state, time=self.sim.now)
        self.state_uploads += 1
        self.sim.trace.emit(self.name, "power_state_upload", station=station, state=state)

    def get_override_state(self, station: str) -> Optional[int]:
        """The min-rule override for ``station`` (None if nothing known)."""
        override = self.power_states.override_for(station)
        self.sim.trace.emit(self.name, "override_served", station=station, override=override)
        return override

    def sync_session(self, station: str, state: int) -> Dict[str, Any]:
        """One batched request: upload state, fetch override, drain a special.

        The paper's stations spend three modem round-trips per contact on
        state sync alone; at fleet scale that is the dominant server load,
        so this endpoint folds them into a single request.  The response
        piggybacks fleet ``loads`` hints (None when standalone) that feed
        the station-side hop policy.
        """
        self.upload_power_state(station, state)
        override = self.get_override_state(station)
        special = self.get_special(station)
        loads = self.fleet.load_hints() if self.fleet is not None else None
        self.sim.trace.emit(
            self.name, "sync_session",
            station=station, state=state, override=override,
            special=special is not None,
        )
        self.sim.obs.metrics.inc(
            "server_sync_sessions_total", station=station, **self._metric_labels
        )
        return {"server": self.name, "override": override, "special": special,
                "loads": loads}

    # ------------------------------------------------------------------
    # Data ingest
    # ------------------------------------------------------------------
    def upload_data(self, station: str, nbytes: int, kind: str, payload: Any = None,
                    name: Optional[str] = None) -> None:
        """Receive one upload (GPS files, probe data, logs...).

        ``name`` (the station-side file name) marks a *tracked* artifact
        reaching the archive; nameless uploads (priority summaries,
        ad-hoc blobs) carry derived data and stay outside the provenance
        ledger.  A named file seen before (the station's delete failed, so
        it re-uploaded) is a *retransfer*: it is archived again but kept
        out of the unique-byte accounting and the provenance "archived"
        stream, which treats a second archive of one artifact as an anomaly.
        """
        retransfer = False
        if name is not None:
            seen_key = (station, name)
            retransfer = seen_key in self._seen_names
            self._seen_names.add(seen_key)
        self.uploads.append(
            DataUpload(station=station, time=self.sim.now, nbytes=nbytes, kind=kind,
                       payload=payload, name=name)
        )
        self.index.ingest(station=station, kind=kind, nbytes=nbytes, payload=payload,
                          seq=self._ingest_seq.next(), retransfer=retransfer)
        self._load_events.append((self.sim.now, nbytes))
        self._load_total += nbytes
        metrics = self.sim.obs.metrics
        metrics.inc("server_uploads_total", station=station, kind=kind,
                    **self._metric_labels)
        metrics.inc("server_upload_bytes_total", nbytes, station=station, kind=kind,
                    **self._metric_labels)
        if retransfer:
            self.retransfers += 1
            metrics.inc("server_retransfers_total", station=station, kind=kind,
                        **self._metric_labels)
            self.sim.trace.emit("prov", "retransferred", station=station,
                                file=name, file_kind=kind, bytes=nbytes)
        elif name is not None:
            self.sim.trace.emit("prov", "archived", station=station,
                                file=name, file_kind=kind, bytes=nbytes)
        if self.fleet is not None or self.name != "server":
            metrics.set_gauge("server_load", self.recent_load(), server=self.name)

    def received_bytes(self, station: Optional[str] = None, kind: Optional[str] = None,
                       unique: bool = False) -> int:
        """Total payload received, optionally filtered.

        ``unique=True`` excludes re-transferred files, i.e. counts each
        tracked artifact's bytes once no matter how many delete-failure
        retries it took to get them off the station.
        """
        return self.index.total_bytes(station=station, kind=kind, unique=unique)

    def recent_load(self) -> int:
        """Payload bytes received in the trailing :data:`LOAD_WINDOW_S`.

        This is the hint a shard advertises to hopping stations; a rolling
        sum so the cost stays O(evicted events), not O(history).
        """
        cutoff = self.sim.now - LOAD_WINDOW_S
        events = self._load_events
        while self._load_start < len(events) and events[self._load_start][0] < cutoff:
            self._load_total -= events[self._load_start][1]
            self._load_start += 1
        return self._load_total

    # ------------------------------------------------------------------
    # Special commands (Section VI)
    # ------------------------------------------------------------------
    def stage_special(self, station: str, script: Callable[[], str]) -> int:
        """Queue a one-shot command for the station's next contact."""
        command = SpecialCommand(
            command_id=self._command_ids.next(), script=script, staged_at=self.sim.now
        )
        self._specials.setdefault(station, []).append(command)
        return command.command_id

    def get_special(self, station: str) -> Optional[SpecialCommand]:
        """Hand the oldest staged command to the station (removing it)."""
        queue = self._specials.get(station, [])
        if not queue:
            return None
        return queue.pop(0)

    # ------------------------------------------------------------------
    # Code releases (Section VI)
    # ------------------------------------------------------------------
    def publish_release(self, release: CodeRelease) -> None:
        """Make a code release available for download."""
        self.releases[release.name] = release

    def get_release(self, name: str) -> Optional[CodeRelease]:
        """Fetch a release descriptor by name."""
        return self.releases.get(name)

    def report_checksum(self, station: str, release_name: str, md5: str) -> None:
        """The station's immediate HTTP-GET checksum report.

        This is the paper's workaround for the 24-hour log delay: "the
        script ... uploads the MD5sum that it has calculated using a HTTP
        GET ... this enables researchers to know immediately if the
        transfer was successful."
        """
        self.reported_checksums.append((self.sim.now, station, release_name, md5))
        self.sim.trace.emit(
            self.name, "checksum_reported", station=station, release=release_name, md5=md5
        )

    def last_checksum_report(self, release_name: str) -> Optional[Tuple[float, str, str, str]]:
        """Most recent checksum report for a release, if any."""
        matching = [r for r in self.reported_checksums if r[2] == release_name]
        return matching[-1] if matching else None
