"""The in-process model of the project server in Southampton.

Every method is a plain synchronous call: the *time and failure* of
reaching the server belong to the station's modem session, not to the
server itself.  Station code must only call these while its GPRS session is
up — the clients in :mod:`repro.core.sync` and :mod:`repro.core.station`
enforce that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.server.deployment import CodeRelease
from repro.server.state_store import PowerStateStore
from repro.sim.kernel import Simulation


@dataclass
class SpecialCommand:
    """A one-shot command script staged for a station.

    ``script`` is a callable executed on the station; whatever string it
    returns is the command's output, which reaches Southampton via the
    normal log upload — i.e. a day later (the Section VI 24/48-hour lesson).
    """

    command_id: int
    script: Callable[[], str]
    staged_at: float


@dataclass
class DataUpload:
    """One received station upload."""

    station: str
    time: float
    nbytes: int
    kind: str
    payload: Any = None


class SouthamptonServer:
    """State sync + data ingest + special commands + code releases."""

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self.power_states = PowerStateStore()
        self.uploads: List[DataUpload] = []
        self._specials: Dict[str, List[SpecialCommand]] = {}
        self._next_command_id = 1
        self.releases: Dict[str, CodeRelease] = {}
        self.reported_checksums: List[Tuple[float, str, str, str]] = []

    # ------------------------------------------------------------------
    # Power-state sync (Section III)
    # ------------------------------------------------------------------
    def upload_power_state(self, station: str, state: int) -> None:
        """A station reports its locally-computed power state."""
        self.power_states.upload(station, state, time=self.sim.now)
        self.sim.trace.emit("server", "power_state_upload", station=station, state=state)

    def get_override_state(self, station: str) -> Optional[int]:
        """The min-rule override for ``station`` (None if nothing known)."""
        override = self.power_states.override_for(station)
        self.sim.trace.emit("server", "override_served", station=station, override=override)
        return override

    # ------------------------------------------------------------------
    # Data ingest
    # ------------------------------------------------------------------
    def upload_data(self, station: str, nbytes: int, kind: str, payload: Any = None,
                    name: Optional[str] = None) -> None:
        """Receive one upload (GPS files, probe data, logs...).

        ``name`` (the station-side file name) marks a *tracked* artifact
        reaching the archive; nameless uploads (priority summaries,
        ad-hoc blobs) carry derived data and stay outside the provenance
        ledger.
        """
        self.uploads.append(
            DataUpload(station=station, time=self.sim.now, nbytes=nbytes, kind=kind,
                       payload=payload)
        )
        metrics = self.sim.obs.metrics
        metrics.inc("server_uploads_total", station=station, kind=kind)
        metrics.inc("server_upload_bytes_total", nbytes, station=station, kind=kind)
        if name is not None:
            self.sim.trace.emit("prov", "archived", station=station,
                                file=name, file_kind=kind, bytes=nbytes)

    def received_bytes(self, station: Optional[str] = None, kind: Optional[str] = None) -> int:
        """Total payload received, optionally filtered."""
        return sum(
            upload.nbytes
            for upload in self.uploads
            if (station is None or upload.station == station)
            and (kind is None or upload.kind == kind)
        )

    # ------------------------------------------------------------------
    # Special commands (Section VI)
    # ------------------------------------------------------------------
    def stage_special(self, station: str, script: Callable[[], str]) -> int:
        """Queue a one-shot command for the station's next contact."""
        command = SpecialCommand(
            command_id=self._next_command_id, script=script, staged_at=self.sim.now
        )
        self._next_command_id += 1
        self._specials.setdefault(station, []).append(command)
        return command.command_id

    def get_special(self, station: str) -> Optional[SpecialCommand]:
        """Hand the oldest staged command to the station (removing it)."""
        queue = self._specials.get(station, [])
        if not queue:
            return None
        return queue.pop(0)

    # ------------------------------------------------------------------
    # Code releases (Section VI)
    # ------------------------------------------------------------------
    def publish_release(self, release: CodeRelease) -> None:
        """Make a code release available for download."""
        self.releases[release.name] = release

    def get_release(self, name: str) -> Optional[CodeRelease]:
        """Fetch a release descriptor by name."""
        return self.releases.get(name)

    def report_checksum(self, station: str, release_name: str, md5: str) -> None:
        """The station's immediate HTTP-GET checksum report.

        This is the paper's workaround for the 24-hour log delay: "the
        script ... uploads the MD5sum that it has calculated using a HTTP
        GET ... this enables researchers to know immediately if the
        transfer was successful."
        """
        self.reported_checksums.append((self.sim.now, station, release_name, md5))
        self.sim.trace.emit(
            "server", "checksum_reported", station=station, release=release_name, md5=md5
        )

    def last_checksum_report(self, release_name: str) -> Optional[Tuple[float, str, str, str]]:
        """Most recent checksum report for a release, if any."""
        matching = [r for r in self.reported_checksums if r[2] == release_name]
        return matching[-1] if matching else None
