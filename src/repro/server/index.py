"""Ingest-time archive indexes.

The original :class:`~repro.server.archive.ScienceArchive` answered every
query with a full scan of the server's unbounded ``uploads`` list — O(N)
per call, called per station per report.  Each server shard now maintains
an :class:`ArchiveIndex` that buckets uploads by kind and station *as they
arrive*, stamped with a fleet-global ingest sequence number so multi-shard
queries can merge back into the exact single-server arrival order.

Query results are byte-identical to the old scans: the per-bucket lists
preserve arrival order (the sequence number is the tie-breaker across
shards), and the archive runs the same filtering/sorting code over them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.gps.files import GpsReading


class ArchiveIndex:
    """Per-shard, per-kind upload buckets plus O(1)-ish byte accounting.

    ``seq`` values come from a fleet-shared sequencer: merging any two
    shards' buckets by ``seq`` reproduces global arrival order.
    """

    def __init__(self) -> None:
        #: station -> [(seq, GpsReading)] in arrival order
        self.gps: Dict[str, List[Tuple[int, GpsReading]]] = {}
        #: [(seq, payload)] for probe uploads, arrival order
        self.probes: List[Tuple[int, Any]] = []
        #: station -> [(seq, payload)] for sensor uploads, arrival order
        self.sensors: Dict[str, List[Tuple[int, Any]]] = {}
        #: (station, kind) -> total payload bytes (retransfers included)
        self.bytes_by: Dict[Tuple[str, str], int] = {}
        #: (station, kind) -> payload bytes excluding re-transferred files
        self.unique_bytes_by: Dict[Tuple[str, str], int] = {}

    def ingest(self, station: str, kind: str, nbytes: int, payload: Any,
               seq: int, retransfer: bool = False) -> None:
        """Index one upload under its kind/station buckets."""
        key = (station, kind)
        self.bytes_by[key] = self.bytes_by.get(key, 0) + nbytes
        if not retransfer:
            self.unique_bytes_by[key] = self.unique_bytes_by.get(key, 0) + nbytes
        if kind == "gps" and isinstance(payload, GpsReading):
            self.gps.setdefault(station, []).append((seq, payload))
        elif kind == "probes" and payload:
            self.probes.append((seq, payload))
        elif kind == "sensors" and payload:
            self.sensors.setdefault(station, []).append((seq, payload))

    def total_bytes(self, station: Optional[str] = None, kind: Optional[str] = None,
                    unique: bool = False) -> int:
        """Sum the byte counters, optionally filtered (no upload scan)."""
        table = self.unique_bytes_by if unique else self.bytes_by
        if station is not None and kind is not None:
            return table.get((station, kind), 0)
        return sum(
            value
            for (upload_station, upload_kind), value in table.items()
            if (station is None or upload_station == station)
            and (kind is None or upload_kind == kind)
        )
