"""The Southampton server: state sync, data ingest, remote configuration.

The final architecture has no inter-station link; "the communications are
managed by a server in Southampton" (Section III).  The server:

- stores each station's uploaded power state and serves the override rule
  (the *lowest* of the known states and any manual override);
- ingests the daily data uploads;
- hosts one-shot "special" command scripts per station and the published
  code releases with their checksums (Section VI's remote-update
  machinery).
"""

from repro.server.archive import ScienceArchive
from repro.server.deployment import CodeRelease, InstallOutcome, verify_and_install
from repro.server.fleet import ServerFleet, tenant_map
from repro.server.index import ArchiveIndex
from repro.server.operations import Alert, OperationsConsole
from repro.server.server import SouthamptonServer, SpecialCommand
from repro.server.state_store import PowerStateStore, Sequencer, TenantStateStore

__all__ = [
    "Alert",
    "ArchiveIndex",
    "CodeRelease",
    "InstallOutcome",
    "OperationsConsole",
    "PowerStateStore",
    "ScienceArchive",
    "Sequencer",
    "ServerFleet",
    "SouthamptonServer",
    "SpecialCommand",
    "TenantStateStore",
    "tenant_map",
    "verify_and_install",
]
