"""Southampton-side processing of the daily uploads.

The deployment exists to produce two products, both reconstructed here
from the raw uploads exactly as the stations deliver them:

- **science**: differential GPS solutions from paired base/reference
  readings (ice position, velocity, stick-slip days) and the sub-glacial
  probe series (Fig 6);
- **system health**: the paper notes "data collated from the base station
  can provide useful insights into the condition of the system" — battery
  voltage trends, enclosure humidity, snow level against the station frame.

Queries run over each shard's ingest-time :class:`~repro.server.index.
ArchiveIndex` rather than scanning the raw ``uploads`` list; multi-shard
buckets are merged by global ingest sequence, so results are byte-identical
to a single-server full scan of the same uploads.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.gps.dgps import DgpsSolution, solve_all, velocity_series
from repro.gps.files import GpsReading
from repro.server.index import ArchiveIndex
from repro.sim.simtime import DAY


def _merged(buckets: Iterable[List[Tuple[int, Any]]]) -> List[Tuple[int, Any]]:
    """Concatenate per-shard (seq, item) buckets in global arrival order."""
    buckets = list(buckets)
    if len(buckets) == 1:
        return buckets[0]
    merged = [pair for bucket in buckets for pair in bucket]
    merged.sort(key=lambda pair: pair[0])
    return merged


class ScienceArchive:
    """Query layer over a server's (or a whole fleet's) received uploads."""

    def __init__(self, server: Any) -> None:
        self.server = server

    def _indexes(self) -> Tuple[ArchiveIndex, ...]:
        shards = getattr(self.server, "shards", None)
        if shards is None:
            return (self.server.index,)
        return tuple(shard.index for shard in shards)

    # ------------------------------------------------------------------
    # Raw extraction
    # ------------------------------------------------------------------
    def gps_readings(self, station: str) -> List[GpsReading]:
        """All dGPS readings uploaded by ``station``, time ordered."""
        pairs = _merged(index.gps.get(station, []) for index in self._indexes())
        readings = [reading for _seq, reading in pairs]
        return sorted(readings, key=lambda r: r.start_time)

    def probe_series(self, channel: str) -> Dict[int, List[Tuple[float, float]]]:
        """(time, value) series per probe for one sensor channel."""
        series: Dict[int, List[Tuple[float, float]]] = {}
        for _seq, payload in _merged(index.probes for index in self._indexes()):
            readings = payload.get("readings")
            if not readings:
                continue
            probe_id = payload["probe_id"]
            for reading in readings:
                if channel in reading["channels"]:
                    series.setdefault(probe_id, []).append(
                        (reading["time"], reading["channels"][channel])
                    )
        for values in series.values():
            values.sort()
        return series

    def sensor_series(self, station: str, sensor: str) -> List[Tuple[float, float]]:
        """(rtc_hours, value) series for one station sensor channel."""
        out: List[Tuple[float, float]] = []
        for _seq, payload in _merged(
            index.sensors.get(station, []) for index in self._indexes()
        ):
            for rtc_hours, name, value in payload.get("sensors", []):
                if name == sensor:
                    out.append((rtc_hours, value))
        return sorted(out)

    def voltage_series(self, station: str) -> List[Tuple[float, float]]:
        """(rtc_hours, volts) battery samples as uploaded daily."""
        out: List[Tuple[float, float]] = []
        for _seq, payload in _merged(
            index.sensors.get(station, []) for index in self._indexes()
        ):
            out.extend(payload.get("voltages", []))
        return sorted(out)

    # ------------------------------------------------------------------
    # dGPS science
    # ------------------------------------------------------------------
    def solutions(
        self,
        base_station: str = "base",
        reference_station: str = "reference",
        reference_known_position_m: float = 0.0,
    ) -> List[DgpsSolution]:
        """Best-available position solutions for the moving station."""
        return solve_all(
            self.gps_readings(base_station),
            self.gps_readings(reference_station),
            reference_known_position_m=reference_known_position_m,
        )

    def differential_fraction(self) -> float:
        """Fraction of solutions that had a simultaneous reference reading.

        This is the synchronisation health metric: the whole Section II/III
        machinery exists to keep this near 1.0.
        """
        solutions = self.solutions()
        if not solutions:
            return 0.0
        return sum(1 for s in solutions if s.differential) / len(solutions)

    def daily_velocity(self) -> List[Tuple[int, float]]:
        """(day_index, mean m/day) from consecutive differential solutions.

        Sub-daily velocity samples (state 3 yields ~11 per day) are
        averaged per day; days without solutions are absent.
        """
        solutions = [s for s in self.solutions() if s.differential]
        by_day: Dict[int, List[float]] = {}
        for time, velocity in velocity_series(solutions):
            by_day.setdefault(int(time // DAY), []).append(velocity)
        return [(day, sum(vs) / len(vs)) for day, vs in sorted(by_day.items())]

    def stick_slip_days(self, sigma: float = 2.0) -> List[int]:
        """Days whose velocity exceeds mean + ``sigma`` standard deviations."""
        velocities = self.daily_velocity()
        if len(velocities) < 3:
            return []
        values = [v for _d, v in velocities]
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        threshold = mean + sigma * variance**0.5
        return [day for day, v in velocities if v > threshold]

    # ------------------------------------------------------------------
    # System health
    # ------------------------------------------------------------------
    def battery_daily_minima(self, station: str) -> List[Tuple[int, float]]:
        """(day_index, min volts) — the trend the operators watch."""
        samples = self.voltage_series(station)
        days: Dict[int, float] = {}
        for rtc_hours, volts in samples:
            day = int(rtc_hours // 24)
            days[day] = min(days.get(day, volts), volts)
        first = min(days) if days else 0
        return [(day - first, volts) for day, volts in sorted(days.items())]

    def battery_declining(self, station: str, window_days: int = 7,
                          min_slope_v_per_day: float = 0.001) -> bool:
        """Whether the recent daily-minimum trend is downward.

        Fits a least-squares line through the last ``window_days`` daily
        minima and flags a decline steeper than ``min_slope_v_per_day``.
        Comparing only the window's endpoints (the old behaviour) let a
        single noisy sample at either end flip the verdict.
        """
        minima = self.battery_daily_minima(station)
        if len(minima) < 2:
            return False
        recent = minima[-window_days:]
        n = len(recent)
        mean_day = sum(day for day, _v in recent) / n
        mean_volts = sum(volts for _d, volts in recent) / n
        sxx = sum((day - mean_day) ** 2 for day, _v in recent)
        if sxx == 0:
            return False
        slope = sum(
            (day - mean_day) * (volts - mean_volts) for day, volts in recent
        ) / sxx
        return slope < -min_slope_v_per_day

    def snow_burial_risk(self, station: str, frame_height_m: float = 2.0) -> bool:
        """Whether the snow sensor shows the frame close to burial —
        the failure mode that damaged the base station (Section V)."""
        series = self.sensor_series(station, "snow_depth_m")
        if not series:
            return False
        recent = [value for _t, value in series[-48:]]
        return max(recent) > 0.8 * frame_height_m

    def enclosure_humidity_alert(self, station: str, threshold_pct: float = 85.0) -> bool:
        """Condensation risk inside the enclosure."""
        series = self.sensor_series(station, "internal_humidity_pct")
        if not series:
            return False
        recent = [value for _t, value in series[-48:]]
        return sum(recent) / len(recent) > threshold_pct
