"""Checksum-verified remote code updates (Section VI).

"Scripts on the system ... automatically download the program, calculate a
checksum and if it is correct replace the old file with the new one",
then immediately report the computed MD5 back over an HTTP GET (the
deployed wget had no POST support).  The model reproduces the whole
pipeline, including in-transit corruption, which leaves the old version
installed.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.comms.link import LinkDown, Modem
from repro.sim.kernel import Simulation


def md5_of(content: str) -> str:
    """The checksum function used end to end (hex digest)."""
    return hashlib.md5(content.encode()).hexdigest()


@dataclass(frozen=True)
class CodeRelease:
    """A published program version.

    ``content`` stands in for the binary; ``md5`` is published alongside it
    (computed at release time in Southampton, after lab verification on
    similar hardware).
    """

    name: str
    version: int
    content: str
    size_bytes: int

    @property
    def md5(self) -> str:
        """The release's published checksum."""
        return md5_of(self.content)


class InstallOutcome(enum.Enum):
    """Result of one station-side update attempt."""

    INSTALLED = "installed"
    CHECKSUM_MISMATCH = "checksum_mismatch"
    DOWNLOAD_FAILED = "download_failed"


def verify_and_install(
    sim: Simulation,
    modem: Modem,
    server,
    station: str,
    release_name: str,
    installed_versions: dict,
    corruption_probability: float = 0.0,
):
    """Process: download a release, verify its checksum, install, report.

    ``installed_versions`` maps release name -> version and is mutated only
    on a successful verify ("if it is correct replace the old file with the
    new one").  The computed checksum — matching or not — is reported
    immediately via the HTTP-GET side channel.  Returns an
    :class:`InstallOutcome`.
    """
    release: Optional[CodeRelease] = server.get_release(release_name)
    if release is None:
        return InstallOutcome.DOWNLOAD_FAILED
    try:
        yield sim.process(modem.send(release.size_bytes, label=f"code:{release_name}"))
    except LinkDown:
        sim.trace.emit(station, "code_download_failed", release=release_name)
        return InstallOutcome.DOWNLOAD_FAILED

    received = release.content
    roll = float(sim.rng.stream(f"{station}.code_corruption").random())
    if roll < corruption_probability:
        received = release.content + "\x00CORRUPT"
    computed = md5_of(received)
    server.report_checksum(station, release_name, computed)

    if computed != release.md5:
        sim.trace.emit(station, "code_checksum_mismatch", release=release_name)
        return InstallOutcome.CHECKSUM_MISMATCH
    installed_versions[release_name] = release.version
    sim.trace.emit(station, "code_installed", release=release_name, version=release.version)
    return InstallOutcome.INSTALLED
