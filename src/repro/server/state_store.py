"""Server-side power-state records and the min-override rule.

"When a station requests the override state from the server the server
looks up both the existing states from the stations and returns the lowest
one to the client" (Section III).  A manual override entered by the
operators participates in the same minimum; station-side safety clamps
(battery floor, no forced state 0) live in :mod:`repro.core.sync`, not
here — the server is deliberately simple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass
class StateReport:
    """One station's most recent uploaded power state."""

    state: int
    reported_at: float


class PowerStateStore:
    """Uploaded states per station plus an optional manual override."""

    def __init__(self) -> None:
        self._reports: Dict[str, StateReport] = {}
        self.manual_override: Optional[int] = None

    def upload(self, station: str, state: int, time: float) -> None:
        """Record a station's locally-computed power state."""
        if not 0 <= state <= 3:
            raise ValueError(f"power state must be 0-3, got {state}")
        self._reports[station] = StateReport(state=state, reported_at=time)

    def report_for(self, station: str) -> Optional[StateReport]:
        """The last report from ``station``, if any."""
        return self._reports.get(station)

    def set_manual_override(self, state: Optional[int]) -> None:
        """Operator override (``None`` clears it)."""
        if state is not None and not 0 <= state <= 3:
            raise ValueError(f"power state must be 0-3, got {state}")
        self.manual_override = state

    def override_for(self, station: str) -> Optional[int]:
        """The override the server returns to ``station``: the minimum of
        every known station state and the manual override.

        Returns ``None`` when the server knows nothing at all (a fresh
        deployment) — the station then runs on its local state.
        """
        candidates = [report.state for report in self._reports.values()]
        if self.manual_override is not None:
            candidates.append(self.manual_override)
        if not candidates:
            return None
        return min(candidates)

    def known_stations(self) -> Tuple[str, ...]:
        """Stations that have ever reported."""
        return tuple(sorted(self._reports))
