"""Server-side power-state records and the min-override rule.

"When a station requests the override state from the server the server
looks up both the existing states from the stations and returns the lowest
one to the client" (Section III).  A manual override entered by the
operators participates in the same minimum; station-side safety clamps
(battery floor, no forced state 0) live in :mod:`repro.core.sync`, not
here — the server is deliberately simple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple


@dataclass
class StateReport:
    """One station's most recent uploaded power state."""

    state: int
    reported_at: float


class Sequencer:
    """A shared monotonically-increasing id source.

    Fleet shards share one sequencer per id space (special-command ids,
    archive ingest order) so ids stay unique and totally ordered no matter
    which shard a station happens to talk to.
    """

    def __init__(self, start: int = 1) -> None:
        self._next = start

    def next(self) -> int:
        """The next id (monotonically increasing from ``start``)."""
        value = self._next
        self._next += 1
        return value


class PowerStateStore:
    """Uploaded states per station plus an optional manual override."""

    def __init__(self) -> None:
        self._reports: Dict[str, StateReport] = {}
        self.manual_override: Optional[int] = None

    def upload(self, station: str, state: int, time: float) -> None:
        """Record a station's locally-computed power state."""
        if not 0 <= state <= 3:
            raise ValueError(f"power state must be 0-3, got {state}")
        self._reports[station] = StateReport(state=state, reported_at=time)

    def report_for(self, station: str) -> Optional[StateReport]:
        """The last report from ``station``, if any."""
        return self._reports.get(station)

    def set_manual_override(self, state: Optional[int]) -> None:
        """Operator override (``None`` clears it)."""
        if state is not None and not 0 <= state <= 3:
            raise ValueError(f"power state must be 0-3, got {state}")
        self.manual_override = state

    def override_for(self, station: str) -> Optional[int]:
        """The override the server returns to ``station``: the minimum of
        every known station state and the manual override.

        Returns ``None`` when the server knows nothing at all (a fresh
        deployment) — the station then runs on its local state.
        """
        candidates = [report.state for report in self._reports.values()]
        if self.manual_override is not None:
            candidates.append(self.manual_override)
        if not candidates:
            return None
        return min(candidates)

    def known_stations(self) -> Tuple[str, ...]:
        """Stations that have ever reported."""
        return tuple(sorted(self._reports))


class TenantStateStore:
    """Per-tenant min-rule state, behind the PowerStateStore surface.

    The single-server deployment applies the Section III minimum across
    *every* station; a multi-tenant fleet must not let one tenant's dying
    station throttle another tenant's healthy one.  ``tenant_of`` maps a
    station name to its tenant key; each tenant gets its own
    :class:`PowerStateStore` and the min rule runs within the tenant only.
    A manual override still reaches everyone (operators act fleet-wide).
    """

    def __init__(self, tenant_of: Callable[[str], str]) -> None:
        self._tenant_of = tenant_of
        self._tenants: Dict[str, PowerStateStore] = {}
        self.manual_override: Optional[int] = None

    def _store(self, station: str) -> PowerStateStore:
        tenant = self._tenant_of(station)
        store = self._tenants.get(tenant)
        if store is None:
            store = self._tenants[tenant] = PowerStateStore()
        return store

    def upload(self, station: str, state: int, time: float) -> None:
        """Record a station's state in its tenant's store."""
        self._store(station).upload(station, state, time)

    def report_for(self, station: str) -> Optional[StateReport]:
        """The last report from ``station``, if any."""
        return self._store(station).report_for(station)

    def set_manual_override(self, state: Optional[int]) -> None:
        """Operator override; reaches every tenant (``None`` clears it)."""
        if state is not None and not 0 <= state <= 3:
            raise ValueError(f"power state must be 0-3, got {state}")
        self.manual_override = state
        for store in self._tenants.values():
            store.set_manual_override(state)

    def override_for(self, station: str) -> Optional[int]:
        """The min-rule override within ``station``'s tenant only."""
        store = self._store(station)
        store.set_manual_override(self.manual_override)
        return store.override_for(station)

    def known_stations(self) -> Tuple[str, ...]:
        """Stations that have ever reported, across every tenant."""
        names = [s for store in self._tenants.values() for s in store.known_stations()]
        return tuple(sorted(names))

    def tenants(self) -> Tuple[str, ...]:
        """Tenant keys that have at least one report."""
        return tuple(sorted(self._tenants))
