"""The top-level facade: a full two-station Iceland deployment.

``Deployment`` wires up everything the paper describes: shared weather and
glacier, the Southampton server, the on-ice base station with its seven
probes and wired probe, and the café reference station.  This is the
library's primary entry point::

    from repro.core import Deployment, DeploymentConfig

    deployment = Deployment(DeploymentConfig(seed=42))
    deployment.run_days(30)
    print(deployment.base.effective_state)
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import DeploymentConfig
from repro.core.station import BaseStation, ReferenceStation
from repro.environment.glacier import GlacierModel
from repro.environment.weather import IcelandWeather
from repro.probes.probe import Probe, WiredProbe
from repro.sensors.probe_sensors import make_probe_sensor_suite
from repro.sensors.station_sensors import make_station_sensor_suite
from repro.server.server import SouthamptonServer
from repro.sim.kernel import Simulation


class Deployment:
    """A complete simulated deployment on Vatnajökull."""

    def __init__(self, config: Optional[DeploymentConfig] = None) -> None:
        self.config = config if config is not None else DeploymentConfig()
        cfg = self.config
        self.sim = Simulation(seed=cfg.seed, tie_break=cfg.tie_break)
        self.weather = IcelandWeather(cfg.weather, seed=cfg.seed)
        self.glacier = GlacierModel(cfg.glacier, seed=cfg.seed)
        self.server = SouthamptonServer(self.sim)

        # --- probes ---
        lifetimes = cfg.probe_lifetimes_days or [None] * len(cfg.probe_ids)
        if len(lifetimes) != len(cfg.probe_ids):
            raise ValueError("probe_lifetimes_days must match probe_ids in length")
        self.probes: List[Probe] = [
            Probe(
                self.sim,
                probe_id=probe_id,
                sensors=make_probe_sensor_suite(self.glacier, probe_id, seed=cfg.seed),
                sampling_interval_s=cfg.probe_sampling_interval_s,
                lifetime_days=lifetime,
                clock_drift_ppm=cfg.probe_clock_drift_ppm,
                defer_sampling=cfg.probe_defer_sampling,
            )
            for probe_id, lifetime in zip(cfg.probe_ids, lifetimes)
        ]
        self.wired_probe = WiredProbe(self.sim, lifetime_days=cfg.wired_probe_lifetime_days)

        # --- stations ---
        self.base = BaseStation(
            self.sim,
            cfg.base,
            self.weather,
            self.server,
            glacier=self.glacier,
            probes=self.probes,
            wired_probe=self.wired_probe,
            sensors=make_station_sensor_suite(self.weather, seed=cfg.seed,
                                              with_tilt=cfg.station_tilt_sensors),
            probe_corruption_probability=cfg.probe_corruption_probability,
            probe_time_sync=cfg.probe_time_sync,
        )
        self.reference = ReferenceStation(
            self.sim,
            cfg.reference,
            self.weather,
            self.server,
            glacier=self.glacier,
            sensors=make_station_sensor_suite(self.weather, seed=cfg.seed + 1,
                                              with_tilt=cfg.station_tilt_sensors),
        )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run_days(self, days: float) -> None:
        """Advance the simulation by ``days`` days."""
        self.sim.run_days(days)

    @property
    def stations(self):
        """Both stations, base first."""
        return (self.base, self.reference)

    # ------------------------------------------------------------------
    # Convenience queries used by examples and benches
    # ------------------------------------------------------------------
    def set_manual_override(self, state: Optional[int]) -> None:
        """Operator override on the Southampton server (None clears)."""
        self.server.power_states.set_manual_override(state)

    def voltage_series(self, station: str = "base"):
        """(time, volts) samples the station's MSP430 recorded (from trace)."""
        return self.sim.trace.series(
            "voltage_sample", "volts", source=f"{station}.msp430"
        )

    def state_series(self, station: str = "base"):
        """(time, effective_state) transitions a station applied."""
        return self.sim.trace.series("state_applied", "state", source=station)

    def surviving_probes(self) -> int:
        """How many probes still respond right now."""
        return sum(1 for probe in self.probes if probe.is_alive)
