"""The top-level facade: a full two-station Iceland deployment.

``Deployment`` wires up everything the paper describes: shared weather and
glacier, the Southampton server, the on-ice base station with its seven
probes and wired probe, and the café reference station.  This is the
library's primary entry point::

    from repro.core import Deployment, DeploymentConfig

    deployment = Deployment(DeploymentConfig(seed=42))
    deployment.run_days(30)
    print(deployment.base.effective_state)

Beyond the paper's pair, ``extra_stations`` adds solar-only satellite
stations and ``servers > 1`` replaces the single Southampton box with a
:class:`~repro.server.fleet.ServerFleet`; each station then talks through
its own policy-driven :class:`~repro.core.targets.FleetClient`.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.core.config import DeploymentConfig, StationConfig
from repro.core.station import BaseStation, ReferenceStation
from repro.core.targets import FleetClient
from repro.environment.glacier import GlacierModel
from repro.environment.weather import IcelandWeather
from repro.probes.probe import Probe, WiredProbe
from repro.sensors.probe_sensors import make_probe_sensor_suite
from repro.sensors.station_sensors import make_station_sensor_suite
from repro.server.fleet import ServerFleet, tenant_map
from repro.server.server import SouthamptonServer
from repro.sim.kernel import Simulation

#: Stagger applied to each extra station's wake/comms hours, seconds.  A
#: prime-ish offset keeps hundreds of stations from dialling the fleet at
#: the same simulated instant (which would also create same-timestamp
#: ordering hazards on shared server state).
EXTRA_STATION_STAGGER_S = 97.0


def _extra_station_config(base: StationConfig, index: int) -> StationConfig:
    """A solar-only satellite station derived from the base config."""
    stagger_h = (index + 1) * EXTRA_STATION_STAGGER_S / 3600.0
    return dataclasses.replace(
        base,
        name=f"station{index:02d}",
        wind_w=0.0,
        mains_w=0.0,
        fixed_position_m=None,
        wake_hour=base.wake_hour + stagger_h,
        comms_hour=base.comms_hour + stagger_h,
    )


class Deployment:
    """A complete simulated deployment on Vatnajökull."""

    def __init__(self, config: Optional[DeploymentConfig] = None) -> None:
        self.config = config if config is not None else DeploymentConfig()
        cfg = self.config
        self.sim = Simulation(seed=cfg.seed, tie_break=cfg.tie_break)
        self.weather = IcelandWeather(cfg.weather, seed=cfg.seed)
        self.glacier = GlacierModel(cfg.glacier, seed=cfg.seed)

        # --- server side: single box, or a fleet of shards ---
        extra_configs = [
            _extra_station_config(cfg.base, index) for index in range(cfg.extra_stations)
        ]
        station_names = [cfg.base.name, cfg.reference.name] + [
            extra.name for extra in extra_configs
        ]
        if cfg.servers < 1:
            raise ValueError(f"servers must be >= 1, got {cfg.servers}")
        self.fleet: Optional[ServerFleet] = None
        if cfg.servers > 1 or cfg.tenant_size > 0:
            tenant_of = (
                tenant_map(station_names, cfg.tenant_size)
                if cfg.tenant_size > 0 else None
            )
            self.fleet = ServerFleet(self.sim, cfg.servers, tenant_of=tenant_of)
            if len(self.fleet.shards) == 1:
                # Degenerate fleet (tenancy only): stations talk straight
                # to the one shard, no client indirection needed.
                self.server = self.fleet.shards[0]
            else:
                self.server = self.fleet
        else:
            self.server = SouthamptonServer(self.sim)

        # --- probes ---
        lifetimes = cfg.probe_lifetimes_days or [None] * len(cfg.probe_ids)
        if len(lifetimes) != len(cfg.probe_ids):
            raise ValueError("probe_lifetimes_days must match probe_ids in length")
        self.probes: List[Probe] = [
            Probe(
                self.sim,
                probe_id=probe_id,
                sensors=make_probe_sensor_suite(self.glacier, probe_id, seed=cfg.seed),
                sampling_interval_s=cfg.probe_sampling_interval_s,
                lifetime_days=lifetime,
                clock_drift_ppm=cfg.probe_clock_drift_ppm,
                defer_sampling=cfg.probe_defer_sampling,
            )
            for probe_id, lifetime in zip(cfg.probe_ids, lifetimes)
        ]
        self.wired_probe = WiredProbe(self.sim, lifetime_days=cfg.wired_probe_lifetime_days)

        # --- stations ---
        self.base = BaseStation(
            self.sim,
            cfg.base,
            self.weather,
            self._station_server(cfg.base.name, 0),
            glacier=self.glacier,
            probes=self.probes,
            wired_probe=self.wired_probe,
            sensors=make_station_sensor_suite(self.weather, seed=cfg.seed,
                                              with_tilt=cfg.station_tilt_sensors),
            probe_corruption_probability=cfg.probe_corruption_probability,
            probe_time_sync=cfg.probe_time_sync,
        )
        self.reference = ReferenceStation(
            self.sim,
            cfg.reference,
            self.weather,
            self._station_server(cfg.reference.name, 1),
            glacier=self.glacier,
            sensors=make_station_sensor_suite(self.weather, seed=cfg.seed + 1,
                                              with_tilt=cfg.station_tilt_sensors),
        )
        self.extras: List[ReferenceStation] = [
            ReferenceStation(
                self.sim,
                extra,
                self.weather,
                self._station_server(extra.name, 2 + index),
                glacier=self.glacier,
                sensors=make_station_sensor_suite(self.weather,
                                                  seed=cfg.seed + 2 + index,
                                                  with_tilt=cfg.station_tilt_sensors),
            )
            for index, extra in enumerate(extra_configs)
        ]

    def _station_server(self, station_name: str, station_index: int):
        """What a station dials: the server itself, or its fleet client."""
        if self.fleet is None or self.server is not self.fleet:
            return self.server
        cfg = self.config
        # "static" and "hop" both start where the paper's stations did —
        # everyone dials *the* Southampton server (shard 0); hop then
        # steers away by load hints while static stays put.  Round-robin
        # spreads obliviously from a per-station offset.
        if cfg.server_policy == "round-robin":
            home = station_index % len(self.fleet.shards)
        else:
            home = 0
        return FleetClient(
            self.sim,
            station_name,
            self.fleet,
            policy=cfg.server_policy,
            home=home,
            costs=cfg.server_costs,
        )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run_days(self, days: float) -> None:
        """Advance the simulation by ``days`` days."""
        self.sim.run_days(days)

    @property
    def stations(self):
        """Every station, base first, then reference, then the extras."""
        return (self.base, self.reference, *self.extras)

    # ------------------------------------------------------------------
    # Convenience queries used by examples and benches
    # ------------------------------------------------------------------
    def set_manual_override(self, state: Optional[int]) -> None:
        """Operator override on the Southampton server (None clears)."""
        self.server.power_states.set_manual_override(state)

    def voltage_series(self, station: str = "base"):
        """(time, volts) samples the station's MSP430 recorded (from trace)."""
        return self.sim.trace.series(
            "voltage_sample", "volts", source=f"{station}.msp430"
        )

    def state_series(self, station: str = "base"):
        """(time, effective_state) transitions a station applied."""
        return self.sim.trace.series("state_applied", "state", source=station)

    def surviving_probes(self) -> int:
        """How many probes still respond right now."""
        return sum(1 for probe in self.probes if probe.is_alive)
