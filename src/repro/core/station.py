"""The stations' daily run sequence — the paper's Fig 4 flowchart.

One daily cycle, driven by the MSP430 waking the Gumstix before the midday
communication window::

    Start
      └─ RTC untrusted?  -> recover clock (GPS / NTP), state 0, stop
      └─ Basestation?    -> get sub-glacial probe data
      └─ Get readings from MSP (voltage + sensor logs over I2C)
      └─ Calculate local power state (daily average vs Table II)
      └─ Power state = 0 -> stop (no comms at all)
      └─ Power state > 1 -> get GPS files (serial fetch from the dGPS)
      └─ Package data to be sent
      └─ Upload power state
      └─ Upload data (file by file, inside the watchdog window)
      └─ Get override power state (min rule + local safety clamps)
      └─ Get special -> execute (the deployed order; the
         ``special_before_data`` flag moves it before the upload, the
         paper's proposed fix)
      └─ Rewrite the MSP430 schedule for the effective state; record the
         successful run; stop.

The 2-hour safety maximum is enforced *outside* this code by the MSP430
cutting the rail — exactly why the ordering of upload vs special matters.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional

from repro.comms.gprs import GprsModem
from repro.comms.link import LinkDown
from repro.comms.probe_radio import ProbeRadioLink
from repro.comms.transfer import upload_files
from repro.core.config import StationConfig
from repro.core.controller import decide_local_state
from repro.core.power_policy import PowerPolicy, PowerState
from repro.core.priority import DataPrioritizer
from repro.core.recovery import ScheduleRecovery
from repro.core.sync import StateSynchronizer
from repro.energy.battery import Battery
from repro.energy.bus import PowerBus
from repro.energy.sources import MainsCharger, SolarPanel, WindTurbine
from repro.environment.glacier import GlacierModel
from repro.environment.seasons import cafe_has_power
from repro.environment.weather import IcelandWeather
from repro.gps.receiver import GpsReceiver
from repro.hardware.gumstix import Gumstix
from repro.hardware.i2c import I2CBus
from repro.hardware.msp430 import Msp430, ScheduleEntry
from repro.hardware.storage import CompactFlashCard, StorageCorruption
from repro.probes.commands import ProbeCommander
from repro.probes.probe import Probe, WiredProbe
from repro.protocol.bulk import BulkFetcher
from repro.protocol.framing import READING_BYTES
from repro.sim.kernel import Simulation

#: Wire size of one MSP sensor/voltage sample in the staged data files.
SAMPLE_BYTES = 10


class Station:
    """Common machinery of both stations (power, hardware, daily run)."""

    def __init__(
        self,
        sim: Simulation,
        config: StationConfig,
        weather: IcelandWeather,
        server,
        glacier: Optional[GlacierModel] = None,
        sensors: Optional[list] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.weather = weather
        self.server = server
        self.glacier = glacier
        name = config.name
        self.name = name

        # --- power ---
        self.bus = PowerBus(sim, Battery(config.battery, soc=config.initial_soc),
                            name=f"{name}.power", step_s=config.energy_step_s,
                            mode=config.energy_mode,
                            max_step_s=config.energy_max_step_s)
        if config.solar_w > 0:
            self.bus.add_source(SolarPanel(weather, rated_w=config.solar_w,
                                           name=f"{name}.solar"))
        if config.wind_w > 0:
            self.bus.add_source(WindTurbine(weather, rated_w=config.wind_w,
                                            name=f"{name}.wind"))
        if config.mains_w > 0:
            self.bus.add_source(MainsCharger(cafe_has_power, rated_w=config.mains_w,
                                             name=f"{name}.mains"))

        # --- hardware ---
        self.msp = Msp430(
            sim, self.bus, name=f"{name}.msp430",
            sample_interval_s=config.sample_interval_s,
            max_gumstix_runtime_s=config.max_runtime_s,
            rtc_drift_ppm=config.rtc_drift_ppm,
            flash_default_schedule=[ScheduleEntry(config.wake_hour, "wake_gumstix")],
        )
        self.card = CompactFlashCard(
            capacity_bytes=4_000_000_000, name=f"{name}.cf",
            corruption_probability=config.cf_corruption_probability,
        )
        self.gumstix = Gumstix(sim, self.bus, name=f"{name}.gumstix",
                               boot_s=config.boot_s, cf_card=self.card)
        self.i2c = I2CBus(sim, self.msp, name=f"{name}.i2c")
        for sensor in (sensors or []):
            self.msp.attach_sensor(sensor)

        # --- dGPS ---
        if config.fixed_position_m is not None:
            fixed = config.fixed_position_m
            position_fn = lambda t: fixed  # noqa: E731 - tiny closure
        elif glacier is not None:
            position_fn = glacier.surface_position_m
        else:
            position_fn = lambda t: 0.0  # noqa: E731
        self.gps = GpsReceiver(sim, self.bus, name=f"{name}.gps",
                               position_fn=position_fn,
                               seed=zlib.crc32(name.encode()))

        # --- comms ---
        self.modem = GprsModem(
            sim, self.bus, name=f"{name}.gprs",
            outage_probability=config.gprs_outage_probability,
            summer_outage_probability=config.gprs_summer_outage_probability,
            melt_fraction_fn=glacier.melt_fraction if glacier is not None else None,
            seed=zlib.crc32(name.encode()),
            mode=config.comms_mode,
        )
        self.sync = StateSynchronizer(sim, name, server, self.modem)
        self.recovery = ScheduleRecovery(
            sim, name, self.card, self.gps, self.i2c,
            ntp_fallback=config.ntp_fallback, gprs_modem=self.modem,
        )
        self.policy = PowerPolicy()
        # Table II threshold subscription: the bus predicts and flags the
        # power-state voltage edges (event-driven) instead of the thresholds
        # only ever being compared against polled samples.  Daily power-state
        # *decisions* still use the daily-average voltage, as deployed.
        for state, spec in sorted(self.policy.table.items()):
            if spec.min_threshold_v is not None:
                self.bus.watch_voltage(spec.min_threshold_v, f"state{int(state)}")

        # --- control state ---
        self.local_state = PowerState.S3
        self.effective_state = PowerState.S3
        self.installed_versions: Dict[str, int] = {}
        self.daily_runs = 0
        self.skipped_comms_days = 0
        self._outbox_counter = 0
        self._staged_special_outputs: List[dict] = []
        self._last_log_time = 0.0
        self._readings_this_session = 0

        # --- wiring ---
        self.msp.register_action("wake_gumstix",
                                 lambda: self.msp.supervise_gumstix(self.gumstix))
        self.msp.register_action("gps_reading", self._start_gps_reading)
        self.gumstix.on_boot = self.daily_run
        self.gumstix.on_power_off.append(self._on_gumstix_off)

    # ------------------------------------------------------------------
    # Rail hygiene
    # ------------------------------------------------------------------
    def _on_gumstix_off(self, clean: bool) -> None:
        # Peripherals driven by the Gumstix lose their session with it.  A
        # dGPS reading started by the MSP430 is *not* affected (that is the
        # whole point of MSP-driven dGPS), so only the modem rail is forced.
        self.modem.disconnect()

    # ------------------------------------------------------------------
    # MSP-driven dGPS (Section II: no Gumstix in the loop)
    # ------------------------------------------------------------------
    def _start_gps_reading(self) -> None:
        self.sim.process(
            self.gps.take_reading(self.policy.gps_reading_duration_s),
            name=f"{self.name}.gps_reading",
        )

    # ------------------------------------------------------------------
    # Schedule management
    # ------------------------------------------------------------------
    def apply_state(self, state: PowerState) -> None:
        """Rewrite the MSP430 schedule for ``state`` (wake + dGPS slots)."""
        if state != self.effective_state:
            self.sim.obs.metrics.inc("power_state_transitions_total",
                                     station=self.name, state=int(state))
        self.sim.obs.metrics.set_gauge("power_effective_state", float(int(state)),
                                       station=self.name)
        self.effective_state = state
        entries = [ScheduleEntry(self.config.wake_hour, "wake_gumstix")]
        entries.extend(
            ScheduleEntry(hour, "gps_reading") for hour in self.policy.gps_hours(state)
        )
        self.i2c.set_schedule(entries)
        self.sim.trace.emit(self.name, "state_applied", state=int(state))

    # ------------------------------------------------------------------
    # Data staging
    # ------------------------------------------------------------------
    def _stage_file(self, kind: str, size_bytes: int, payload=None,
                    artifact=None, probe=None, task=None, seqs=None) -> str:
        self._outbox_counter += 1
        name = f"outbox/{kind}/{self._outbox_counter:06d}"
        self.card.write(name, size_bytes, created=self.sim.now, payload=payload)
        # Provenance: the outbox file is born queued; ``artifact`` (a gps
        # observation) or ``probe``/``task``/``seqs`` (readings) name the
        # science data it carries.  The dedicated "prov" source keeps these
        # records out of the station's log-volume accounting, so staging
        # telemetry cannot change simulated log sizes.
        detail = {"station": self.name, "file": name, "file_kind": kind,
                  "bytes": size_bytes}
        if artifact is not None:
            detail["artifact"] = artifact
        if probe is not None:
            detail["probe"] = probe
            detail["task"] = task
            detail["seqs"] = list(seqs or ())
        self.sim.trace.emit("prov", "queued", **detail)
        return name

    def _stage_msp_data(self, voltage_log, sensor_log) -> None:
        if voltage_log:
            self._stage_file("sensors", SAMPLE_BYTES * len(voltage_log),
                             payload={"voltages": voltage_log})
        if sensor_log:
            self._stage_file("sensors", SAMPLE_BYTES * len(sensor_log),
                             payload={"sensors": sensor_log})

    def _stage_log_file(self) -> None:
        # The daily logfile: all messages/errors since the last staged log,
        # plus any special-command output (which is how special results
        # reach Southampton — a day late, Section VI).  Per-packet logging
        # around probe communications dominates: a big backlog day produces
        # a huge log (the Section VI >1 MB lesson).
        trace_bytes = self.sim.trace.byte_size(
            source=self.name, start=self._last_log_time, end=self.sim.now
        )
        verbose_bytes = int(
            self.config.log_bytes_per_reading * self._readings_this_session
        )
        self._readings_this_session = 0
        self._last_log_time = self.sim.now
        size = self.config.log_base_bytes + trace_bytes + verbose_bytes
        payload = {"special_outputs": list(self._staged_special_outputs)}
        self._staged_special_outputs.clear()
        self._stage_file("logs", size, payload=payload)

    # ------------------------------------------------------------------
    # The daily run (Fig 4)
    # ------------------------------------------------------------------
    def daily_run(self):
        """Process body for one Gumstix power cycle.

        The whole cycle is one top-level observability span on the
        station's track, so a dGPS-read -> upload day renders as a single
        tree in the Chrome trace (probe jobs, GPS collection and the
        comms session are its children).
        """
        with self.sim.obs.span("daily_run", track=self.name):
            yield from self._daily_run_body()

    def _daily_run_body(self):
        # Bound-method caching (docs/performance.md): the daily run is the
        # busiest process in the system, so the trace/metrics dispatch is
        # resolved once per cycle instead of per call.
        sim = self.sim
        emit = sim.trace.emit
        inc = sim.obs.metrics.inc
        emit(self.name, "run_start")

        # --- Section IV: automatic schedule resetting ---
        if not self.recovery.rtc_trusted():
            emit(self.name, "rtc_untrusted")
            ok = yield sim.process(self.recovery.recover_clock())
            if ok:
                self.apply_state(PowerState.S0)
                self.recovery.record_successful_run()
            return

        # --- probe jobs (base station only; every power state) ---
        yield from self._probe_jobs()

        # --- readings from the MSP ---
        voltage_log = self.i2c.read_voltage_log()
        sensor_log = self.i2c.read_sensor_log()
        self._stage_msp_data(voltage_log, sensor_log)

        # --- local power state ---
        local_state, voltage_used = decide_local_state(
            self.policy, voltage_log, self.i2c.read_battery_voltage()
        )
        self.local_state = local_state
        emit(self.name, "local_state", state=int(local_state),
             voltage=round(voltage_used, 3))

        # --- state 0: sensing only, no comms (unless urgent data forces
        # a minimal priority upload — the Section VII extension) ---
        if local_state == PowerState.S0:
            self.skipped_comms_days += 1
            yield from self._maybe_priority_comms()
            self.apply_state(PowerState.S0)
            self.recovery.record_successful_run()
            self.daily_runs += 1
            inc("daily_runs_total", station=self.name)
            return

        # --- GPS files (states 2 and 3) ---
        if local_state > PowerState.S1:
            yield from self._collect_gps_files()
            if self.config.daily_rtc_sync:
                yield from self._discipline_rtc()

        # --- package data ---
        self._stage_log_file()
        effective = yield from self._comms_session(local_state)

        # --- schedule + bookkeeping ---
        self.apply_state(effective)
        self.recovery.record_successful_run()
        self.daily_runs += 1
        inc("daily_runs_total", station=self.name)

    # ------------------------------------------------------------------
    # Fig 4 steps
    # ------------------------------------------------------------------
    def _probe_jobs(self):
        """Base-station hook; the reference station has no probes."""
        return
        yield  # pragma: no cover - makes this a generator

    def _maybe_priority_comms(self):
        """Base-station hook for Section VII data-priority comms."""
        return
        yield  # pragma: no cover - makes this a generator

    def _discipline_rtc(self):
        """Routine RTC correction from a GPS time fix (Section II).

        Runs only when the dGPS is in use anyway (states 2-3); a failed
        fix is harmless — tomorrow's run tries again.
        """
        from repro.gps.receiver import TimeFixFailed

        try:
            fix = yield self.sim.process(self.gps.time_fix())
        except TimeFixFailed:
            return
        self.i2c.set_rtc(fix)

    def _collect_gps_files(self):
        """Serial-fetch every pending dGPS file onto the station CF card.

        An RS-232 fault aborts the rest of the day's fetches (the cable is
        flaky; unfetched files stay on the receiver for tomorrow).
        """
        with self.sim.obs.span("gps_collect", track=self.name):
            for stored in self.gps.pending_files():
                try:
                    fetched = yield self.sim.process(self.gps.fetch_file(stored.name))
                except IOError:
                    self.sim.trace.emit(self.name, "gps_fetch_aborted")
                    return
                self._stage_file("gps", fetched.size_bytes, payload=fetched.payload,
                                 artifact=f"gps:{stored.name}")

    def _comms_session(self, local_state: PowerState):
        """Connect, upload state + data, fetch override and special."""
        with self.sim.obs.span("comms_session", track=self.name):
            effective = yield from self._comms_session_body(local_state)
        return effective

    def _comms_session_body(self, local_state: PowerState):
        inc = self.sim.obs.metrics.inc
        # Against a fleet, re-run the upload-target policy before dialling:
        # the whole session sticks to the shard chosen here.
        begin_session = getattr(self.server, "begin_session", None)
        if begin_session is not None:
            begin_session()
        try:
            yield self.sim.process(self.modem.connect())
        except LinkDown:
            self.modem.disconnect()
            inc("comms_sessions_total", station=self.name, result="connect_failed")
            self.sim.trace.emit(self.name, "comms_failed")
            return local_state

        outcome = "ok"
        effective = local_state
        try:
            batched = self.config.batched_sync
            if batched:
                # One request: state up, override down, special drained.
                effective, _override, special, _loads = (
                    yield from self.sync.batched_sync(local_state)
                )
                if special is not None and self.config.special_before_data:
                    self._execute_special(special)
            else:
                # Upload power state (before data, per Fig 4).
                yield from self.sync.upload_state(local_state)
                special = None

            if not batched and self.config.special_before_data:
                yield from self._special_step()

            # Upload data, file by file.  Ingestion happens per completed
            # file (scp semantics): data that made it across has arrived in
            # Southampton even if the watchdog cuts the session afterwards.
            try:
                outbox = self.card.list_files("outbox/")
            except StorageCorruption:
                outbox = []
                self.sim.trace.emit(self.name, "cf_corrupted_skipping_upload")

            def ingest(stored) -> None:
                kind = stored.name.split("/")[1]
                self.server.upload_data(self.name, stored.size_bytes, kind=kind,
                                        payload=stored.payload, name=stored.name)
                self.card.delete(stored.name)

            result = yield self.sim.process(
                upload_files(self.sim, self.modem, outbox,
                             window_s=self.config.max_runtime_s,
                             on_file_sent=ingest)
            )
            if result.link_lost:
                outcome = "link_lost"
                # A special drained by the batched sync is already on the
                # station — losing the link afterwards doesn't lose it.
                if batched and special is not None and not self.config.special_before_data:
                    self._execute_special(special)
                return effective

            if not batched:
                # Override state (after data, per Fig 4's split placement).
                effective, _override = yield from self.sync.fetch_override(local_state)
                if not self.config.special_before_data:
                    yield from self._special_step()
            elif special is not None and not self.config.special_before_data:
                self._execute_special(special)

            # §VI auto-update: pull any newer published code, verify its
            # checksum, install on match, report the MD5 immediately.
            if self.config.auto_update:
                yield from self._auto_update_step()
        except LinkDown:
            outcome = "dropped"
            self.sim.trace.emit(self.name, "comms_dropped")
        finally:
            inc("comms_sessions_total", station=self.name, result=outcome)
            self.modem.disconnect()
        return effective

    def _auto_update_step(self):
        from repro.server.deployment import verify_and_install

        for name in sorted(self.server.releases):
            release = self.server.releases[name]
            if release.version <= self.installed_versions.get(name, 0):
                continue
            yield self.sim.process(
                verify_and_install(
                    self.sim, self.modem, self.server, self.name, name,
                    self.installed_versions,
                    corruption_probability=self.config.code_corruption_probability,
                )
            )

    def _special_step(self):
        """Download and execute the one-shot special command, if any."""
        yield self.sim.process(self.modem.send(2048, label="special"))
        special = self.server.get_special(self.name)
        if special is None:
            return
        self._execute_special(special)

    def _execute_special(self, special) -> None:
        """Run an already-downloaded special and stage its output."""
        output = special.script()
        self.sim.trace.emit(self.name, "special_executed", command=special.command_id)
        self._staged_special_outputs.append(
            {
                "command_id": special.command_id,
                "staged_at": special.staged_at,
                "executed_at": self.sim.now,
                "output": output,
            }
        )


class ReferenceStation(Station):
    """The fixed dGPS reference point at the café (Section II)."""


class BaseStation(Station):
    """The on-ice station: probes, wired probe, and the sub-glacial fetch."""

    def __init__(
        self,
        sim: Simulation,
        config: StationConfig,
        weather: IcelandWeather,
        server,
        glacier: GlacierModel,
        probes: List[Probe],
        wired_probe: Optional[WiredProbe] = None,
        sensors: Optional[list] = None,
        probe_corruption_probability: float = 0.0,
        probe_time_sync: bool = True,
    ) -> None:
        super().__init__(sim, config, weather, server, glacier=glacier, sensors=sensors)
        self.probes = probes
        self.wired_probe = wired_probe if wired_probe is not None else WiredProbe(sim)
        self.fetcher = BulkFetcher(sim)
        self.commander = ProbeCommander(sim)
        self.probe_time_sync = probe_time_sync
        self.prioritizer = DataPrioritizer() if config.data_priority_comms else None
        self.priority_uploads = 0
        self._todays_analysis: List[dict] = []
        self._todays_probe_ids: List[int] = []
        self.probe_links: Dict[int, ProbeRadioLink] = {
            probe.probe_id: ProbeRadioLink(
                sim, loss_fn=glacier.probe_radio_loss,
                name=f"{self.name}.probe_link.{probe.probe_id}",
                corruption_probability=probe_corruption_probability,
                mode=config.comms_mode,
            )
            for probe in probes
        }
        self.readings_collected = 0

    def _probe_jobs(self):
        """Fetch buffered data from every live probe (all power states)."""
        with self.sim.obs.span("probe_jobs", track=self.name):
            yield from self._probe_jobs_body()

    def _probe_jobs_body(self):
        self._todays_analysis = []
        self._todays_probe_ids = []
        if not self.wired_probe.is_alive:
            self.sim.trace.emit(self.name, "probe_comms_impossible", reason="wired_probe")
            return
        alive = [probe for probe in self.probes if probe.is_alive]
        if not alive:
            return
        # Keep probe work inside ~40% of the watchdog window so uploads fit.
        budget_each = 0.4 * self.config.max_runtime_s / len(alive)
        for probe in alive:
            link = self.probe_links[probe.probe_id]
            with self.sim.obs.span("probe_fetch", track=self.name,
                                   probe_id=probe.probe_id):
                result = yield self.sim.process(
                    self.fetcher.fetch(probe, link, budget_s=budget_each)
                )
            if result.received_new or result.complete:
                self._todays_probe_ids.append(probe.probe_id)
                # Keep the probe's clock anchored while we can talk to it
                # (its timestamps are meaningless otherwise).
                if self.probe_time_sync:
                    yield self.sim.process(self.commander.time_sync(probe, link))
            if result.received_new:
                self.readings_collected += result.received_new
                self._readings_this_session += result.received_new
                if self.prioritizer is not None and result.task_id is not None:
                    holdings = self.fetcher.holdings(probe.probe_id, result.task_id)
                    self._todays_analysis.extend(
                        {"probe_id": probe.probe_id, "channels": reading.channels}
                        for reading in holdings.values()
                    )
            if result.received_new:
                self._stage_file(
                    "probes",
                    READING_BYTES * result.received_new,
                    probe=probe.probe_id,
                    task=result.task_id,
                    seqs=result.new_seqs,
                    payload={
                        "probe_id": probe.probe_id,
                        "task_id": result.task_id,
                        "count": result.received_new,
                        "readings": [
                            {"seq": r.seq, "time": r.time, "channels": r.channels}
                            for r in self.fetcher.holdings(
                                probe.probe_id, result.task_id
                            ).values()
                        ]
                        if result.complete
                        else None,
                    },
                )

    def _maybe_priority_comms(self):
        """Section VII extension: urgent findings force a minimal upload.

        Runs only in power state 0 (the normal states upload everything
        anyway).  The upload is deliberately tiny — the event summary and
        the triggering probe's latest readings — and is rationed by the
        prioritizer's monthly budget, because this is power the Table II
        policy says the station cannot really afford.
        """
        if self.prioritizer is None:
            return
        events = self.prioritizer.analyse(self._todays_analysis, self._todays_probe_ids)
        month = self.sim.utcnow().month
        if not self.prioritizer.should_force_comms(events, month):
            return
        self.sim.trace.emit(
            self.name, "priority_comms",
            events=[(e.kind, e.probe_id) for e in events],
        )
        try:
            yield self.sim.process(self.modem.connect())
            summary_bytes = 2048 + 64 * len(events)
            yield self.sim.process(self.modem.send(summary_bytes, label="priority"))
            self.server.upload_data(
                self.name, summary_bytes, kind="priority",
                payload={
                    "events": [
                        {"kind": e.kind, "probe_id": e.probe_id, "detail": e.detail}
                        for e in events
                    ]
                },
            )
            self.priority_uploads += 1
        except LinkDown:
            self.sim.trace.emit(self.name, "priority_comms_failed")
        finally:
            self.modem.disconnect()
