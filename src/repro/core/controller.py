"""The daily battery-health calculation (Section III).

"Measurements of the battery voltage every thirty minutes ... Once a day
these voltages are downloaded to the Gumstix and a daily average
calculated.  This averaging is to enable the overall health of the battery
to be determined rather than just the health at midday ... as the highest
voltage for the day is reached at approximately midday."
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.power_policy import PowerPolicy, PowerState


def daily_average_voltage(samples: Sequence[Tuple[float, float]]) -> Optional[float]:
    """Mean voltage of the downloaded (time, volts) samples.

    Returns ``None`` for an empty log (first boot, or RAM lost) — callers
    fall back to an instantaneous ADC reading in that case.
    """
    if not samples:
        return None
    return sum(volts for _time, volts in samples) / len(samples)


def decide_local_state(
    policy: PowerPolicy,
    samples: Sequence[Tuple[float, float]],
    instantaneous_voltage: float,
) -> Tuple[PowerState, float]:
    """The station's local power-state decision.

    Uses the daily average when a log exists; otherwise the immediate ADC
    reading (conservative: a midday instantaneous reading is near the daily
    peak, but it is all a freshly-rebooted station has).

    Returns ``(state, voltage_used)``.
    """
    average = daily_average_voltage(samples)
    voltage = average if average is not None else instantaneous_voltage
    return policy.state_for_voltage(voltage), voltage
