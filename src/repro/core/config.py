"""Deployment configuration: every tunable, with the paper's defaults."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.energy.battery import BatteryConfig
from repro.environment.glacier import GlacierConfig
from repro.environment.weather import WeatherConfig


@dataclass
class StationConfig:
    """One station's hardware and software settings.

    The defaults describe the base station; :func:`reference_defaults`
    builds the reference-station variant (no wind turbine or probes, café
    mains instead).
    """

    name: str = "base"
    #: Daily communication window start, hours UTC ("daily, at midday UTC").
    comms_hour: float = 12.0
    #: MSP430 wakes the Gumstix slightly before the window for boot + probe work.
    wake_hour: float = 11.75
    battery: BatteryConfig = field(default_factory=BatteryConfig)
    #: Solar panel rating (10 W on the base station).
    solar_w: float = 10.0
    #: Wind turbine rating (50 W on the base station; 0 = not fitted).
    wind_w: float = 50.0
    #: Mains charger rating (reference station only; 0 = not fitted).
    mains_w: float = 0.0
    #: Gumstix boot time, seconds.
    boot_s: float = 60.0
    #: MSP430 battery/sensor sampling period (paper: 30 minutes).
    sample_interval_s: float = 1800.0
    #: The emergency maximum runtime (paper: 2 hours).
    max_runtime_s: float = 7200.0
    #: RTC drift, ppm (clock skew between the stations comes from here).
    rtc_drift_ppm: float = 0.0
    #: Initial battery state of charge.
    initial_soc: float = 0.9
    #: GPRS whole-day outage probability (winter baseline).
    gprs_outage_probability: float = 0.08
    #: GPRS whole-day outage probability at full melt.
    gprs_summer_outage_probability: float = 0.18
    #: Execute the special command before the data upload (the paper's
    #: proposed fix for the oversized-backlog livelock); the deployed system
    #: ran it after.
    special_before_data: bool = False
    #: Enable the NTP-over-GPRS clock fallback (paper future work).
    ntp_fallback: bool = False
    #: Re-discipline the RTC from a GPS time fix during the daily run.
    #: "Maintaining good time accuracy on the two units is still needed"
    #: (Section II) — without this, drifting RTCs slide the two stations'
    #: MSP-driven dGPS windows apart until differencing becomes impossible.
    daily_rtc_sync: bool = True
    #: Enable data-priority communication (paper future work, §VII):
    #: urgent findings in the probe data can force a minimal upload even
    #: in power state 0.
    data_priority_comms: bool = False
    #: Fixed position of the station's GPS antenna, or None to ride the ice.
    fixed_position_m: Optional[float] = None
    #: CF-card corruption probability per unclean power removal.
    cf_corruption_probability: float = 0.01
    #: Automatically pull newer code releases during the daily session
    #: (the §VI update scripts: download, checksum, install, report MD5).
    auto_update: bool = True
    #: Probability a code download is corrupted in transit.
    code_corruption_probability: float = 0.0
    #: Log bytes emitted per probe reading handled in a session.  The
    #: deployed binaries were chatty: "when a probe is communicated with
    #: for the first time in a few months then over 1 megabyte of log data
    #: can be produced" — 3000 readings x ~400 B of per-packet logging.
    #: Section VI's lesson is to trim this before deployment.
    log_bytes_per_reading: float = 400.0
    #: Fixed daily log overhead, bytes.
    log_base_bytes: int = 4096
    #: Comms transfer engine: ``"exact"`` (single inverse-CDF drop-time
    #: sample per transfer, one kernel timeout, default) or ``"chunked"``
    #: (the original per-chunk Bernoulli loop) — the A/B oracle pair for
    #: the exact-interval comms layer, mirroring ``energy_mode``.
    comms_mode: str = "exact"
    #: Energy integrator: ``"adaptive"`` (event-driven crossing prediction,
    #: default) or ``"fixed"`` (the original 300 s sampling tick) — kept
    #: selectable so A/B validation stays one flag away.
    energy_mode: str = "adaptive"
    #: Fixed-mode integration step; also the adaptive planner's scan grid.
    energy_step_s: float = 300.0
    #: Adaptive mode: longest allowed gap between bus syncs, seconds.
    energy_max_step_s: float = 21600.0
    #: Fold state upload + override fetch + special drain into one
    #: ``sync_session`` request per contact (the fleet's batched state-sync
    #: endpoint); ``False`` keeps the paper's three separate round-trips.
    batched_sync: bool = False


def reference_defaults(name: str = "reference") -> StationConfig:
    """The reference station: solar + café mains, no wind, fixed position."""
    return StationConfig(
        name=name,
        wind_w=0.0,
        mains_w=30.0,
        fixed_position_m=0.0,
    )


@dataclass
class DeploymentConfig:
    """The full two-station Iceland deployment."""

    seed: int = 0
    base: StationConfig = field(default_factory=StationConfig)
    reference: StationConfig = field(default_factory=lambda: reference_defaults())
    weather: WeatherConfig = field(default_factory=WeatherConfig)
    glacier: GlacierConfig = field(default_factory=GlacierConfig)
    #: Probe ids deployed in summer 2008 (seven; Fig 6 shows 21, 24, 25).
    probe_ids: Tuple[int, ...] = (20, 21, 22, 23, 24, 25, 26)
    #: Probe measurement period.
    probe_sampling_interval_s: float = 1800.0
    #: Deferred probe sampling (default): fixed-cadence samples cost zero
    #: kernel events and are synthesised lazily; ``False`` runs the
    #: original one-event-per-sample loop — the equivalence oracle.
    probe_defer_sampling: bool = True
    #: Fixed probe lifetimes in days (None entries draw from the Weibull).
    probe_lifetimes_days: Optional[List[Optional[float]]] = None
    #: Wired-probe lifetime (None = never fails).
    wired_probe_lifetime_days: Optional[float] = None
    #: Probability a probe packet arrives broken (CRC failure) — Section V
    #: counts "missing or broken" packets together; the link keeps them
    #: apart in its statistics.
    probe_corruption_probability: float = 0.015
    #: Probe oscillator drift, ppm (their cheap crystals wander; the base
    #: re-syncs them at each contact).
    probe_clock_drift_ppm: float = 25.0
    #: Whether the base time-syncs each probe after a successful contact.
    probe_time_sync: bool = True
    #: Fit the §VII enclosure pitch/roll sensors on both stations.
    station_tilt_sensors: bool = False
    #: Fault plan to arm against this deployment, as the plain-dict form of
    #: :class:`repro.faults.FaultPlan`.  Data only: the core layer never
    #: interprets it — the layers above (cli, fleet, lint) hand it to
    #: ``repro.faults.apply_fault_plan`` before running, preserving the §7
    #: downward-imports rule.
    fault_plan: Optional[dict] = None
    #: Kernel tie-break policy for same-timestamp events: ``"fifo"``
    #: (default), ``"lifo"``, or ``"shuffle:<seed>"``.  The perturbed
    #: policies are replay *controls* for the races harness
    #: (``repro.lint.tie_replay``); production runs keep fifo.
    tie_break: str = "fifo"
    #: Additional solar-only stations beyond the paper's base + reference
    #: pair (``station00``, ``station01``, ...), each with its wake/comms
    #: window staggered so contacts spread across the day.
    extra_stations: int = 0
    #: Southampton server shards.  1 (default) keeps the paper's single
    #: standalone server; >1 builds a :class:`repro.server.fleet.ServerFleet`
    #: and gives every station a policy-driven
    #: :class:`repro.core.targets.FleetClient`.
    servers: int = 1
    #: Station-side upload-target policy against a fleet: ``"static"``
    #: (stay on the home shard), ``"round-robin"``, or ``"hop"``
    #: (commons-style least-loaded/cheapest choice from piggybacked load
    #: hints).  Ignored when ``servers == 1``.
    server_policy: str = "static"
    #: Relative energy/egress cost per shard for the ``hop`` policy
    #: (len == ``servers``); ``None`` means all shards cost 1.0.
    server_costs: Optional[List[float]] = None
    #: Stations per tenant for the fleet's per-tenant override state
    #: (grouped in deployment order).  0 keeps the paper's single global
    #: min rule across all stations.
    tenant_size: int = 0
