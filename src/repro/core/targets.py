"""Station-side upload-target selection against a server fleet.

"The Beauty of the Commons" has clients hop between base stations to keep
any one of them from melting down; here each station owns a
:class:`FleetClient` — a thin proxy that satisfies the single-server
surface the station and :class:`~repro.core.sync.StateSynchronizer`
already speak, while routing every call to the shard the active policy
picked at session start.

Policies are deliberately deterministic (no RNG): the choice depends only
on the session count and the load hints the previous responses piggybacked,
so same-seed missions replay byte-identically.

- ``static``: never leave the home shard (the paper's behaviour, sharded).
- ``round-robin``: rotate shards once per session, ignoring load.
- ``hop``: pick the shard minimising ``load_hint x cost``, with a
  hysteresis margin so a marginal improvement doesn't cause flapping.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.server.fleet import ServerFleet
from repro.sim.kernel import Simulation

#: Recognised upload-target policies, in CLI/docs order.
POLICIES = ("static", "round-robin", "hop")

#: ``hop`` only moves when the best shard's score undercuts the current
#: shard's by this fraction — the commons paper's anti-flap margin.
HOP_HYSTERESIS = 0.1


class FleetClient:
    """One station's policy-driven view of a :class:`ServerFleet`.

    Exposes the :class:`~repro.server.server.SouthamptonServer` surface the
    station code calls during a session; every call lands on the shard
    chosen by :meth:`begin_session`.  Load hints arrive piggybacked on
    ``sync_session`` / ``get_override_state`` responses and steer the next
    session's choice — stations never get a side channel to live state.
    """

    def __init__(
        self,
        sim: Simulation,
        station_name: str,
        fleet: ServerFleet,
        policy: str = "static",
        home: int = 0,
        costs: Optional[List[float]] = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown server policy {policy!r}, want one of {POLICIES}")
        if costs is not None and len(costs) != len(fleet.shards):
            raise ValueError(
                f"server_costs needs {len(fleet.shards)} entries, got {len(costs)}"
            )
        self.sim = sim
        self.station_name = station_name
        self.fleet = fleet
        self.policy = policy
        self.home = home % len(fleet.shards)
        self.costs = list(costs) if costs is not None else [1.0] * len(fleet.shards)
        self.current = self.home
        self.sessions = 0
        self.hops = 0
        #: Last piggybacked per-shard load hints, by shard name.
        self.load_hints: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Policy
    # ------------------------------------------------------------------
    def begin_session(self) -> None:
        """Re-run the policy at the top of a comms session.

        Stations call this once per contact (before any server call), so a
        whole session sticks to one shard — hopping mid-upload would split
        a day's files across archives for no modelling gain.
        """
        target = self._choose()
        # Shard indexes are ints; the tie-break is deterministic.
        if target != self.current:  # repro-lint: disable=float-equality
            self.hops += 1
            self.sim.obs.metrics.inc(
                "fleet_hops_total",
                station=self.station_name,
                **{"from": self.fleet.shards[self.current].name,
                   "to": self.fleet.shards[target].name},
            )
            self.sim.trace.emit(
                self.station_name, "fleet_hop",
                src=self.fleet.shards[self.current].name,
                dst=self.fleet.shards[target].name,
                policy=self.policy,
            )
            self.current = target
        self.sessions += 1

    def _choose(self) -> int:
        if self.policy == "static":
            return self.home
        if self.policy == "round-robin":
            return (self.home + self.sessions) % len(self.fleet.shards)
        return self._choose_hop()

    def _choose_hop(self) -> int:
        if not self.load_hints:
            return self.current
        scores = [
            self.load_hints.get(shard.name, 0) * self.costs[index]
            for index, shard in enumerate(self.fleet.shards)
        ]
        best = min(range(len(scores)), key=lambda index: (scores[index], index))
        # Hysteresis: only move for a clear win over the current shard.
        if scores[best] >= scores[self.current] * (1.0 - HOP_HYSTERESIS):
            return self.current
        return best

    def _absorb_hints(self, loads: Optional[Dict[str, int]]) -> None:
        if loads is not None:
            self.load_hints = dict(loads)

    @property
    def shard(self):
        """The shard this session is pinned to."""
        return self.fleet.shards[self.current]

    # ------------------------------------------------------------------
    # SouthamptonServer surface (station-facing), routed to the shard
    # ------------------------------------------------------------------
    def upload_power_state(self, station: str, state: int) -> None:
        self.shard.upload_power_state(station, state)

    def get_override_state(self, station: str) -> Optional[int]:
        override = self.shard.get_override_state(station)
        self._absorb_hints(self.fleet.load_hints())
        return override

    def sync_session(self, station: str, state: int) -> Dict:
        response = self.shard.sync_session(station, state)
        self._absorb_hints(response["loads"])
        return response

    def upload_data(self, station: str, nbytes: int, kind: str, payload=None,
                    name: Optional[str] = None) -> None:
        self.shard.upload_data(station, nbytes, kind, payload=payload, name=name)

    def get_special(self, station: str):
        return self.shard.get_special(station)

    def get_release(self, name: str):
        return self.shard.get_release(name)

    def report_checksum(self, station: str, release_name: str, md5: str) -> None:
        self.shard.report_checksum(station, release_name, md5)

    @property
    def releases(self):
        """The fleet-shared release registry (read by the auto-updater)."""
        return self.fleet.releases

    @property
    def power_states(self):
        """The fleet-shared state store."""
        return self.fleet.power_states

    def received_bytes(self, station: Optional[str] = None, kind: Optional[str] = None,
                       unique: bool = False) -> int:
        """Fleet-wide total — analysis code reads this off any station."""
        return self.fleet.received_bytes(station=station, kind=kind, unique=unique)


def make_clients(
    sim: Simulation,
    fleet: ServerFleet,
    station_names: List[str],
    policy: str = "static",
    costs: Optional[List[float]] = None,
    home_of: Optional[Callable[[int], int]] = None,
) -> Dict[str, FleetClient]:
    """One client per station, home shards spread round-robin by default."""
    clients = {}
    for index, name in enumerate(station_names):
        home = home_of(index) if home_of is not None else index % len(fleet.shards)
        clients[name] = FleetClient(
            sim, name, fleet, policy=policy, home=home, costs=costs
        )
    return clients
