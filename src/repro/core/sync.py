"""Server-mediated power-state synchronisation (Section III).

The stations never talk to each other; each uploads its local state and
later downloads an override — the server's min-rule answer.  Two safety
layers run *on the station*:

- the override may lower but never raise the state above what the local
  battery allows;
- the station can never be forced into state 0 from outside (state 0 does
  no communications, so a forced 0 would be unrecoverable remotely);
- if fetching the override fails for any reason, the station "will just
  rely on its local state".
"""

from __future__ import annotations

from typing import Optional

from repro.core.power_policy import PowerState
from repro.sim.events import Interrupt
from repro.sim.kernel import Simulation


def clamp_override(local_state: PowerState, override: Optional[int]) -> PowerState:
    """Apply the station-side safety rules to a server override.

    - ``override is None`` (fetch failed / nothing known): local state wins.
    - The override is floored at state 1: no remote force into state 0.
    - The result never exceeds the local (battery-allowed) state.
    """
    if override is None:
        return local_state
    floored = max(int(override), int(PowerState.S1))
    return PowerState(min(int(local_state), floored))


class StateSynchronizer:
    """The station's client side of the sync protocol.

    All methods assume the caller already holds a connected modem session;
    reaching the server costs a small request's airtime through it.
    """

    #: Size of a state upload / override request on the wire.
    REQUEST_BYTES = 256

    def __init__(self, sim: Simulation, station_name: str, server, modem) -> None:
        self.sim = sim
        self.station_name = station_name
        self.server = server
        self.modem = modem
        self.override_fetch_failures = 0

    def upload_state(self, state: PowerState):
        """Process: report the local state.  Raises LinkDown on failure."""
        yield self.sim.process(self.modem.send(self.REQUEST_BYTES, label="power_state"))
        self.server.upload_power_state(self.station_name, int(state))

    def fetch_override(self, local_state: PowerState):
        """Process: download the override and apply the safety clamps.

        Never raises: any failure means "rely on the local state".
        Returns ``(effective_state, override_or_None)``.
        """
        try:
            yield self.sim.process(self.modem.send(self.REQUEST_BYTES, label="override"))
            override = self.server.get_override_state(self.station_name)
        except Interrupt:
            raise
        except Exception as exc:  # noqa: BLE001 - "never raises" means *any* failure
            self._note_fetch_failure(exc)
            return local_state, None
        self.sim.obs.metrics.inc("sync_override_fetches_total",
                                 station=self.station_name, result="ok")
        return self._apply(local_state, override), override

    def batched_sync(self, local_state: PowerState):
        """Process: the fleet's single-request session — upload the local
        state, fetch the override, and drain one special command in one
        modem round-trip (``server.sync_session``).

        Never raises, like :meth:`fetch_override`: any failure means the
        station relies on its local state and skips the drained special.
        Returns ``(effective_state, override_or_None, special_or_None,
        loads_or_None)`` — ``loads`` is the fleet's piggybacked per-shard
        load hint (None from a standalone server).
        """
        try:
            yield self.sim.process(
                self.modem.send(self.REQUEST_BYTES, label="sync_session")
            )
            response = self.server.sync_session(self.station_name, int(local_state))
        except Interrupt:
            raise
        except Exception as exc:  # noqa: BLE001 - same contract as fetch_override
            self._note_fetch_failure(exc)
            return local_state, None, None, None
        self.sim.obs.metrics.inc("sync_override_fetches_total",
                                 station=self.station_name, result="ok")
        override = response["override"]
        effective = self._apply(local_state, override)
        return effective, override, response["special"], response["loads"]

    def _note_fetch_failure(self, exc: Exception) -> None:
        self.override_fetch_failures += 1
        self.sim.obs.metrics.inc("sync_override_fetches_total",
                                 station=self.station_name, result="failed")
        self.sim.trace.emit(self.station_name, "override_fetch_failed",
                            error=type(exc).__name__)

    def _apply(self, local_state: PowerState, override: Optional[int]) -> PowerState:
        effective = clamp_override(local_state, override)
        self.sim.trace.emit(
            self.station_name,
            "override_applied",
            local=int(local_state),
            override=override,
            effective=int(effective),
        )
        return effective
