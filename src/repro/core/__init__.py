"""The paper's contribution: adaptive power management for hybrid nodes.

This package is the Python control layer the paper describes running on the
stations ("we have used Python for all high-level code ... All decision
making, most time-outs and state-handling is written in Python"), ported to
run against the simulated hardware:

- :mod:`repro.core.power_policy` — Table II: the four power states, their
  voltage thresholds and what each permits;
- :mod:`repro.core.controller` — the daily battery-voltage average and the
  local state decision;
- :mod:`repro.core.sync` — the server-mediated state synchronisation with
  its station-side safety clamps;
- :mod:`repro.core.recovery` — automatic schedule resetting after total
  battery exhaustion (Section IV);
- :mod:`repro.core.station` — the Fig 4 daily run sequence for base and
  reference stations;
- :mod:`repro.core.deployment` — the top-level facade wiring a full
  two-station deployment;
- :mod:`repro.core.config` — every tunable, with paper defaults.
"""

from repro.core.config import DeploymentConfig, StationConfig
from repro.core.controller import daily_average_voltage
from repro.core.deployment import Deployment
from repro.core.power_policy import (
    POWER_STATE_TABLE,
    PowerPolicy,
    PowerState,
    PowerStateSpec,
)
from repro.core.recovery import LAST_RUN_FILE, ScheduleRecovery
from repro.core.station import BaseStation, ReferenceStation, Station
from repro.core.sync import StateSynchronizer, clamp_override

__all__ = [
    "BaseStation",
    "Deployment",
    "DeploymentConfig",
    "LAST_RUN_FILE",
    "POWER_STATE_TABLE",
    "PowerPolicy",
    "PowerState",
    "PowerStateSpec",
    "ReferenceStation",
    "ScheduleRecovery",
    "Station",
    "StationConfig",
    "StateSynchronizer",
    "clamp_override",
    "daily_average_voltage",
]
