"""Table II: the power states and what each allows.

======  =================  ==========  ===============  ===========  =====
State   Min threshold (V)  Probe jobs  Sensor readings  GPS          GPRS
======  =================  ==========  ===============  ===========  =====
3       12.5               Yes         Yes              12 per day   Yes
2       12.0               Yes         Yes              1 per day    Yes
1       11.5               Yes         Yes              No           Yes
0       —                  Yes         Yes              No           No
======  =================  ==========  ===============  ===========  =====

Probe jobs run in *every* state because "radio communication with the
probes is better in the winter due to the drier ice conditions so probe
communications should always be attempted"; sensor readings are free
("negligible cost as it is managed by the MSP430").  State 0 keeps sensing
and probe collection but stops GPS and GPRS entirely — the station goes
silent rather than flat.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class PowerState(enum.IntEnum):
    """The four Table II power states (ordered: higher = more active)."""

    S0 = 0
    S1 = 1
    S2 = 2
    S3 = 3


@dataclass(frozen=True)
class PowerStateSpec:
    """What one power state permits.

    ``min_threshold_v`` is the daily-average battery voltage required to
    *enter* the state (``None`` for state 0, the unconditional floor).
    """

    state: PowerState
    min_threshold_v: Optional[float]
    probe_jobs: bool
    sensor_readings: bool
    gps_readings_per_day: int
    gprs: bool


#: Table II, exactly as printed.
POWER_STATE_TABLE: Dict[PowerState, PowerStateSpec] = {
    PowerState.S3: PowerStateSpec(PowerState.S3, 12.5, True, True, 12, True),
    PowerState.S2: PowerStateSpec(PowerState.S2, 12.0, True, True, 1, True),
    PowerState.S1: PowerStateSpec(PowerState.S1, 11.5, True, True, 0, True),
    PowerState.S0: PowerStateSpec(PowerState.S0, None, True, True, 0, False),
}


class PowerPolicy:
    """Maps battery health to a power state and a dGPS schedule.

    Parameters
    ----------
    table:
        Override of the Table II specs (ablations tweak thresholds here).
    gps_reading_duration_s:
        Length of one dGPS recording.  The default is calibrated from the
        paper's Section III arithmetic: a full 36 Ah battery runs a
        continuous 3.6 W GPS for 5 days, and lasts 117 days in state 3 —
        which pins 12 readings/day at ``24*3600*5 / (117*12)`` ≈ 307.7 s.
    """

    #: Derived from the paper's 5-day / 117-day lifetime pair.
    DEFAULT_READING_DURATION_S = 24 * 3600 * 5.0 / (117 * 12)

    def __init__(
        self,
        table: Optional[Dict[PowerState, PowerStateSpec]] = None,
        gps_reading_duration_s: float = DEFAULT_READING_DURATION_S,
    ) -> None:
        self.table = dict(table if table is not None else POWER_STATE_TABLE)
        self.gps_reading_duration_s = gps_reading_duration_s

    def spec(self, state: PowerState) -> PowerStateSpec:
        """The Table II row for ``state``."""
        return self.table[PowerState(state)]

    def state_for_voltage(self, average_voltage: float) -> PowerState:
        """The highest state whose threshold the daily average clears."""
        for state in (PowerState.S3, PowerState.S2, PowerState.S1):
            threshold = self.table[state].min_threshold_v
            if threshold is not None and average_voltage >= threshold:
                return state
        return PowerState.S0

    def gps_hours(self, state: PowerState) -> List[float]:
        """Times of day (hours UTC) at which the MSP430 starts dGPS readings.

        State 3 spreads 12 readings evenly (every 2 hours — the interval of
        the Fig 5 voltage dips); state 2's single reading is taken late
        morning so it overlaps the other station's and is fresh for the
        midday upload.
        """
        count = self.spec(state).gps_readings_per_day
        if count <= 0:
            return []
        if count == 1:
            return [11.0]
        step = 24.0 / count
        return [round(i * step, 6) for i in range(count)]

    def daily_gps_energy_j(self, state: PowerState, gps_power_w: float = 3.6) -> float:
        """Energy/day the dGPS schedule costs in ``state``."""
        count = self.spec(state).gps_readings_per_day
        return count * self.gps_reading_duration_s * gps_power_w
