"""Automatic schedule resetting after total battery exhaustion (Section IV).

After a brown-out the MSP430's RAM schedule is gone and the RTC has reset
to 1/1/1970.  On the next boot:

1. the station reads the persisted "last successful run" timestamp and
   checks whether the RTC's current time is *before* it — if so the RTC
   cannot be trusted;
2. it powers the GPS and takes a time fix; "if the system cannot set the
   time using GPS then the system will sleep for a day and try again"
   (the flash-default daily wake provides the retry);
3. an NTP-over-GPRS fallback (the paper's future-work suggestion) is
   implemented as an optional second source;
4. once the clock is right, the schedule is rewritten for state 0 and
   normal operation resumes.
"""

from __future__ import annotations

import datetime as _dt
from typing import Optional

from repro.gps.receiver import GpsReceiver, TimeFixFailed
from repro.sim.events import Interrupt
from repro.hardware.i2c import I2CBus
from repro.hardware.storage import CompactFlashCard, StorageCorruption
from repro.sim.kernel import Simulation

#: Name of the persisted last-successful-run marker on the CF card.
LAST_RUN_FILE = "state/last_run"


class ScheduleRecovery:
    """RTC trust checking and clock recovery for one station."""

    def __init__(
        self,
        sim: Simulation,
        station_name: str,
        card: CompactFlashCard,
        gps: GpsReceiver,
        i2c: I2CBus,
        ntp_fallback: bool = False,
        gprs_modem=None,
    ) -> None:
        self.sim = sim
        self.station_name = station_name
        self.card = card
        self.gps = gps
        self.i2c = i2c
        self.ntp_fallback = ntp_fallback
        self.gprs_modem = gprs_modem
        self.recoveries = 0
        self.failed_attempts = 0

    # ------------------------------------------------------------------
    # The persisted marker
    # ------------------------------------------------------------------
    def record_successful_run(self) -> None:
        """Persist the RTC's time of this successful run."""
        when = self.i2c.read_rtc()
        self.card.write(LAST_RUN_FILE, size_bytes=32, created=self.sim.now, payload=when)

    def last_run_time(self) -> Optional[_dt.datetime]:
        """The recorded last run, or ``None`` if never recorded/corrupted."""
        try:
            return self.card.read(LAST_RUN_FILE).payload
        except (FileNotFoundError, StorageCorruption):
            return None

    def rtc_trusted(self) -> bool:
        """The Section IV check: the RTC must not be earlier than the last run.

        A station that has never run trusts its (factory-set) clock.
        """
        last_run = self.last_run_time()
        if last_run is None:
            return True
        return self.i2c.read_rtc() >= last_run

    # ------------------------------------------------------------------
    # Clock recovery
    # ------------------------------------------------------------------
    def recover_clock(self):
        """Process: restore the RTC from GPS (or NTP fallback).

        Returns True on success.  On failure the caller shuts down and the
        flash-default schedule retries tomorrow.
        """
        try:
            fix = yield self.sim.process(self.gps.time_fix())
        except TimeFixFailed:
            fix = None
        if fix is None and self.ntp_fallback and self.gprs_modem is not None:
            fix = yield from self._ntp_time()
        if fix is None:
            self.failed_attempts += 1
            self.sim.obs.metrics.inc("clock_recoveries_total",
                                     station=self.station_name, result="failed")
            self.sim.trace.emit(self.station_name, "clock_recovery_failed")
            return False
        self.i2c.set_rtc(fix)
        self.recoveries += 1
        self.sim.obs.metrics.inc("clock_recoveries_total",
                                 station=self.station_name, result="ok")
        self.sim.trace.emit(self.station_name, "clock_recovered", time=fix.isoformat())
        return True

    def _ntp_time(self):
        """NTP over GPRS: the paper's proposed extension.

        Any failure mode — a coverage outage (:class:`LinkDown`) or
        anything else the modem stack raises — must leave the session
        closed, or the modem's load stays latched on and drains the
        battery until the next daily run.  ``disconnect()`` therefore
        runs in a ``finally``; only kernel interrupts (watchdog, power
        kill) propagate, and those unwind through the same ``finally``.
        """
        try:
            yield self.sim.process(self.gprs_modem.connect())
            yield self.sim.process(self.gprs_modem.send(96, label="ntp"))
        except Interrupt:
            raise
        except Exception as exc:  # noqa: BLE001 - any comms failure = no fix
            self.sim.trace.emit(self.station_name, "ntp_failed",
                                error=type(exc).__name__)
            return None
        finally:
            self.gprs_modem.disconnect()
        self.sim.trace.emit(self.station_name, "ntp_fix")
        return self.sim.utcnow()
