"""Data-priority communication: the paper's Section VII extension.

"This work could be extended by enabling the base station to analyse the
data collected and prioritise it[,] forcing communication even if the
available power is marginal if the data warrants it."

The :class:`DataPrioritizer` inspects each day's freshly collected probe
readings for scientifically urgent signals and, when one is found, grants
a bounded *priority comms budget* that lets a station in power state 0
(normally silent) make one minimal upload anyway.

Detectors (each maps to an event the project cares about):

- **melt onset** — basal conductivity jumping well above its trailing
  baseline (the Fig 6 signal arriving);
- **pressure surge** — subglacial water pressure spiking (stick-slip
  precursor, refs [4, 5]);
- **probe silence** — a previously live probe missing from the day's
  collection (health rather than science, but equally urgent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class PriorityEvent:
    """One urgent finding in the day's data."""

    kind: str
    probe_id: int
    value: float
    detail: str


@dataclass
class PrioritizerConfig:
    """Detection thresholds."""

    #: Conductivity must exceed baseline by this many µS to trigger.
    conductivity_jump_us: float = 3.0
    #: Trailing window (readings) for the conductivity baseline.
    baseline_window: int = 48
    #: Water pressure (m head) above which a surge triggers.
    pressure_surge_m: float = 75.0
    #: Maximum priority uploads allowed per calendar month (budget —
    #: marginal power must not be spent daily).
    monthly_budget: int = 3


class DataPrioritizer:
    """Stateful analyser of the probe readings a base station collects."""

    def __init__(self, config: Optional[PrioritizerConfig] = None) -> None:
        self.config = config or PrioritizerConfig()
        self._conductivity_history: Dict[int, List[float]] = {}
        self._seen_probes: set = set()
        self._uses_by_month: Dict[int, int] = {}
        self.events_detected: List[PriorityEvent] = []

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def analyse(self, readings: Sequence[dict], collected_probe_ids: Sequence[int]):
        """Inspect one day's readings; returns the events found.

        ``readings`` are dicts with ``channels``/``probe_id``-style keys as
        staged by the base station; ``collected_probe_ids`` is the set of
        probes that responded today (for silence detection).
        """
        events: List[PriorityEvent] = []
        for reading in readings:
            probe_id = reading.get("probe_id", -1)
            channels = reading.get("channels", {})
            if "conductivity_us" in channels:
                events.extend(
                    self._check_conductivity(probe_id, channels["conductivity_us"])
                )
            if "pressure_m" in channels:
                if channels["pressure_m"] > self.config.pressure_surge_m:
                    events.append(
                        PriorityEvent(
                            "pressure_surge", probe_id, channels["pressure_m"],
                            f"pressure {channels['pressure_m']:.1f} m exceeds "
                            f"{self.config.pressure_surge_m:.0f} m",
                        )
                    )
        events.extend(self._check_silence(collected_probe_ids))
        # One alert per (kind, probe) per day: a surge seen by fifty
        # readings is still one event.
        deduped: List[PriorityEvent] = []
        seen_keys = set()
        for event in events:
            key = (event.kind, event.probe_id)
            if key not in seen_keys:
                seen_keys.add(key)
                deduped.append(event)
        self.events_detected.extend(deduped)
        return deduped

    def _check_conductivity(self, probe_id: int, value: float):
        history = self._conductivity_history.setdefault(probe_id, [])
        events = []
        if len(history) >= self.config.baseline_window // 2:
            window = history[-self.config.baseline_window:]
            baseline = sum(window) / len(window)
            if value > baseline + self.config.conductivity_jump_us:
                events.append(
                    PriorityEvent(
                        "melt_onset", probe_id, value,
                        f"conductivity {value:.1f} µS vs baseline {baseline:.1f} µS",
                    )
                )
        history.append(value)
        if len(history) > 4 * self.config.baseline_window:
            del history[: len(history) - 2 * self.config.baseline_window]
        return events

    def _check_silence(self, collected_probe_ids: Sequence[int]):
        current = set(collected_probe_ids)
        vanished = self._seen_probes - current
        # Report each disappearance once; a probe that returns re-arms.
        self._seen_probes = (self._seen_probes | current) - vanished
        return [
            PriorityEvent("probe_silent", probe_id, 0.0,
                          f"probe {probe_id} stopped responding")
            for probe_id in sorted(vanished)
        ]

    # ------------------------------------------------------------------
    # The marginal-power budget
    # ------------------------------------------------------------------
    def should_force_comms(self, events: Sequence[PriorityEvent], month: int) -> bool:
        """Whether today's events justify spending marginal power.

        Grants at most ``monthly_budget`` forced uploads per calendar
        month; silence events alone do not unlock the budget (they can
        wait for the next scheduled contact — the science events cannot).
        """
        urgent = [e for e in events if e.kind in ("melt_onset", "pressure_surge")]
        if not urgent:
            return False
        used = self._uses_by_month.get(month, 0)
        if used >= self.config.monthly_budget:
            return False
        self._uses_by_month[month] = used + 1
        return True
