"""The Norway-era relay architecture, runnable (Section II).

Before the dual-GPRS redesign, the Glacsweb deployment relayed everything
through the reference station: the base pushed its data over a 466 MHz
radio-modem PPP link to the café, whose always-powered system forwarded it
over the fixed uplink.  The paper rejects this design for Iceland on three
grounds, all of which this module makes measurable:

1. **energy** — the radio modem is slower *and* hungrier than GPRS, and
   base data crosses the air twice;
2. **coupled failure** — "if the reference station failed in any way then
   all communication with the base station would also cease";
3. **disconnect ambiguity** — a battery-powered PPP endpoint must burn a
   reconnect-hold after every unexplained drop (Section II's
   interference-vs-finished problem).

:class:`RadioRelayDeployment` wires two simplified stations around a PPP
relay so the E7 architecture benches can compare *simulated* energy and
delivery against the dual-GPRS :class:`~repro.core.deployment.Deployment`,
not just Table I arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.comms.link import LinkDown
from repro.comms.radio import DisconnectReason, PppLink, RadioModem
from repro.energy.battery import Battery, BatteryConfig
from repro.energy.bus import PowerBus
from repro.energy.components import GPRS_MODEM, DeviceSpec
from repro.energy.sources import ConstantSource, SolarPanel, WindTurbine
from repro.environment.weather import IcelandWeather, WeatherConfig
from repro.server.server import SouthamptonServer
from repro.sim.kernel import Simulation
from repro.sim.simtime import DAY, HOUR, next_time_of_day

#: The Norway café's ADSL line, modelled as a device: fast and cheap to
#: drive (the modem is mains-powered; only the relaying computer's power
#: matters at the café, and the café has mains anyway).
ADSL_UPLINK = DeviceSpec("ADSL", power_w=5.0, transfer_rate_bps=256_000.0)


@dataclass
class RelayConfig:
    """Settings for the legacy relay deployment."""

    seed: int = 0
    #: Daily data produced at the base station, bytes.
    base_daily_bytes: int = 2_200_000
    #: Daily data produced at the reference station, bytes.
    reference_daily_bytes: int = 2_030_000
    #: Communication window start, hours UTC.
    comms_hour: float = 12.0
    #: Maximum session time per day (the same 2-hour safety bound).
    window_s: float = 2 * HOUR
    #: Reconnect attempts after a dropped PPP session within the window.
    max_reconnects: int = 3
    #: The reference's uplink device ("adsl" as in Norway, or "gprs").
    uplink: str = "adsl"
    #: Whether the café has mains power year-round (true in Norway).
    reference_has_mains: bool = True
    battery: BatteryConfig = field(default_factory=BatteryConfig)


class _RelayStation:
    """Shared scaffolding: a battery bus with solar/wind charging."""

    def __init__(self, sim: Simulation, name: str, weather: IcelandWeather,
                 config: RelayConfig, wind: bool) -> None:
        self.sim = sim
        self.name = name
        self.config = config
        self.bus = PowerBus(sim, Battery(config.battery, soc=0.9), name=f"{name}.power")
        self.bus.add_source(SolarPanel(weather, rated_w=10.0, name=f"{name}.solar"))
        if wind:
            self.bus.add_source(WindTurbine(weather, rated_w=50.0, name=f"{name}.wind"))
        self.alive = True

    def comms_energy_wh(self) -> float:
        """Energy spent on communication loads so far, Wh."""
        self.bus.sync()
        return sum(
            load.energy_j / 3600.0
            for load in self.bus.loads
            if "radio" in load.name or "uplink" in load.name
        )


class RelayBaseStation(_RelayStation):
    """The on-ice end of the PPP relay."""

    def __init__(self, sim, weather, config, reference: "RelayReferenceStation") -> None:
        super().__init__(sim, "legacy.base", weather, config, wind=True)
        self.reference = reference
        self.radio = RadioModem(sim, self.bus, name=f"{self.name}.radio",
                                environment="glacier", seed=config.seed)
        self.ppp = PppLink(sim, self.radio, name=f"{self.name}.ppp")
        self.bytes_delivered_to_reference = 0
        self.days_failed = 0
        self.reconnect_hold_s_total = 0.0
        sim.process(self._daily(), name=f"{self.name}.daily")

    def _daily(self):
        while True:
            yield self.sim.timeout(
                next_time_of_day(self.sim.now, self.config.comms_hour) - self.sim.now
            )
            if not self.alive:
                continue
            yield from self._session()

    def _session(self):
        """One daily window: push the day's data across the PPP link."""
        deadline = self.sim.now + self.config.window_s
        payload = self.config.base_daily_bytes
        attempts = 0
        delivered = False
        # The reference must power its radio endpoint for the session.
        receiving = self.reference.begin_receiving()
        try:
            while self.sim.now < deadline and attempts <= self.config.max_reconnects:
                attempts += 1
                reason = yield self.sim.process(self.ppp.run_session(payload, label="relay"))
                if reason is DisconnectReason.FINISHED:
                    delivered = True
                    break
                # The Section II ambiguity cost: stay powered for a
                # reconnect window after an unexplained drop.
                hold = self.ppp.recommended_hold_s(reason)
                self.reconnect_hold_s_total += hold
                self.bus.loads.switch_on(self.radio.name)
                yield self.sim.timeout(min(hold, max(0.0, deadline - self.sim.now)))
                self.bus.loads.switch_off(self.radio.name)
        finally:
            self.reference.end_receiving(receiving)
        if delivered and self.reference.alive:
            self.bytes_delivered_to_reference += payload
            self.reference.relay_inbox += payload
            self.sim.trace.emit(self.name, "relay_delivered", nbytes=payload)
        else:
            self.days_failed += 1
            self.sim.trace.emit(self.name, "relay_failed", attempts=attempts)


class RelayReferenceStation(_RelayStation):
    """The café end: PPP peer + uplink forwarder."""

    def __init__(self, sim, weather, config, server: SouthamptonServer) -> None:
        super().__init__(sim, "legacy.reference", weather, config, wind=False)
        self.server = server
        if config.reference_has_mains:
            self.bus.add_source(ConstantSource(40.0, name=f"{self.name}.mains"))
        # The PPP peer radio: powered whenever a session is in progress.
        self.radio_load = self.bus.add_load(f"{self.name}.radio", 3.960)
        uplink_spec = ADSL_UPLINK if config.uplink == "adsl" else GPRS_MODEM
        self.uplink_load = self.bus.add_load(f"{self.name}.uplink", uplink_spec.power_w)
        self.uplink_spec = uplink_spec
        self.relay_inbox = 0
        self.bytes_forwarded = 0
        self._receive_depth = 0
        sim.process(self._daily_forward(), name=f"{self.name}.forward")

    # -- PPP peer power accounting (driven by the base's sessions) --------
    def begin_receiving(self) -> bool:
        """The base opened a session: power the peer radio (if alive)."""
        if not self.alive:
            return False
        self._receive_depth += 1
        self.bus.loads.switch_on(self.radio_load.name)
        return True

    def end_receiving(self, token: bool) -> None:
        """Session over: release the peer radio."""
        if not token:
            return
        self._receive_depth = max(0, self._receive_depth - 1)
        if self._receive_depth == 0:
            self.bus.loads.switch_off(self.radio_load.name)

    # -- forwarding --------------------------------------------------------
    def _daily_forward(self):
        while True:
            yield self.sim.timeout(
                next_time_of_day(self.sim.now, self.config.comms_hour + 2.5) - self.sim.now
            )
            if not self.alive:
                continue
            total = self.relay_inbox + self.config.reference_daily_bytes
            self.relay_inbox = 0
            self.bus.loads.switch_on(self.uplink_load.name)
            yield self.sim.timeout(self.uplink_spec.transfer_seconds(total))
            self.bus.loads.switch_off(self.uplink_load.name)
            self.bytes_forwarded += total
            self.server.upload_data("legacy.reference", total, kind="relay")


class RadioRelayDeployment:
    """Two stations joined by the legacy PPP relay."""

    def __init__(self, config: Optional[RelayConfig] = None) -> None:
        self.config = config if config is not None else RelayConfig()
        self.sim = Simulation(seed=self.config.seed)
        self.weather = IcelandWeather(WeatherConfig(), seed=self.config.seed)
        self.server = SouthamptonServer(self.sim)
        self.reference = RelayReferenceStation(self.sim, self.weather, self.config,
                                               self.server)
        self.base = RelayBaseStation(self.sim, self.weather, self.config, self.reference)

    def run_days(self, days: float) -> None:
        """Advance the simulation."""
        self.sim.run_days(days)

    def fail_reference(self) -> None:
        """The coupled-failure scenario: the café system dies."""
        self.reference.alive = False
        self.sim.trace.emit("legacy.reference", "station_failed")

    def comms_energy_wh(self) -> float:
        """Whole-system communication energy so far, Wh."""
        return self.base.comms_energy_wh() + self.reference.comms_energy_wh()

    def delivered_bytes(self) -> int:
        """Base-station bytes that actually reached Southampton."""
        # Base data reaches the server only via the reference's forwards.
        forwarded = self.server.received_bytes(station="legacy.reference", kind="relay")
        own = self.config.reference_daily_bytes
        # Subtract the reference's own contribution per forwarding day.
        days = sum(
            1 for u in self.server.uploads if u.station == "legacy.reference"
        )
        return max(0, forwarded - days * own)
