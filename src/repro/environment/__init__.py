"""Environment models: Iceland weather, the glacier, and seasonal helpers.

The deployment site is on Vatnajökull at roughly 64° N.  The environment
package synthesises the signals the paper's system reacts to:

- :mod:`repro.environment.weather` — solar irradiance (strong seasonality,
  near-zero in December), wind (Weibull with winter storms), air
  temperature, snow accumulation and melt;
- :mod:`repro.environment.glacier` — melt-water input, basal electrical
  conductivity (the Fig 6 end-of-winter rise), subglacial water pressure,
  stick-slip ice motion for the dGPS, and the seasonal radio attenuation
  ("summer water") that degrades probe communications;
- :mod:`repro.environment.seasons` — calendar predicates such as the café
  tourist season (April-September mains power) and winter (Dec-March).
"""

from repro.environment.glacier import GlacierConfig, GlacierModel
from repro.environment.seasons import (
    cafe_has_power,
    is_tourist_season,
    is_winter,
    melt_season_factor,
)
from repro.environment.sites import SitePreset, iceland_site, norway_site, site_by_name
from repro.environment.weather import IcelandWeather, WeatherConfig

__all__ = [
    "GlacierConfig",
    "GlacierModel",
    "IcelandWeather",
    "SitePreset",
    "WeatherConfig",
    "cafe_has_power",
    "iceland_site",
    "is_tourist_season",
    "is_winter",
    "melt_season_factor",
    "norway_site",
    "site_by_name",
]
