"""Synthetic Iceland weather, deterministic in simulated time.

Every quantity is a *pure function of time* for a given seed, so charging
sources can sample the weather at arbitrary instants and repeated queries
agree.  Stochastic texture (clouds, gusts, precipitation) comes from
hash-derived noise interpolated between fixed 3-hour blocks — no hidden
mutable RNG state.

The site is Vatnajökull at ~64.3° N:

- **solar**: clear-sky elevation from the standard declination formula —
  near-midnight-sun day lengths in June, a few dim hours in December —
  scaled by a cloud-transmission factor;
- **wind**: seasonal mean (stronger in winter) with gust noise and
  occasional storm blocks;
- **temperature**: seasonal sinusoid (≈ +4 °C July, −10 °C January) with a
  small diurnal cycle and noise;
- **snow depth**: daily accumulation when cold and precipitating, degree-day
  melt when warm, integrated deterministically and cached.  Deep snow is
  what buries the solar panel and stops the wind turbine in winter.
"""

from __future__ import annotations

import functools
import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List

from repro.sim.simtime import DAY, day_of_year, fraction_of_day

#: Length of one noise block: 3 hours.
NOISE_BLOCK_S = 10800.0


@functools.lru_cache(maxsize=1_000_000)
def _block_noise(seed: int, stream: str, index: int) -> float:
    """Deterministic uniform [0,1) noise for one stream/block pair.

    Cached: simulations re-query the same blocks constantly (every power
    bus step samples the same weather blocks), and the value is a pure
    function of its arguments.
    """
    digest = hashlib.sha256(f"{seed}:{stream}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _smooth_noise(seed: int, stream: str, time: float) -> float:
    """Noise linearly interpolated between 3-hour block midpoints."""
    position = time / NOISE_BLOCK_S - 0.5
    lower = math.floor(position)
    frac = position - lower
    a = _block_noise(seed, stream, lower)
    b = _block_noise(seed, stream, lower + 1)
    return a * (1.0 - frac) + b * frac


@dataclass
class WeatherConfig:
    """Tunable parameters of the synthetic climate."""

    #: Site latitude in degrees north.
    latitude_deg: float = 64.3
    #: Minimum cloud transmission (fully overcast).
    cloud_min_transmission: float = 0.2
    #: Mean wind speed in summer, m/s.
    wind_mean_summer_ms: float = 5.0
    #: Mean wind speed in winter, m/s.
    wind_mean_winter_ms: float = 9.0
    #: Fraction of 3-hour blocks that are storms.
    storm_probability: float = 0.06
    #: Wind multiplier during storm blocks.
    storm_multiplier: float = 2.5
    #: Mean air temperature of the warmest day, °C.
    temp_summer_c: float = 4.0
    #: Mean air temperature of the coldest day, °C.
    temp_winter_c: float = -10.0
    #: Day of year of peak warmth.
    temp_peak_doy: int = 200
    #: Peak-to-mean diurnal temperature amplitude, °C.
    temp_diurnal_c: float = 2.0
    #: Random temperature excursion amplitude, °C.
    temp_noise_c: float = 3.0
    #: Fraction of days with precipitation.
    precip_probability: float = 0.45
    #: Snow accumulated by one full-precipitation cold day, metres.
    snowfall_m_per_day: float = 0.06
    #: Snow melted per positive degree-day, metres.
    melt_m_per_degree_day: float = 0.01
    #: Initial snow depth at the epoch, metres.
    initial_snow_m: float = 0.0


#: Grid step of the memoised per-day sample tables (resolves the diurnal
#: solar curve and the 3-hour noise blocks comfortably; consumers building
#: matching tables — :class:`repro.energy.sources.PowerSource` — must agree).
DAY_CACHE_STEP_S = 900.0
_DAY_CACHE_POINTS = int(DAY / DAY_CACHE_STEP_S) + 1  # inclusive of both ends


class IcelandWeather:
    """Deterministic weather provider for one site."""

    def __init__(self, config: WeatherConfig | None = None, seed: int = 0) -> None:
        self.config = config or WeatherConfig()
        self.seed = int(seed)
        self._snow_cache: List[float] = [self.config.initial_snow_m]
        #: ``(channel, day_index) -> tuple of samples`` — see :meth:`day_samples`.
        self._day_cache: Dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    # Per-day evaluation cache
    # ------------------------------------------------------------------
    def day_samples(self, channel: str, day_index: int) -> tuple:
        """Memoised samples of ``channel`` across one UTC day.

        ``channel`` is a method name (``"wind_speed"``, ``"solar_factor"``,
        ``"temperature_c"``); the result is a tuple of values on a uniform
        :data:`DAY_CACHE_STEP_S` grid covering ``[day_index*DAY,
        (day_index+1)*DAY]`` inclusive of both endpoints.  Quadrature over
        any sub-interval of a previously touched day is O(1) per step with
        no hash/trig work — the adaptive power bus leans on this.
        """
        key = (channel, day_index)
        cached = self._day_cache.get(key)
        if cached is None:
            fn = getattr(self, channel)
            base = day_index * DAY
            cached = tuple(
                fn(base + k * DAY_CACHE_STEP_S) for k in range(_DAY_CACHE_POINTS)
            )
            self._day_cache[key] = cached
        return cached

    def day_memo(self, key: str, day_index: int, build) -> tuple:
        """Memoise ``build()`` under ``(key, day_index)`` in the day cache.

        For derived per-day tables that are pure functions of the weather
        (e.g. the unit insolation integral) and therefore shareable between
        every consumer of this provider — both stations' solar panels hit
        the same entry.
        """
        cache_key = (key, day_index)
        cached = self._day_cache.get(cache_key)
        if cached is None:
            cached = build()
            self._day_cache[cache_key] = cached
        return cached

    def solar_terms(self, day_index: int) -> tuple:
        """``(A, B)`` such that clear-sky sin-elevation at time ``t`` inside
        the day is ``A + B * cos(2π/DAY * (t_of_day - DAY/2))``.

        Declination (and hence ``A``/``B``) is constant across a UTC day in
        this model, which is what makes :class:`~repro.energy.sources.
        SolarPanel`'s diurnal energy integral analytic.
        """
        key = ("_solar_terms", day_index)
        cached = self._day_cache.get(key)
        if cached is None:
            doy = day_of_year(day_index * DAY)
            declination = -23.44 * math.cos(math.radians(360.0 / 365.0 * (doy + 10)))
            lat = math.radians(self.config.latitude_deg)
            dec = math.radians(declination)
            cached = (math.sin(lat) * math.sin(dec), math.cos(lat) * math.cos(dec))
            self._day_cache[key] = cached
        return cached

    def _seasonal_terms(self, day_index: int) -> tuple:
        """``(wind_mean_ms, temp_seasonal_c)`` — the day-constant seasonal
        parts of :meth:`wind_speed` and :meth:`temperature_c`, memoised.

        Both depend on time only through ``day_of_year``, so hoisting them
        to a per-day cache changes nothing numerically while removing two
        trig calls from every instantaneous weather query.
        """
        key = ("_seasonal", day_index)
        cached = self._day_cache.get(key)
        if cached is None:
            cfg = self.config
            doy = day_of_year(day_index * DAY)
            winterness = 0.5 * (1.0 + math.cos(2.0 * math.pi * (doy - 15) / 365.0))
            wind_mean = cfg.wind_mean_summer_ms + winterness * (
                cfg.wind_mean_winter_ms - cfg.wind_mean_summer_ms
            )
            seasonal_phase = math.cos(
                2.0 * math.pi * (doy - cfg.temp_peak_doy) / 365.0
            )
            mean = 0.5 * (cfg.temp_summer_c + cfg.temp_winter_c)
            amplitude = 0.5 * (cfg.temp_summer_c - cfg.temp_winter_c)
            cached = (wind_mean, mean + amplitude * seasonal_phase)
            self._day_cache[key] = cached
        return cached

    def cloud_pieces(self, t0: float, t1: float):
        """Yield ``(a, b, c0, c1)`` with ``cloud_transmission(t) == c0 + c1*t``
        exactly on each ``[a, b]`` covering ``[t0, t1]``.

        Cloud transmission is noise linearly interpolated between 3-hour
        block midpoints, i.e. piecewise linear with breakpoints at
        ``(k + 0.5) * NOISE_BLOCK_S`` — so an integrand built on it stays
        analytically integrable piece by piece.
        """
        if t1 <= t0:
            return
        low = self.config.cloud_min_transmission
        span = 1.0 - low
        k = math.floor(t0 / NOISE_BLOCK_S - 0.5)
        a = t0
        while a < t1:
            mid_lo = (k + 0.5) * NOISE_BLOCK_S
            mid_hi = (k + 1.5) * NOISE_BLOCK_S
            b = min(t1, mid_hi)
            n0 = _block_noise(self.seed, "cloud", k)
            n1 = _block_noise(self.seed, "cloud", k + 1)
            slope = span * (n1 - n0) / NOISE_BLOCK_S
            # Data iterator, not a simulation process.
            yield a, b, (low + span * n0) - slope * mid_lo, slope  # repro-lint: disable=yield-discipline
            a = b
            k += 1

    # ------------------------------------------------------------------
    # Solar
    # ------------------------------------------------------------------
    def solar_elevation_deg(self, time: float) -> float:
        """Sun elevation above the horizon in degrees (clear sky geometry)."""
        a, b = self.solar_terms(int(time // DAY))
        hour_angle = (fraction_of_day(time) - 0.5) * 360.0
        sin_elev = a + b * math.cos(math.radians(hour_angle))
        return math.degrees(math.asin(max(-1.0, min(1.0, sin_elev))))

    def cloud_transmission(self, time: float) -> float:
        """Fraction of clear-sky irradiance passing the cloud deck, in [min, 1]."""
        noise = _smooth_noise(self.seed, "cloud", time)
        low = self.config.cloud_min_transmission
        return low + (1.0 - low) * noise

    def solar_factor(self, time: float) -> float:
        """Panel output as a fraction of rating, in [0, 1]."""
        a, b = self.solar_terms(int(time // DAY))
        sin_elev = a + b * math.cos(
            math.radians((fraction_of_day(time) - 0.5) * 360.0)
        )
        if sin_elev <= 0.0:
            return 0.0
        if sin_elev > 1.0:
            sin_elev = 1.0
        return sin_elev * self.cloud_transmission(time)

    # ------------------------------------------------------------------
    # Wind
    # ------------------------------------------------------------------
    def wind_speed(self, time: float) -> float:
        """Wind speed in m/s, seasonal with gusts and storm blocks."""
        cfg = self.config
        mean = self._seasonal_terms(int(time // DAY))[0]
        gust = 0.4 + 1.2 * _smooth_noise(self.seed, "wind", time)
        block = math.floor(time / NOISE_BLOCK_S)
        storm = (
            cfg.storm_multiplier
            if _block_noise(self.seed, "storm", block) < cfg.storm_probability
            else 1.0
        )
        return max(0.0, mean * gust * storm)

    # ------------------------------------------------------------------
    # Temperature
    # ------------------------------------------------------------------
    def temperature_c(self, time: float) -> float:
        """Air temperature at the station in °C."""
        cfg = self.config
        seasonal = self._seasonal_terms(int(time // DAY))[1]
        diurnal = cfg.temp_diurnal_c * math.sin(2.0 * math.pi * (fraction_of_day(time) - 0.25))
        noise = cfg.temp_noise_c * (2.0 * _smooth_noise(self.seed, "temp", time) - 1.0)
        return seasonal + diurnal + noise

    # ------------------------------------------------------------------
    # Snow
    # ------------------------------------------------------------------
    def _day_index(self, time: float) -> int:
        return max(0, int(time // DAY))

    def _extend_snow_cache(self, day_index: int) -> None:
        cfg = self.config
        while len(self._snow_cache) <= day_index:
            day = len(self._snow_cache) - 1
            midday = (day + 0.5) * DAY
            depth = self._snow_cache[-1]
            temp = self.temperature_c(midday)
            precipitating = _block_noise(self.seed, "precip", day) < cfg.precip_probability
            if precipitating and temp < 0.5:
                intensity = _block_noise(self.seed, "precip_amount", day)
                depth += cfg.snowfall_m_per_day * (0.3 + 0.7 * intensity)
            if temp > 0:
                depth -= cfg.melt_m_per_degree_day * temp
            self._snow_cache.append(max(0.0, depth))

    def snow_depth(self, time: float) -> float:
        """Snow depth at the station in metres (daily resolution)."""
        index = self._day_index(time)
        self._extend_snow_cache(index)
        return self._snow_cache[index]
