"""Site presets: Norway vs Iceland (the paper's Section II contrast).

The architecture change was driven by site differences the paper spells
out:

- **Norway** (Briksdalsbreen-era): "very little annual snowfall meaning
  the wind generator could supply power in winter", and the café has
  mains all year;
- **Iceland** (Vatnajökull): heavy snowfall buries everything ("the
  expected snow would even stop that source from being useful"), and the
  café only has power in the tourist season.

These presets parameterise :class:`~repro.environment.weather.WeatherConfig`
so the same station models can be dropped into either climate — the E17
bench shows the Norway power plan failing in Iceland.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.environment.weather import WeatherConfig


@dataclass(frozen=True)
class SitePreset:
    """One deployment site's climate and infrastructure."""

    name: str
    weather: WeatherConfig
    #: Whether the reference-station café has mains power all year.
    cafe_mains_all_year: bool
    latitude_deg: float


def norway_site() -> SitePreset:
    """The Norway predecessor site: mild snow, windy, year-round café mains."""
    return SitePreset(
        name="norway",
        weather=WeatherConfig(
            latitude_deg=61.7,
            precip_probability=0.35,
            snowfall_m_per_day=0.015,  # "very little annual snowfall"
            melt_m_per_degree_day=0.02,
            temp_summer_c=8.0,
            temp_winter_c=-6.0,
            wind_mean_summer_ms=5.0,
            wind_mean_winter_ms=10.0,
        ),
        cafe_mains_all_year=True,
        latitude_deg=61.7,
    )


def iceland_site() -> SitePreset:
    """Vatnajökull: heavy snow that buries panels and turbines."""
    return SitePreset(
        name="iceland",
        weather=WeatherConfig(
            latitude_deg=64.3,
            precip_probability=0.55,
            snowfall_m_per_day=0.06,  # deep accumulation: >2.5 m by February
            melt_m_per_degree_day=0.015,  # clears by mid-summer
            temp_summer_c=4.0,
            temp_winter_c=-10.0,
            wind_mean_summer_ms=5.0,
            wind_mean_winter_ms=9.0,
        ),
        cafe_mains_all_year=False,
        latitude_deg=64.3,
    )


def site_by_name(name: str) -> SitePreset:
    """Look up a preset by name ("norway" or "iceland")."""
    presets = {"norway": norway_site, "iceland": iceland_site}
    if name not in presets:
        raise ValueError(f"unknown site {name!r}; expected one of {sorted(presets)}")
    return presets[name]()
