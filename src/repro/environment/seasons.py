"""Calendar predicates for the Iceland deployment.

The paper anchors several behaviours to the calendar:

- the café hosting the reference station only has mains power during the
  tourist season (April to September);
- winter (December to March) is when the stations must survive on minimal
  power with no field visits;
- melt-water ("summer water") appears in spring, raises basal conductivity
  (Fig 6) and degrades the probe radio link.
"""

from __future__ import annotations

import functools
import math

from repro.sim.simtime import day_of_year

#: First month of the café tourist season (inclusive).
TOURIST_SEASON_FIRST_MONTH = 4
#: Last month of the café tourist season (inclusive).
TOURIST_SEASON_LAST_MONTH = 9
#: Months the paper calls winter ("surviving a long winter (Dec-March)").
WINTER_MONTHS = frozenset({12, 1, 2, 3})

#: Day of year around which melt onset is centred (early April — Fig 6
#: shows the conductivity ramp well underway by 21 April).
MELT_ONSET_DOY = 95
#: Width (days) of the spring melt ramp.
MELT_RAMP_DAYS = 25.0
#: Day of year at which freeze-up is centred (early October).
FREEZE_ONSET_DOY = 280


@functools.lru_cache(maxsize=4096)
def _month_of_day_index(day_index: int) -> int:
    from repro.sim.simtime import DAY, to_datetime

    return to_datetime(day_index * DAY).month


def _month(time: float) -> int:
    # The default epoch is a UTC midnight, so the calendar month is constant
    # across each whole simulated day — cache it per day index.
    from repro.sim.simtime import DAY

    return _month_of_day_index(int(time // DAY))


def is_tourist_season(time: float) -> bool:
    """True during April-September, when the café is staffed and powered."""
    return TOURIST_SEASON_FIRST_MONTH <= _month(time) <= TOURIST_SEASON_LAST_MONTH


def cafe_has_power(time: float) -> bool:
    """Mains availability at the reference station's café."""
    return is_tourist_season(time)


def is_winter(time: float) -> bool:
    """True during the December-March survival period."""
    return _month(time) in WINTER_MONTHS


@functools.lru_cache(maxsize=400)
def _melt_factor_for_doy(doy: int) -> float:
    onset = 1.0 / (1.0 + math.exp(-(doy - MELT_ONSET_DOY) / (MELT_RAMP_DAYS / 4.0)))
    freeze = 1.0 / (1.0 + math.exp(-(doy - FREEZE_ONSET_DOY) / (MELT_RAMP_DAYS / 4.0)))
    return max(0.0, onset - freeze)


def melt_season_factor(time: float) -> float:
    """Smooth 0-1 indicator of surface melt ("summer water").

    Zero through winter, rising over a few weeks around mid-April (the
    Fig 6 conductivity ramp), full through summer, and falling back to zero
    around early-October freeze-up.  Daily resolution (cached per
    day-of-year).
    """
    return _melt_factor_for_doy(day_of_year(time))
