"""Glacier physics: melt-water, basal conductivity, pressure, stick-slip motion.

This module synthesises the glaciological signals the deployment measures:

- **basal electrical conductivity** per probe — flat and low through winter,
  rising steeply when spring melt-water reaches the bed (the paper's Fig 6,
  probes 21/24/25 reaching ~6-15 µS by late April);
- **subglacial water pressure** — melt-driven with a summer diurnal cycle;
- **ice surface motion** — a slow background slide plus discrete stick-slip
  events correlated with water-pressure peaks (the dGPS exists to capture
  exactly this, refs [4,5] of the paper);
- **probe radio attenuation** — "summer water" absorbs the probe radio
  signal, so packet loss is low in winter ("drier ice") and high in the wet
  summer; this drives the Section V bulk-transfer behaviour (≈400 of 3000
  readings missed across the weakest summer link).

All quantities are deterministic functions of time for a given seed, using
the same hash-noise scheme as :mod:`repro.environment.weather`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.environment.seasons import melt_season_factor
from repro.environment.weather import _block_noise, _smooth_noise
from repro.sim.simtime import DAY, fraction_of_day


@dataclass
class GlacierConfig:
    """Tunable parameters of the glacier model."""

    #: Winter baseline conductivity, µS.
    conductivity_base_us: float = 0.8
    #: Conductivity added at full melt for an average probe, µS.
    conductivity_melt_us: float = 11.0
    #: Relative probe-to-probe spread of the melt response.
    conductivity_probe_spread: float = 0.40
    #: Conductivity measurement/process noise, µS.
    conductivity_noise_us: float = 0.5
    #: Winter baseline water pressure, metres of head.
    pressure_base_m: float = 30.0
    #: Extra pressure head at full melt, metres.
    pressure_melt_m: float = 35.0
    #: Diurnal pressure amplitude at full melt, metres.
    pressure_diurnal_m: float = 8.0
    #: Background sliding rate, metres per day.
    base_slide_m_per_day: float = 0.08
    #: Extra sliding at full melt, metres per day.
    melt_slide_m_per_day: float = 0.10
    #: Probability per day of a stick-slip event at full melt.
    slip_probability_at_melt: float = 0.25
    #: Displacement of one stick-slip event, metres.
    slip_size_m: float = 0.04
    #: Probe packet-loss floor in dry winter ice.
    radio_loss_winter: float = 0.02
    #: Additional packet loss at full summer melt.
    radio_loss_melt: float = 0.115


class GlacierModel:
    """Deterministic glacier signals for one deployment site."""

    def __init__(self, config: GlacierConfig | None = None, seed: int = 0) -> None:
        self.config = config or GlacierConfig()
        self.seed = int(seed)
        self._displacement_cache: List[float] = [0.0]
        #: ``probe_id -> (gain, noise_stream)`` — both stable per id.
        self._probe_cache: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Melt and conductivity
    # ------------------------------------------------------------------
    def melt_fraction(self, time: float) -> float:
        """Melt-water availability in [0, 1] (seasonal with weather texture)."""
        seasonal = melt_season_factor(time)
        if seasonal <= 0.0:
            return 0.0
        texture = 0.75 + 0.25 * _smooth_noise(self.seed, "melt", time)
        return min(1.0, seasonal * texture)

    def _probe_terms(self, probe_id: int) -> tuple:
        """Cached ``(gain, noise_stream)`` for one probe id."""
        cached = self._probe_cache.get(probe_id)
        if cached is None:
            spread = self.config.conductivity_probe_spread
            offset = 2.0 * _block_noise(self.seed, f"probe_gain:{probe_id}", 0) - 1.0
            cached = (1.0 + spread * offset, f"cond:{probe_id}")
            self._probe_cache[probe_id] = cached
        return cached

    def _probe_gain(self, probe_id: int) -> float:
        """Per-probe sensitivity of conductivity to melt, stable per id."""
        return self._probe_terms(probe_id)[0]

    def conductivity_us(self, time: float, probe_id: int = 0) -> float:
        """Basal electrical conductivity at one probe, in µS (Fig 6 signal)."""
        cfg = self.config
        gain, stream = self._probe_terms(probe_id)
        melt = self.melt_fraction(time)
        noise = cfg.conductivity_noise_us * (
            2.0 * _smooth_noise(self.seed, stream, time) - 1.0
        )
        value = cfg.conductivity_base_us + cfg.conductivity_melt_us * melt * gain
        return max(0.0, value + noise * (0.3 + 0.7 * melt))

    # ------------------------------------------------------------------
    # Water pressure
    # ------------------------------------------------------------------
    def water_pressure_m(self, time: float) -> float:
        """Subglacial water pressure in metres of head."""
        cfg = self.config
        melt = self.melt_fraction(time)
        diurnal = math.sin(2.0 * math.pi * (fraction_of_day(time) - 0.33))
        noise = 2.0 * _smooth_noise(self.seed, "pressure", time) - 1.0
        return (
            cfg.pressure_base_m
            + cfg.pressure_melt_m * melt
            + cfg.pressure_diurnal_m * melt * diurnal
            + 3.0 * noise
        )

    # ------------------------------------------------------------------
    # Ice motion (what the dGPS measures)
    # ------------------------------------------------------------------
    def _daily_displacement(self, day: int) -> float:
        cfg = self.config
        midday = (day + 0.5) * DAY
        melt = self.melt_fraction(midday)
        slide = cfg.base_slide_m_per_day + cfg.melt_slide_m_per_day * melt
        slip_p = cfg.slip_probability_at_melt * melt
        if _block_noise(self.seed, "slip", day) < slip_p:
            slide += cfg.slip_size_m
        return slide

    def _extend_displacement_cache(self, day_index: int) -> None:
        while len(self._displacement_cache) <= day_index:
            day = len(self._displacement_cache) - 1
            total = self._displacement_cache[-1] + self._daily_displacement(day)
            self._displacement_cache.append(total)

    def slip_occurred(self, day_index: int) -> bool:
        """Whether a stick-slip event happened on the given simulation day.

        Slip probability rises steeply with the day's water pressure —
        the refs [4, 5] physics ("the relationship of any 'stick-slip'
        motion to changes in water pressure") that the dGPS campaign
        exists to observe.  No melt, no slips.
        """
        midday = (day_index + 0.5) * DAY
        melt = self.melt_fraction(midday)
        base_p = self.config.slip_probability_at_melt * melt
        if base_p <= 0.0:
            return False
        cfg = self.config
        expected = cfg.pressure_base_m + cfg.pressure_melt_m * melt
        ratio = self.water_pressure_m(midday) / max(expected, 1e-9)
        pressure_factor = max(0.1, min(6.0, ratio**8))
        return _block_noise(self.seed, "slip", day_index) < base_p * pressure_factor

    #: Relative amplitude of the diurnal velocity modulation at full melt.
    DIURNAL_VELOCITY_AMPLITUDE = 0.3
    #: Fraction of day at which the diurnal speed-up peaks (~15:30).
    DIURNAL_PEAK_PHASE = 0.4

    def _within_day_progress(self, day: int, within: float) -> float:
        """Fraction of the day's displacement accumulated by ``within``.

        The integral of the diurnal velocity profile, so that
        :meth:`velocity_m_per_day` is exactly the derivative of
        :meth:`surface_position_m` — the dGPS must be able to *observe*
        the diurnal cycle in position differences.
        """
        melt = self.melt_fraction((day + 0.5) * DAY)
        amplitude = self.DIURNAL_VELOCITY_AMPLITUDE * melt
        phase = self.DIURNAL_PEAK_PHASE
        two_pi = 2.0 * math.pi
        return within + amplitude / two_pi * (
            math.cos(two_pi * (0.0 - phase)) - math.cos(two_pi * (within - phase))
        )

    def surface_position_m(self, time: float) -> float:
        """Down-flow surface displacement since the epoch, in metres."""
        day = max(0, int(time // DAY))
        self._extend_displacement_cache(day + 1)
        start = self._displacement_cache[day]
        within = (time - day * DAY) / DAY
        return start + self._within_day_progress(day, within) * self._daily_displacement(day)

    def velocity_m_per_day(self, time: float) -> float:
        """Instantaneous surface velocity in m/day, diurnal under melt."""
        day = max(0, int(time // DAY))
        base = self._daily_displacement(day)
        melt = self.melt_fraction((day + 0.5) * DAY)
        diurnal = 1.0 + self.DIURNAL_VELOCITY_AMPLITUDE * melt * math.sin(
            2.0 * math.pi * (fraction_of_day(time) - self.DIURNAL_PEAK_PHASE)
        )
        return base * diurnal

    # ------------------------------------------------------------------
    # Probe radio
    # ------------------------------------------------------------------
    def probe_radio_loss(self, time: float) -> float:
        """Probe packet-loss probability: low in dry winter ice, high in summer."""
        cfg = self.config
        return cfg.radio_loss_winter + cfg.radio_loss_melt * self.melt_fraction(time)
