"""Storm damage to station structures (Section II).

The site's "very heavy snow fall and high winds ... caused damage to the
metal frame of the base station pyramid and also to antennas that had
previously been mounted on the café", which is why "it was thought
unlikely that a directional antenna would survive through the winter on
the café" — a load-bearing reason for abolishing the inter-station radio
link.

:class:`Antenna` accumulates a survival hazard from storm-force wind and
snow loading; directional antennas (large wind area, must face the
glacier on the café's most exposed side) are far more fragile than the
small omnidirectional GPRS whips the final design uses.
"""

from __future__ import annotations

from typing import Optional

from repro.environment.weather import IcelandWeather
from repro.sim.kernel import Simulation
from repro.sim.simtime import DAY

#: Wind speed treated as storm-force for structural damage, m/s.
STORM_FORCE_MS = 22.0


class Antenna:
    """A mast-mounted antenna with storm-damage accumulation.

    Parameters
    ----------
    kind:
        ``"directional"`` (large yagi/panel: high wind area, snow-loading
        prone) or ``"omni"`` (small whip).
    exposure:
        Site exposure multiplier (the café's exposed side is ~1.5).
    """

    #: Per-storm-day damage probability by antenna kind.
    FRAGILITY = {"directional": 0.035, "omni": 0.0008}

    def __init__(
        self,
        sim: Simulation,
        weather: IcelandWeather,
        name: str,
        kind: str = "omni",
        exposure: float = 1.0,
    ) -> None:
        if kind not in self.FRAGILITY:
            raise ValueError(f"kind must be one of {sorted(self.FRAGILITY)}")
        self.sim = sim
        self.weather = weather
        self.name = name
        self.kind = kind
        self.exposure = exposure
        self.damaged_at: Optional[float] = None
        self.storm_days_survived = 0
        self._rng = sim.rng.stream(f"{name}.damage")
        sim.process(self._daily_check(), name=f"{name}.damage_check")

    @property
    def is_ok(self) -> bool:
        """Whether the antenna is still functional."""
        return self.damaged_at is None

    def repair(self) -> None:
        """A field visit replaces the antenna."""
        self.damaged_at = None
        self.sim.trace.emit(self.name, "antenna_repaired")

    def _storm_today(self, day_start: float) -> bool:
        # Sample the day's wind at 3-hour points; any storm-force reading
        # counts as a storm day.
        return any(
            self.weather.wind_speed(day_start + h * 3600.0) >= STORM_FORCE_MS
            for h in range(0, 24, 3)
        )

    def _daily_check(self):
        while True:
            day_start = self.sim.now
            yield self.sim.timeout(DAY)
            if not self.is_ok:
                continue
            if not self._storm_today(day_start):
                continue
            self.storm_days_survived += 1
            hazard = self.FRAGILITY[self.kind] * self.exposure
            # Snow/ice loading makes winter storms worse.
            if self.weather.snow_depth(self.sim.now) > 0.3:
                hazard *= 2.0
            if self._rng.random() < hazard:
                self.damaged_at = self.sim.now
                self.sim.trace.emit(self.name, "antenna_damaged",
                                    antenna_kind=self.kind)


def winter_survival_probability(
    kind: str,
    exposure: float = 1.0,
    trials: int = 200,
    winter_days: int = 180,
    seed: int = 0,
) -> float:
    """Monte-Carlo probability that an antenna survives one winter.

    The Section II judgement call, quantified: this is the number that
    made the team abolish the inter-station link rather than mount a
    directional antenna on the café for the winter.
    """
    survived = 0
    for trial in range(trials):
        sim = Simulation(seed=seed * 10_000 + trial)
        weather = IcelandWeather(seed=seed * 10_000 + trial)
        # Start the check at the onset of winter (epoch + ~60 days ~ Nov).
        antenna = Antenna(sim, weather, name=f"mc.{trial}", kind=kind,
                          exposure=exposure)
        sim.run(until=(60 + winter_days) * DAY)
        if antenna.is_ok:
            survived += 1
    return survived / trials
