"""Energy subsystem: battery, charging sources, loads and accounting.

This package models the power side of the Gumsense stations:

- :mod:`repro.energy.components` — the device registry from the paper's
  Table I (power consumption and transfer rates of the Gumstix, GPRS modem,
  long-range radio modem and GPS receiver);
- :mod:`repro.energy.battery` — a lead-acid battery bank with an
  SoC-dependent terminal-voltage model, reproducing the 11.5-14.5 V band of
  the paper's Fig 5;
- :mod:`repro.energy.loads` — switchable consumers attached to power rails;
- :mod:`repro.energy.sources` — solar panel (10 W), wind turbine (50 W)
  and café mains charger;
- :mod:`repro.energy.bus` — the integration loop tying them together, with
  brown-out/recovery events used by the schedule-reset machinery.
"""

from repro.energy.battery import Battery, BatteryConfig
from repro.energy.bus import PowerBus
from repro.energy.components import (
    GPRS_MODEM,
    GPS_RECEIVER,
    GUMSTIX,
    MSP430_SLEEP,
    RADIO_MODEM,
    TABLE_I,
    DeviceSpec,
    energy_per_megabyte_j,
    table_i_rows,
)
from repro.energy.loads import Load, LoadSet
from repro.energy.sources import (
    ConstantSource,
    MainsCharger,
    PowerSource,
    SolarPanel,
    WindTurbine,
)

__all__ = [
    "Battery",
    "BatteryConfig",
    "ConstantSource",
    "DeviceSpec",
    "GPRS_MODEM",
    "GPS_RECEIVER",
    "GUMSTIX",
    "Load",
    "LoadSet",
    "MSP430_SLEEP",
    "MainsCharger",
    "PowerBus",
    "PowerSource",
    "RADIO_MODEM",
    "SolarPanel",
    "TABLE_I",
    "WindTurbine",
    "energy_per_megabyte_j",
    "table_i_rows",
]
