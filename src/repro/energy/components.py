"""Device characteristics from the paper's Table I.

Table I of the paper ("Characteristics of system components"):

======================  ===================  =====================
Device                  Transfer rate (bps)  Power consumption (mW)
======================  ===================  =====================
Gumstix                 —                    900
GPRS modem              5000                 2640
Radio modem             2000                 3960
GPS                     —                    3600
======================  ===================  =====================

These numbers drive the architecture comparison in Section II (dual GPRS
beats the inter-station radio relay roughly twofold) and the battery
lifetime arithmetic in Section III (a 3.6 W GPS drains a 36 Ah battery in
5 days of continuous use, versus 117 days at the state-3 duty cycle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Nominal battery bus voltage used in the paper's Ah arithmetic.
NOMINAL_BUS_VOLTAGE = 12.0


@dataclass(frozen=True)
class DeviceSpec:
    """Static electrical characteristics of one system component.

    Attributes
    ----------
    name:
        Component name as it appears in Table I.
    power_w:
        Active power draw in watts.
    transfer_rate_bps:
        Payload data rate in bits per second, or ``None`` for components
        that do not transfer data (Gumstix, GPS).
    """

    name: str
    power_w: float
    transfer_rate_bps: Optional[float] = None

    @property
    def power_mw(self) -> float:
        """Active power draw in milliwatts (the unit Table I uses)."""
        return self.power_w * 1000.0

    def current_a(self, bus_voltage: float = NOMINAL_BUS_VOLTAGE) -> float:
        """Current draw in amps at the given bus voltage."""
        return self.power_w / bus_voltage

    def transfer_seconds(self, nbytes: int) -> float:
        """Time to move ``nbytes`` of payload at the device's rate."""
        if self.transfer_rate_bps is None:
            raise ValueError(f"{self.name} has no transfer rate")
        return nbytes * 8.0 / self.transfer_rate_bps

    def transfer_energy_j(self, nbytes: int) -> float:
        """Energy to move ``nbytes`` of payload: power × transfer time."""
        return self.power_w * self.transfer_seconds(nbytes)


#: Gumstix connex ARM/Linux computer: ~900 mW when running, no useful sleep mode.
GUMSTIX = DeviceSpec("Gumstix", power_w=0.900)
#: GPRS modem: 5000 bps effective, 2640 mW while transferring.
GPRS_MODEM = DeviceSpec("GPRS Modem", power_w=2.640, transfer_rate_bps=5000.0)
#: 500 mW 466 MHz long-range radio modem: 2000 bps, 3960 mW system draw.
RADIO_MODEM = DeviceSpec("Radio Modem", power_w=3.960, transfer_rate_bps=2000.0)
#: dGPS receiver: 3600 mW while recording.
GPS_RECEIVER = DeviceSpec("GPS", power_w=3.600)

#: MSP430 supervisor in its sleep/sensing regime.  Not in Table I (its draw
#: is described as "negligible"); modelled at 0.5 mW so that sensing is
#: visible in the accounting yet irrelevant to lifetime, as the paper states.
MSP430_SLEEP = DeviceSpec("MSP430 (sleep)", power_w=0.0005)

#: Table I exactly as printed, keyed by device name.
TABLE_I: Dict[str, DeviceSpec] = {
    spec.name: spec for spec in (GUMSTIX, GPRS_MODEM, RADIO_MODEM, GPS_RECEIVER)
}


def table_i_rows() -> List[Tuple[str, Optional[float], float]]:
    """Table I as ``(device, transfer_rate_bps, power_mw)`` rows, paper order."""
    return [
        (spec.name, spec.transfer_rate_bps, spec.power_mw)
        for spec in (GUMSTIX, GPRS_MODEM, RADIO_MODEM, GPS_RECEIVER)
    ]


def energy_per_megabyte_j(spec: DeviceSpec, include_gumstix: bool = True) -> float:
    """Joules to move one megabyte through ``spec``.

    The Gumstix must be powered to drive either modem, so by default its
    900 mW is added for the duration of the transfer — this is the figure
    that matters when comparing communication architectures.
    """
    megabyte = 1_000_000
    energy = spec.transfer_energy_j(megabyte)
    if include_gumstix:
        energy += GUMSTIX.power_w * spec.transfer_seconds(megabyte)
    return energy
