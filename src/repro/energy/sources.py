"""Charging sources: solar panel, wind turbine, café mains.

The base station carries a 10 W solar panel and a 50 W wind turbine; the
reference station has a solar panel and a mains charger input that is live
only while the café has power (the April-September tourist season).
Winter is what stresses the system: short days, panel burial under snow and
iced-up turbines reduce generation to near zero, driving the power-state
descents the paper's power management is built around.

Sources expose two queries:

- ``power_w(time)`` — the instantaneous output, and
- ``energy_j(t0, t1)`` — the integral of ``power_w`` over an interval,
  which is what the adaptive :class:`~repro.energy.bus.PowerBus` uses so
  it never has to step through quiet stretches.

Interval energy is served from *memoised per-day cumulative tables*: the
first query touching a UTC day builds that day's running integral on a
:attr:`PowerSource.TABLE_STEP_S` grid — analytically for ``SolarPanel``
(the diurnal sine-elevation curve times piecewise-linear cloud
transmission integrates in closed form), from the weather layer's
``day_samples`` cache for ``WindTurbine`` — after which any sub-interval
of that day is O(1) interpolation.  ``MainsCharger`` and
``ConstantSource`` integrate in closed form directly and cache nothing,
so tests that mutate their output mid-run stay exact.

Environmental signals come from a weather provider — any object with
``solar_factor(time)``, ``wind_speed(time)`` and ``snow_depth(time)``
(see :class:`repro.environment.weather.IcelandWeather`).

Time-purity assumption: ``power_w`` must be a pure function of ``time``.
A source whose output changes for non-weather reasons (a rewired
availability callable, a test flipping :attr:`ConstantSource.watts`) must
notify the bus via ``PowerBus.invalidate()`` so pending crossing
predictions are recomputed — and must not be served from a stale day
table, which is why only the weather-driven sources memoise.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterator, Protocol, Tuple

from repro.sim.simtime import DAY


class WeatherProvider(Protocol):
    """The slice of the environment the charging sources observe."""

    def solar_factor(self, time: float) -> float:
        """Irradiance as a fraction of panel rating, in [0, 1]."""

    def wind_speed(self, time: float) -> float:
        """Wind speed in m/s."""

    def snow_depth(self, time: float) -> float:
        """Snow depth at the station in metres."""


def _iter_day_spans(t0: float, t1: float) -> Iterator[Tuple[int, float, float]]:
    """Split ``[t0, t1]`` at UTC-day boundaries: yields ``(day_index, a, b)``."""
    day = math.floor(t0 / DAY)
    a = t0
    while a < t1:
        b = min(t1, (day + 1) * DAY)
        # Data iterator, not a simulation process.
        yield int(day), a, b  # repro-lint: disable=yield-discipline
        a = b
        day += 1


class PowerSource:
    """Base class: a named generator with instantaneous and interval queries."""

    #: Grid step of the per-day cumulative energy tables, seconds.  Must
    #: match :data:`repro.environment.weather.DAY_CACHE_STEP_S` so derived
    #: tables (the shared solar unit integral) land on the same nodes; 900 s
    #: still sub-samples every weather breakpoint (3-hour noise blocks,
    #: piecewise-linear gusts) several times over.
    TABLE_STEP_S = 900.0

    def __init__(self, name: str) -> None:
        self.name = name
        self.delivered_j = 0.0  # cumulative energy booked by the owning bus
        #: ``day_index -> (node powers, cumulative joules, step)``.
        self._day_tables: Dict[int, Tuple[tuple, tuple, float]] = {}

    def power_w(self, time: float) -> float:
        """Instantaneous output in watts at simulated ``time``."""
        raise NotImplementedError

    def energy_j(self, t0: float, t1: float) -> float:
        """Energy produced over ``[t0, t1]`` in joules.

        Served from the per-day cumulative tables — O(1) per touched day
        after the day's first query.  Partial grid cells interpolate the
        cell's energy along the linear-power profile between its node
        powers, so the result is continuous and monotone in both bounds.
        """
        if t1 <= t0:
            return 0.0
        day = int(t0 // DAY)
        base = day * DAY
        if t1 <= base + DAY:  # fast path: interval within one UTC day
            powers, cumulative, step = self._day_table(day)
            return max(0.0,
                       self._cumulative_at(powers, cumulative, step, t1 - base)
                       - self._cumulative_at(powers, cumulative, step, t0 - base))
        total = 0.0
        for day, a, b in _iter_day_spans(t0, t1):
            powers, cumulative, step = self._day_table(day)
            base = day * DAY
            total += self._cumulative_at(powers, cumulative, step, b - base)
            total -= self._cumulative_at(powers, cumulative, step, a - base)
        return max(0.0, total)

    # -- table machinery ------------------------------------------------
    def _cell_energy_j(self, a: float, b: float) -> float:
        """Exact-as-possible energy of one table cell ``[a, b]``.

        Default: trapezoid of ``power_w`` — one cell is one trapezoid.
        ``SolarPanel`` overrides this with the analytic integral.
        """
        return 0.5 * (self.power_w(a) + self.power_w(b)) * (b - a)

    def _day_table(self, day_index: int) -> Tuple[tuple, tuple, float]:
        cached = self._day_tables.get(day_index)
        if cached is None:
            cached = self._build_day_table(day_index)
            self._day_tables[day_index] = cached
        return cached

    def _build_day_table(self, day_index: int) -> Tuple[tuple, tuple, float]:
        step = self.TABLE_STEP_S
        cells = int(round(DAY / step))
        base = day_index * DAY
        powers = tuple(self.power_w(base + k * step) for k in range(cells + 1))
        cumulative = [0.0]
        acc = 0.0
        for k in range(cells):
            acc += self._cell_energy_j(base + k * step, base + (k + 1) * step)
            cumulative.append(acc)
        return powers, tuple(cumulative), step

    @staticmethod
    def _cumulative_at(powers: tuple, cumulative: tuple, step: float, offset: float) -> float:
        """Integral from the day start to ``offset`` seconds into the day."""
        if offset <= 0.0:
            return 0.0
        position = offset / step
        k = int(position)
        last = len(cumulative) - 1
        if k >= last:
            return cumulative[last]
        frac = position - k
        cell_j = cumulative[k + 1] - cumulative[k]
        p0 = powers[k]
        p1 = powers[k + 1]
        # Share of the cell's energy along the linear-power profile,
        # normalised so frac=1 lands exactly on the next node.
        denominator = 0.5 * (p0 + p1)
        if denominator > 0.0:
            share = frac * (p0 + 0.5 * (p1 - p0) * frac) / denominator
        else:
            share = frac
        return cumulative[k] + cell_j * share


class SolarPanel(PowerSource):
    """Photovoltaic panel, derated by irradiance and buried by snow.

    Parameters
    ----------
    rated_w:
        Peak output (10 W on the base station).
    weather:
        Environment provider.
    burial_depth_m:
        Snow depth at which output reaches zero.  Output falls linearly
        from full at zero depth.
    """

    def __init__(
        self,
        weather: WeatherProvider,
        rated_w: float = 10.0,
        name: str = "solar",
        burial_depth_m: float = 0.5,
    ) -> None:
        super().__init__(name)
        self.rated_w = rated_w
        self.weather = weather
        self.burial_depth_m = burial_depth_m

    def power_w(self, time: float) -> float:
        burial = max(0.0, 1.0 - self.weather.snow_depth(time) / self.burial_depth_m)
        return self.rated_w * self.weather.solar_factor(time) * burial

    def _build_day_table(self, day_index: int) -> Tuple[tuple, tuple, float]:
        """Whole-day table with the day constants hoisted out of the cells.

        The panel-independent parts — the instantaneous solar-factor nodes
        and the unit insolation integral ``∫ max(0, sin_elev)·cloud dt``
        per cell — live in the weather's day cache, shared between every
        panel on the same provider; this panel only scales them by
        ``rated_w`` and the (day-constant) snow-burial factor.
        """
        weather = self.weather
        step = self.TABLE_STEP_S
        cells = int(round(DAY / step))
        if not (hasattr(weather, "solar_terms") and hasattr(weather, "cloud_pieces")
                and hasattr(weather, "day_samples") and hasattr(weather, "day_memo")):
            return super()._build_day_table(day_index)
        factors = weather.day_samples("solar_factor", day_index)
        if len(factors) != cells + 1:  # mismatched grids: stay generic
            return super()._build_day_table(day_index)
        base = day_index * DAY
        burial = max(0.0, 1.0 - weather.snow_depth(base) / self.burial_depth_m)
        scale = self.rated_w * burial
        if scale <= 0.0:
            zeros = (0.0,) * (cells + 1)
            return zeros, zeros, step
        unit = weather.day_memo("solar_unit_cum", day_index,
                                lambda: self._unit_day_cumulative(day_index))
        powers = tuple(scale * f for f in factors)
        cumulative = tuple(scale * c for c in unit)
        return powers, cumulative, step

    def _unit_day_cumulative(self, day_index: int) -> tuple:
        """Cumulative ``∫ max(0, sin_elev)·cloud dt`` at each cell edge.

        Panel-free (no rating, no burial): a pure function of the weather,
        cached per day via :meth:`IcelandWeather.day_memo`.
        """
        weather = self.weather
        step = self.TABLE_STEP_S
        cells = int(round(DAY / step))
        base = day_index * DAY
        sin_term, cos_term = weather.solar_terms(day_index)
        omega = 2.0 * math.pi / DAY
        noon = base + 0.5 * DAY
        if sin_term >= cos_term:  # midnight sun: never sets
            rise, sets = base, base + DAY
        elif sin_term <= -cos_term:  # polar night: never rises
            return (0.0,) * (cells + 1)
        else:
            half = math.acos(-sin_term / cos_term) / omega
            rise, sets = noon - half, noon + half
        piece = self._piece_integral
        cumulative = [0.0]
        acc = 0.0
        for k in range(cells):
            lo = base + k * step
            hi = lo + step
            if lo < rise:
                lo = rise
            if hi > sets:
                hi = sets
            if hi > lo:
                for p, q, c0, c1 in weather.cloud_pieces(lo, hi):
                    acc += piece(sin_term, cos_term, omega, noon, p, q, c0, c1)
            cumulative.append(acc)
        return tuple(cumulative)

    def _cell_energy_j(self, a: float, b: float) -> float:
        """Analytic integral of the diurnal curve over one cell.

        Within one UTC day the clear-sky sine-elevation is
        ``A + B*cos(ω(t - noon))`` (declination constant per day) and cloud
        transmission is piecewise linear between 3-hour noise breakpoints,
        so the product integrates in closed form piece by piece.  Snow
        burial has daily resolution and scales the whole arc.  Falls back
        to the trapezoid rule for weather stubs without the cache hooks.
        """
        weather = self.weather
        if not (hasattr(weather, "solar_terms") and hasattr(weather, "cloud_pieces")):
            return super()._cell_energy_j(a, b)
        day_index = int(math.floor(a / DAY))
        burial = max(0.0, 1.0 - weather.snow_depth(a) / self.burial_depth_m)
        if burial <= 0.0:
            return 0.0
        sin_term, cos_term = weather.solar_terms(day_index)
        omega = 2.0 * math.pi / DAY
        noon = (day_index + 0.5) * DAY
        # Daylight arc: sine-elevation positive iff cos(ω(t-noon)) > -A/B.
        if sin_term >= cos_term:  # midnight sun: never sets
            rise, sets = day_index * DAY, (day_index + 1) * DAY
        elif sin_term <= -cos_term:  # polar night: never rises
            return 0.0
        else:
            half = math.acos(-sin_term / cos_term) / omega
            rise, sets = noon - half, noon + half
        lo, hi = max(a, rise), min(b, sets)
        if hi <= lo:
            return 0.0
        total = 0.0
        for p, q, c0, c1 in weather.cloud_pieces(lo, hi):
            total += self._piece_integral(sin_term, cos_term, omega, noon, p, q, c0, c1)
        # Round-off at the daylight-arc endpoints can leave a tiny negative.
        return max(0.0, self.rated_w * burial * total)

    @staticmethod
    def _piece_integral(
        sin_term: float,
        cos_term: float,
        omega: float,
        noon: float,
        p: float,
        q: float,
        c0: float,
        c1: float,
    ) -> float:
        """``∫ (A + B cos(ωτ)) (d0 + d1 τ) dτ`` over ``τ ∈ [p-noon, q-noon]``."""
        d0 = c0 + c1 * noon
        d1 = c1

        def antiderivative(tau: float) -> float:
            s = math.sin(omega * tau)
            c = math.cos(omega * tau)
            return (
                sin_term * (d0 * tau + 0.5 * d1 * tau * tau)
                + cos_term * (d0 * s / omega + d1 * (c / (omega * omega) + tau * s / omega))
            )

        return antiderivative(q - noon) - antiderivative(p - noon)


class WindTurbine(PowerSource):
    """Small wind turbine with cut-in/rated/cut-out behaviour.

    Output follows the standard cubic law between cut-in and rated wind
    speed, is flat at rated output up to cut-out, and zero beyond (storm
    protection).  Deep snow disables the turbine entirely — the paper notes
    that in Iceland "the expected snow would even stop that source from
    being useful".

    The power curve has no useful closed form, so interval energy comes
    from the generic per-day trapezoid tables; the day's speed samples are
    pulled through the weather layer's memoised ``day_samples`` cache when
    available, so the hash/trig work per day happens once.
    """

    def __init__(
        self,
        weather: WeatherProvider,
        rated_w: float = 50.0,
        name: str = "wind",
        cut_in_ms: float = 3.0,
        rated_ms: float = 12.0,
        cut_out_ms: float = 25.0,
        disabled_snow_depth_m: float = 1.2,
    ) -> None:
        super().__init__(name)
        self.rated_w = rated_w
        self.weather = weather
        self.cut_in_ms = cut_in_ms
        self.rated_ms = rated_ms
        self.cut_out_ms = cut_out_ms
        self.disabled_snow_depth_m = disabled_snow_depth_m

    def _power_from_speed(self, speed: float) -> float:
        if speed < self.cut_in_ms or speed >= self.cut_out_ms:
            return 0.0
        if speed >= self.rated_ms:
            return self.rated_w
        span = (speed - self.cut_in_ms) / (self.rated_ms - self.cut_in_ms)
        return self.rated_w * span**3

    def power_w(self, time: float) -> float:
        if self.weather.snow_depth(time) >= self.disabled_snow_depth_m:
            return 0.0
        return self._power_from_speed(self.weather.wind_speed(time))

    def _build_day_table(self, day_index: int) -> Tuple[tuple, tuple, float]:
        day_samples = getattr(self.weather, "day_samples", None)
        if day_samples is None:
            return super()._build_day_table(day_index)  # weather stubs
        base = day_index * DAY
        speeds = day_samples("wind_speed", day_index)
        step = DAY / (len(speeds) - 1)
        if self.weather.snow_depth(base) >= self.disabled_snow_depth_m:
            powers = (0.0,) * len(speeds)  # snow gate: daily resolution
        else:
            powers = tuple(self._power_from_speed(s) for s in speeds)
        cumulative = [0.0]
        acc = 0.0
        for k in range(len(powers) - 1):
            acc += 0.5 * (powers[k] + powers[k + 1]) * step
            cumulative.append(acc)
        return powers, tuple(cumulative), step


class MainsCharger(PowerSource):
    """Café mains charger: full output whenever mains power is available.

    ``availability`` is a callable mapping simulated time to a bool; the
    reference station uses the café's tourist season
    (:func:`repro.environment.seasons.cafe_has_power`).
    """

    def __init__(
        self,
        availability: Callable[[float], bool],
        rated_w: float = 30.0,
        name: str = "mains",
    ) -> None:
        super().__init__(name)
        self.rated_w = rated_w
        self.availability = availability

    def power_w(self, time: float) -> float:
        return self.rated_w if self.availability(time) else 0.0

    def energy_j(self, t0: float, t1: float) -> float:
        """Interval energy assuming day-resolution availability.

        The café season flips at month boundaries (UTC midnights), so
        availability is constant within a day: sample each day-span at its
        midpoint.  Nothing is cached — a rewired availability callable
        takes effect at the next query.  Availability that flips mid-day
        should subclass and integrate accordingly.
        """
        if t1 <= t0:
            return 0.0
        total = 0.0
        for _day, a, b in _iter_day_spans(t0, t1):
            if self.availability(0.5 * (a + b)):
                total += self.rated_w * (b - a)
        return total


class ConstantSource(PowerSource):
    """Fixed-output source, useful in tests and calibration benches.

    Interval energy is closed-form and uncached, so tests that mutate
    :attr:`watts` mid-run see the new value from the query instant on.
    """

    def __init__(self, watts: float, name: str = "constant") -> None:
        super().__init__(name)
        self.watts = watts

    def power_w(self, time: float) -> float:
        return self.watts

    def energy_j(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        return self.watts * (t1 - t0)
