"""Charging sources: solar panel, wind turbine, café mains.

The base station carries a 10 W solar panel and a 50 W wind turbine; the
reference station has a solar panel and a mains charger input that is live
only while the café has power (the April-September tourist season).
Winter is what stresses the system: short days, panel burial under snow and
iced-up turbines reduce generation to near zero, driving the power-state
descents the paper's power management is built around.

Sources expose a single method, ``power_w(time)``, and pull whatever
environmental signals they need from a weather provider — any object with
``solar_factor(time)``, ``wind_speed(time)`` and ``snow_depth(time)``
(see :class:`repro.environment.weather.IcelandWeather`).
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol


class WeatherProvider(Protocol):
    """The slice of the environment the charging sources observe."""

    def solar_factor(self, time: float) -> float:
        """Irradiance as a fraction of panel rating, in [0, 1]."""

    def wind_speed(self, time: float) -> float:
        """Wind speed in m/s."""

    def snow_depth(self, time: float) -> float:
        """Snow depth at the station in metres."""


class PowerSource:
    """Base class: a named generator with a ``power_w(time)`` query."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.energy_j = 0.0  # maintained by the owning bus

    def power_w(self, time: float) -> float:
        """Instantaneous output in watts at simulated ``time``."""
        raise NotImplementedError


class SolarPanel(PowerSource):
    """Photovoltaic panel, derated by irradiance and buried by snow.

    Parameters
    ----------
    rated_w:
        Peak output (10 W on the base station).
    weather:
        Environment provider.
    burial_depth_m:
        Snow depth at which output reaches zero.  Output falls linearly
        from full at zero depth.
    """

    def __init__(
        self,
        weather: WeatherProvider,
        rated_w: float = 10.0,
        name: str = "solar",
        burial_depth_m: float = 0.5,
    ) -> None:
        super().__init__(name)
        self.rated_w = rated_w
        self.weather = weather
        self.burial_depth_m = burial_depth_m

    def power_w(self, time: float) -> float:
        burial = max(0.0, 1.0 - self.weather.snow_depth(time) / self.burial_depth_m)
        return self.rated_w * self.weather.solar_factor(time) * burial


class WindTurbine(PowerSource):
    """Small wind turbine with cut-in/rated/cut-out behaviour.

    Output follows the standard cubic law between cut-in and rated wind
    speed, is flat at rated output up to cut-out, and zero beyond (storm
    protection).  Deep snow disables the turbine entirely — the paper notes
    that in Iceland "the expected snow would even stop that source from
    being useful".
    """

    def __init__(
        self,
        weather: WeatherProvider,
        rated_w: float = 50.0,
        name: str = "wind",
        cut_in_ms: float = 3.0,
        rated_ms: float = 12.0,
        cut_out_ms: float = 25.0,
        disabled_snow_depth_m: float = 1.2,
    ) -> None:
        super().__init__(name)
        self.rated_w = rated_w
        self.weather = weather
        self.cut_in_ms = cut_in_ms
        self.rated_ms = rated_ms
        self.cut_out_ms = cut_out_ms
        self.disabled_snow_depth_m = disabled_snow_depth_m

    def power_w(self, time: float) -> float:
        if self.weather.snow_depth(time) >= self.disabled_snow_depth_m:
            return 0.0
        speed = self.weather.wind_speed(time)
        if speed < self.cut_in_ms or speed >= self.cut_out_ms:
            return 0.0
        if speed >= self.rated_ms:
            return self.rated_w
        span = (speed - self.cut_in_ms) / (self.rated_ms - self.cut_in_ms)
        return self.rated_w * span**3


class MainsCharger(PowerSource):
    """Café mains charger: full output whenever mains power is available.

    ``availability`` is a callable mapping simulated time to a bool; the
    reference station uses the café's tourist season
    (:func:`repro.environment.seasons.cafe_has_power`).
    """

    def __init__(
        self,
        availability: Callable[[float], bool],
        rated_w: float = 30.0,
        name: str = "mains",
    ) -> None:
        super().__init__(name)
        self.rated_w = rated_w
        self.availability = availability

    def power_w(self, time: float) -> float:
        return self.rated_w if self.availability(time) else 0.0


class ConstantSource(PowerSource):
    """Fixed-output source, useful in tests and calibration benches."""

    def __init__(self, watts: float, name: str = "constant") -> None:
        super().__init__(name)
        self.watts = watts

    def power_w(self, time: float) -> float:
        return self.watts
