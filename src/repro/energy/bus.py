"""The power bus: battery + sources + loads, integrated over time.

The bus owns the station's battery, its charging sources and its
:class:`~repro.energy.loads.LoadSet`, and raises the two life-cycle edges
the rest of the system hooks:

- **brown-out** — the battery reached exhaustion; the MSP430 loses its RAM
  schedule and the RTC resets (Section IV of the paper);
- **recovery** — external charging has restored enough charge to restart.

Two integration modes:

**fixed** — the original scheme: a background process samples the sources
every ``step_s`` seconds (right-rectangle integration); load switches
trigger an exact sub-step integration first, so per-load energy accounting
is exact for piecewise-constant loads.

**adaptive** (default) — event-driven: between syncs nothing is sampled.
The planner predicts the next *interesting* instant — the earliest of a
predicted battery crossing (registered voltage watch, brown-out or
recovery SoC), or ``max_step_s`` — and sleeps until then.  A load switch
syncs exactly at the toggle and invalidates the plan.  Interval source
energy comes from :meth:`~repro.energy.sources.PowerSource.energy_j`
(analytic for solar, cached quadrature for wind), so skipping a quiet
six-hour stretch costs one evaluation, not 72 ticks.

Crossing prediction scans the horizon on a coarse grid of interval
energies, brackets the first side-change of any target observable, and
bisects to ~1 s.  Predictions are checked when they fire:
``energy_crossings_predicted_total`` counts planned crossing syncs and
``energy_prediction_misses_total`` the ones where the observable was not
actually at the threshold (weather gusts move the IR term between plan
and fire).  ``energy_syncs_total{station,reason}`` counts integrations in
both modes — the ≥10× event reduction the endurance benchmark pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.energy.battery import Battery
from repro.energy.loads import Load, LoadSet
from repro.energy.sources import PowerSource
from repro.sim.kernel import Simulation

#: Histogram bucket bounds for the net-power distribution, watts.
_NET_POWER_BUCKETS = (-50.0, -20.0, -10.0, -5.0, -2.0, -1.0, 0.0,
                      1.0, 2.0, 5.0, 10.0, 20.0, 50.0)


@dataclass
class VoltageWatch:
    """A terminal-voltage threshold the bus predicts and flags.

    The bus emits a ``power_edge`` trace record (and calls ``callback``
    with ``"rising"`` or ``"falling"``) whenever a sync observes the
    voltage on the other side of ``volts`` from the previous sync.  In
    adaptive mode the watch is also a planning target: the bus schedules a
    sync at the predicted crossing instant.
    """

    volts: float
    label: str
    callback: Optional[Callable[[str], None]] = None


class PowerBus:
    """Integrates battery charge and exposes the observable terminal voltage.

    Parameters
    ----------
    sim:
        The simulation kernel.
    battery:
        The station's battery bank.
    name:
        Prefix for trace records (e.g. ``"base.power"``).
    step_s:
        Fixed-mode sampling step; also the adaptive planner's scan grid.
        300 s keeps year-long fixed runs fast while resolving the diurnal
        solar curve.
    mode:
        ``"adaptive"`` (event-driven, default) or ``"fixed"``.
    max_step_s:
        Adaptive mode: the longest the bus will sleep without a sync, even
        with no crossing predicted.  Bounds prediction staleness.
    """

    #: Adaptive planner never reschedules tighter than this (livelock guard).
    MIN_REPLAN_S = 1.0
    #: Bisection width at which a predicted crossing is considered located.
    CROSSING_TOLERANCE_S = 1.0
    #: A fired crossing counts as a hit if the observable is within these.
    PREDICT_TOLERANCE_V = 0.05
    PREDICT_TOLERANCE_SOC = 0.005

    def __init__(
        self,
        sim: Simulation,
        battery: Battery,
        name: str = "power",
        step_s: float = 300.0,
        mode: str = "adaptive",
        max_step_s: float = 21600.0,
    ) -> None:
        if step_s <= 0:
            raise ValueError("step_s must be > 0")
        if mode not in ("fixed", "adaptive"):
            raise ValueError(f"mode must be 'fixed' or 'adaptive', got {mode!r}")
        if max_step_s <= 0:
            raise ValueError("max_step_s must be > 0")
        self.sim = sim
        self.battery = battery
        self.name = name
        #: Station label for metrics (``"base.power"`` -> ``"base"``).
        self._station = name.split(".")[0]
        self.step_s = step_s
        self.mode = mode
        self.max_step_s = max_step_s
        self.loads = LoadSet()
        self.sources: List[PowerSource] = []
        self._last_sync = sim.now
        self._was_exhausted = battery.is_exhausted
        self.on_brownout: List[Callable[[], None]] = []
        self.on_recovery: List[Callable[[], None]] = []
        self._watches: List[VoltageWatch] = []
        self._prev_voltage: Optional[float] = None
        self._fired_edges: List[str] = []
        self._wake = None
        self._deadline: Optional[float] = None
        #: Cached :meth:`_peak_source_w` result (sources are fixed after
        #: wiring; :meth:`add_source` invalidates).
        self._peak_w: Optional[float] = None
        self._peak_w_known = False
        #: Deferred load accounting (adaptive mode): per-load energy is
        #: booked segment by segment as loads toggle, so a toggle does not
        #: force a full integration.  ``_load_j`` is the battery drain
        #: accumulated since the last sync; ``_acct_time`` the instant the
        #: books are balanced to.
        self._acct_time = sim.now
        self._load_j = 0.0
        #: Settled-read support: the instant of the most recent load toggle
        #: and the total load power *just before* that instant's first
        #: toggle.  A ``terminal_voltage(settled=True)`` read at the same
        #: instant answers with this pre-toggle level, so a timer-driven
        #: ADC sample is independent of whether a coincident load switch
        #: happened to dispatch first.
        self._tick_t = -1.0
        self._tick_load_w = 0.0
        # Planning scan grid: the weather's stochastic texture is linearly
        # interpolated between 3-hour noise blocks, so nothing in the source
        # curve wiggles faster than ~30 minutes; scanning coarser than the
        # integration step is safe because brackets are bisected afterwards.
        plan_step = max(step_s, 1800.0)
        self._plan_cells = max(4, min(96, int(round(max_step_s / plan_step))))
        metrics = sim.obs.metrics
        self._m_soc = metrics.gauge("battery_soc", station=self._station)
        self._m_volts = metrics.gauge("battery_voltage_v", station=self._station)
        self._m_net = metrics.histogram("battery_net_power_w",
                                        buckets=_NET_POWER_BUCKETS,
                                        station=self._station)
        self._m_syncs = {}  # reason -> Counter handle, filled on first use
        self.loads.subscribe(self._on_load_switch)
        if mode == "fixed":
            self._process = sim.process(self._run_fixed(), name=f"{name}.integrator")
        else:
            self._process = sim.process(self._run_adaptive(), name=f"{name}.integrator")

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_source(self, source: PowerSource) -> PowerSource:
        """Attach a charging source."""
        self.sources.append(source)
        self._peak_w_known = False
        return source

    def add_load(self, name: str, power_w: float) -> Load:
        """Register a switchable load."""
        return self.loads.add(name, power_w)

    def watch_voltage(self, volts: float, label: str,
                      callback: Optional[Callable[[str], None]] = None) -> VoltageWatch:
        """Subscribe to terminal-voltage crossings of ``volts``.

        Replaces threshold *polling*: in adaptive mode the bus plans a sync
        at the predicted crossing, so the edge is observed within
        :attr:`CROSSING_TOLERANCE_S` of the model's true crossing instead
        of at the next poll.  Works (edge detection only) in fixed mode
        too, which keeps A/B comparisons symmetrical.
        """
        watch = VoltageWatch(volts=volts, label=label, callback=callback)
        self._watches.append(watch)
        self.invalidate()
        return watch

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def source_power(self, time: Optional[float] = None) -> float:
        """Combined source output in watts at ``time`` (default: now)."""
        when = self.sim.now if time is None else time
        total = 0.0
        for source in self.sources:
            total += source.power_w(when)
        return total

    def load_power(self) -> float:
        """Combined draw of switched-on loads in watts."""
        return self.loads.total_power()

    def settled_load_w(self) -> float:
        """Load power over the open interval ending at this instant.

        Equal to :meth:`load_power` except at an instant where a load has
        already toggled, where it answers with the pre-toggle level — the
        steady state that actually held while a coincident ADC conversion
        was integrating charge.
        """
        if self._tick_t == self.sim.now:
            return self._tick_load_w
        return self.loads.total_power()

    def net_power(self) -> float:
        """Sources minus loads, in watts (positive = charging)."""
        return self.source_power() - self.load_power()

    def terminal_voltage(self, settled: bool = False) -> float:
        """Battery terminal voltage right now — what the MSP430's ADC sees.

        Fixed mode syncs first (a read is a sample point).  Adaptive mode
        answers *predictively* — state of charge projected from the last
        sync through the interval source energies — so an ADC read does
        not force an integration event.

        ``settled=True`` evaluates the IR term at :meth:`settled_load_w`
        instead of the instantaneous load set: the reading a timer-driven
        ADC conversion reports at an instant where a load also switches.
        That value is the same whichever of the two coincident events
        dispatched first, so periodic samplers stay tie-order robust;
        leave it ``False`` when the caller just toggled a load and wants
        to observe its own effect.
        """
        if self.mode == "fixed":
            self.sync(reason="read")
            load_w = self.settled_load_w() if settled else self.load_power()
            return self.battery.terminal_voltage(self.source_power() - load_w)
        load_w = self.settled_load_w() if settled else self.load_power()
        net_w = self.source_power() - load_w
        now = self.sim.now
        dt = now - self._last_sync
        if dt <= 0:
            return self.battery.terminal_voltage(net_w)
        energy = 0.0
        for source in self.sources:
            energy += max(0.0, source.energy_j(self._last_sync, now))
        drained_j = self._load_j
        if not self.battery.is_exhausted:
            drained_j += self.loads.total_power() * (now - self._acct_time)
        soc = self.battery.predicted_soc(dt, drained_j / dt, energy)
        return self.battery.terminal_voltage_at(soc, net_w)

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------
    def sync(self, reason: str = "read") -> None:
        """Integrate battery and per-load energy up to the current instant.

        Idempotent at a single timestamp: a second call at the same
        ``sim.now`` integrates nothing (no double-booked sub-step when a
        load toggles exactly on a sample boundary) but still re-checks the
        brown-out/recovery edges, so state changes made *between* two
        same-instant calls (e.g. a lump :meth:`drain_j`) are observed.
        """
        now = self.sim.now
        if self.mode != "fixed":
            self._account_loads(now)
        dt = now - self._last_sync
        if dt <= 0:
            self._check_edges()
            return
        self._last_sync = now
        exhausted_before = self.battery.is_exhausted
        load_w = self.loads.total_power()
        if self.mode == "fixed":
            source_w = self.source_power(now)
            self.battery.apply(dt, load_w=load_w, source_w=source_w)
            for source in self.sources:
                source.delivered_j += source.power_w(now) * dt
            inst_net_w = source_w - load_w
            if not exhausted_before:
                for load in self.loads:
                    load.energy_j += load.current_power() * dt
        else:
            source_energy = 0.0
            for source in self.sources:
                delivered = max(0.0, source.energy_j(now - dt, now))
                source.delivered_j += delivered
                source_energy += delivered
            load_j = self._load_j
            self._load_j = 0.0
            self.battery.apply(dt, load_w=load_j / dt, source_w=source_energy / dt)
            inst_net_w = self.source_power(now) - load_w
        voltage = self.battery.terminal_voltage(inst_net_w)
        self._m_soc.set(self.battery.soc)
        self._m_volts.set(voltage)
        self._m_net.observe(inst_net_w)
        counter = self._m_syncs.get(reason)
        if counter is None:
            counter = self.sim.obs.metrics.counter(
                "energy_syncs_total", station=self._station, reason=reason)
            self._m_syncs[reason] = counter
        counter.inc()
        self._fired_edges.clear()
        self._update_watches(voltage)
        self._check_edges()

    def drain_j(self, energy_j: float) -> None:
        """Withdraw a lump of energy through the bus, sync-bracketed.

        The energy-conservation lint rule points here: draining the battery
        directly between syncs would charge the loss against the wrong
        interval and skip the brown-out edge check.  This integrates up to
        now, books the withdrawal, re-checks edges and (adaptive mode)
        invalidates the crossing prediction.
        """
        self.sync(reason="read")
        self.battery.drain_j(energy_j)
        self._check_edges()
        self.invalidate()

    def invalidate(self) -> None:
        """Drop the adaptive planner's prediction and re-plan immediately.

        Needed whenever the future source/load trajectory changes in a way
        the bus cannot see — a test mutating ``ConstantSource.watts``, a
        rewired availability callable.  Load switches through
        :class:`~repro.energy.loads.LoadSet` invalidate automatically.
        No-op in fixed mode.
        """
        wake = self._wake
        if wake is not None and not wake.triggered:
            wake.succeed()

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def _update_watches(self, voltage: float) -> None:
        previous = self._prev_voltage
        self._prev_voltage = voltage
        if previous is None:
            return
        for watch in self._watches:
            if previous < watch.volts <= voltage:
                direction = "rising"
            elif voltage < watch.volts <= previous:
                direction = "falling"
            else:
                continue
            self._fired_edges.append(watch.label)
            self.sim.obs.metrics.inc("power_threshold_crossings_total",
                                     station=self._station, label=watch.label,
                                     direction=direction)
            self.sim.trace.emit(self.name, "power_edge", label=watch.label,
                                direction=direction, volts=voltage)
            if watch.callback is not None:
                watch.callback(direction)

    def _check_edges(self) -> None:
        exhausted = self.battery.is_exhausted
        if exhausted and not self._was_exhausted:
            self._was_exhausted = True
            self._fired_edges.append("brownout")
            self.sim.obs.metrics.inc("power_brownouts_total", station=self._station)
            self.sim.trace.emit(self.name, "brownout", soc=self.battery.soc)
            self.loads.all_off()
            for callback in list(self.on_brownout):
                callback()
        elif self._was_exhausted and self.battery.can_restart:
            self._was_exhausted = False
            self._fired_edges.append("recovery")
            self.sim.obs.metrics.inc("power_recoveries_total", station=self._station)
            self.sim.trace.emit(self.name, "recovery", soc=self.battery.soc)
            for callback in list(self.on_recovery):
                callback()

    def _on_load_switch(self, _load: Load) -> None:
        # Subscribers fire *before* the switch flips, so on the first
        # toggle of an instant this captures the level the whole previous
        # interval ran at — what a coincident settled read must report.
        now = self.sim.now
        if now != self._tick_t:
            self._tick_t = now
            self._tick_load_w = self.loads.total_power()
        if self.mode == "fixed":
            self.sync(reason="load_switch")
            return
        # Adaptive: balance the per-load books at the toggle (the subscriber
        # fires *before* the switch flips, so the closing segment is booked
        # at the old power) but defer the battery integration.  Only when
        # the new load level could drive a target across its threshold
        # before the already-scheduled deadline does the planner wake — and
        # its wake path syncs at this same instant, exactly like the old
        # sync-per-toggle scheme, so nothing behavioural is lost.
        self._account_loads(self.sim.now)
        if not self._deadline_safe():
            self.invalidate()

    def _account_loads(self, now: float) -> None:
        """Book per-load energy for the segment since the last booking.

        Loads are piecewise constant, so booking each inter-toggle segment
        at its (constant) power is exact; ``_load_j`` carries the summed
        battery drain into the next :meth:`sync`.  Booking is skipped while
        the battery is exhausted — mirroring the ``exhausted_before`` gate
        of the fixed path (exhaustion only changes state inside a sync, so
        the flag is constant across the segment).
        """
        dt = now - self._acct_time
        if dt <= 0:
            return
        self._acct_time = now
        if self.battery.is_exhausted:
            return
        total_w = 0.0
        for load in self.loads:
            power = load.current_power()
            if power:
                load.energy_j += power * dt
                total_w += power
        self._load_j += total_w * dt

    def _peak_source_w(self) -> Optional[float]:
        """Upper bound on combined source output, or ``None`` if unknown.

        Every stock source is capped by its ``rated_w`` (``watts`` for
        :class:`~repro.energy.sources.ConstantSource`); an exotic source
        without either attribute — or a negative constant — defeats the
        bound and the bus falls back to always re-planning.
        """
        if self._peak_w_known:
            return self._peak_w
        total = 0.0
        for source in self.sources:
            cap = getattr(source, "rated_w", None)
            if cap is None:
                cap = getattr(source, "watts", None)
            if cap is None or cap < 0.0:
                total = None
                break
            total += cap
        self._peak_w = total
        self._peak_w_known = True
        return total

    def _deadline_safe(self) -> bool:
        """Can the current plan survive this load switch un-replanned?

        Source power lies in ``[0, peak]``, so the trajectories under the
        two constant extremes bracket every reachable SoC/voltage pointwise:
        ``source_w = 0`` is the soonest any falling target (brown-out, a
        voltage sag) can be reached, ``source_w = peak`` the soonest any
        rising one (recovery, a voltage rise) can.  If even those bounds
        land beyond the already-scheduled deadline, the pending sync fires
        first anyway and the (expensive) re-plan is skipped.
        """
        deadline = self._deadline
        if deadline is None or self._wake is None:
            return False
        now = self.sim.now
        remaining = deadline - now
        if remaining <= self.MIN_REPLAN_S:
            return True  # the pending sync fires now-ish regardless
        peak_w = self._peak_source_w()
        if peak_w is None:
            return False
        battery = self.battery
        cfg = battery.config
        capacity_j = cfg.capacity_j
        # The battery's stored state is stale (last integrated at
        # ``_last_sync``); bound the *current* SoC instead of trusting it.
        # ``_load_j`` holds the full drain since then (the books were just
        # balanced to ``now``), sources only ever add charge, so:
        exhausted = battery.is_exhausted
        soc_lo = max(0.0, battery.soc - self._load_j / capacity_j)
        charge_w = peak_w * cfg.charge_efficiency
        elapsed = now - self._last_sync
        soc_hi = min(1.0, battery.soc + charge_w * elapsed / capacity_j)
        load_w = 0.0 if exhausted else self.loads.total_power()
        fall_w = load_w                       # fastest possible SoC drain
        rise_w = max(0.0, charge_w - load_w)  # fastest possible SoC rise
        # Only the *behavioural* edges are guarded: brown-out and recovery
        # change system state the instant they are observed, so the bus
        # must provably be unable to reach them before the pending sync.
        # Voltage watches are observational (trace + metrics, no state);
        # their planned crossings are best-effort under the trajectory at
        # plan time, and a watch crossing provoked by an unplanned load
        # change is simply observed at the next sync.  Guarding them here
        # would defeat the skip entirely — the IR term alone moves the
        # terminal voltage by ±peak·R/V_nom, which straddles every watch
        # threshold whenever the source can swing from calm to storm.
        for kind, _label, value in self._plan_targets():
            if kind == "brownout":
                if soc_lo <= value:
                    return False
                if fall_w > 0.0 and (soc_lo - value) * capacity_j < remaining * fall_w:
                    return False
            elif kind == "recovery":
                if soc_hi >= value:
                    return False
                if rise_w > 0.0 and (value - soc_hi) * capacity_j < remaining * rise_w:
                    return False
        return True

    # ------------------------------------------------------------------
    # Background processes
    # ------------------------------------------------------------------
    def _run_fixed(self):
        while True:
            yield self.sim.timeout(self.step_s)
            self.sync(reason="tick")

    def _run_adaptive(self):
        sim = self.sim
        while True:
            delay, reason, target = self._plan()
            timer = sim.timeout(delay, name=f"{self.name}.deadline")
            wake = sim.event(f"{self.name}.replan")
            self._wake = wake
            self._deadline = sim.now + delay
            yield sim.any_of([timer, wake])
            self._wake = None
            self._deadline = None
            if not timer.processed:
                # Invalidated — integrate up to the triggering instant (the
                # planner projects from the battery's stored state, so it
                # must be fresh) and re-plan.  Wake-ups ride on the event
                # that caused them, so this sync lands exactly at the
                # unsafe load toggle / drain that fired it.
                self.sync(reason="load_switch")
                continue
            self.sync(reason=reason)
            if target is not None:
                self._score_prediction(target)

    # ------------------------------------------------------------------
    # Planning (adaptive mode)
    # ------------------------------------------------------------------
    def _plan(self) -> Tuple[float, str, Optional[Tuple[str, str, float]]]:
        """Pick the next sync: ``(delay, reason, target-or-None)``.

        Scans the ``max_step_s`` horizon on a ``_plan_cells`` grid,
        accumulating interval source energy cell by cell (O(1) per cell
        once the weather day caches are warm), projecting SoC and terminal
        voltage, and bracketing the first instant any target observable
        changes side.  The bracket is bisected to
        :attr:`CROSSING_TOLERANCE_S`.  Assumes the current load set; any
        load switch re-plans.
        """
        targets = self._plan_targets()
        horizon = self.max_step_s
        if not targets:
            return horizon, "max_step", None
        peak_w = self._peak_source_w()
        if peak_w is not None and self._targets_unreachable(targets, peak_w, horizon):
            return horizon, "max_step", None
        now = self.sim.now
        battery = self.battery
        load_w = self.loads.total_power()
        sources = self.sources
        # The battery model is inlined here (same arithmetic as
        # Battery.predicted_soc / terminal_voltage_at): the scan runs on
        # every re-plan and the call overhead dominates otherwise.
        cfg = battery.config
        capacity_j = cfg.capacity_j
        efficiency = cfg.charge_efficiency
        exhausted = battery.is_exhausted
        soc0 = battery.soc
        ocv_empty = cfg.ocv_empty
        ocv_span = cfg.ocv_full - cfg.ocv_empty
        ir_over_v = cfg.internal_resistance / cfg.nominal_voltage
        clamp_v = cfg.max_terminal_voltage
        step = horizon / self._plan_cells
        energy_cum = 0.0
        prev_t = now
        prev_sides: Optional[List[bool]] = None
        for _cell in range(self._plan_cells):
            t = prev_t + step
            cell_j = 0.0
            for source in sources:
                cell_j += source.energy_j(prev_t, t)
            new_cum = energy_cum + cell_j
            energy = soc0 * capacity_j + new_cum * efficiency
            if not exhausted:
                energy -= load_w * (t - now)
            soc = energy / capacity_j
            if soc > 1.0:
                soc = 1.0
            elif soc < 0.0:
                soc = 0.0
            mean_net_w = cell_j / step - load_w
            ir_term = mean_net_w * ir_over_v
            volts = ocv_empty + ocv_span * soc + ir_term
            if volts > clamp_v:
                volts = clamp_v
            if prev_sides is None:
                volts0 = min(clamp_v, ocv_empty + ocv_span * soc0 + ir_term)
                prev_sides = [self._target_side(tg, soc0, volts0)
                              for tg in targets]
            for index, target in enumerate(targets):
                side = self._target_side(target, soc, volts)
                if side != prev_sides[index]:
                    crossing = self._bisect_crossing(
                        target, prev_sides[index], prev_t, t, energy_cum, load_w)
                    delay = max(crossing - now, self.MIN_REPLAN_S)
                    return delay, "crossing", target
            energy_cum = new_cum
            prev_t = t
        return horizon, "max_step", None

    def _targets_unreachable(
        self,
        targets: List[Tuple[str, str, float]],
        peak_w: float,
        horizon: float,
    ) -> bool:
        """Whether no target can change side anywhere in the horizon.

        Same bracketing argument as :meth:`_deadline_safe` — source power
        lies in ``[0, peak]``, so constant-extreme trajectories bound every
        reachable SoC and terminal voltage pointwise.  When all targets
        provably stay on their current side the expensive cell scan is
        skipped; in practice this is the common case (a battery pegged near
        full under light load cannot reach any threshold in six hours).
        Unlike :meth:`_deadline_safe`, voltage watches *are* guarded here:
        this only gates the scan of the very trajectory the plan would use,
        so a skip can never lose a crossing the scan would have found.
        """
        battery = self.battery
        cfg = battery.config
        capacity_j = cfg.capacity_j
        load_w = 0.0 if battery.is_exhausted else self.loads.total_power()
        soc0 = battery.soc
        soc_lo = max(0.0, soc0 - load_w * horizon / capacity_j)
        soc_hi = min(1.0, soc0 + peak_w * cfg.charge_efficiency * horizon / capacity_j)
        ocv_empty = cfg.ocv_empty
        ocv_span = cfg.ocv_full - cfg.ocv_empty
        ir_over_v = cfg.internal_resistance / cfg.nominal_voltage
        clamp_v = cfg.max_terminal_voltage
        volts_lo = min(clamp_v, ocv_empty + ocv_span * soc_lo - load_w * ir_over_v)
        volts_hi = min(clamp_v, ocv_empty + ocv_span * soc_hi + peak_w * ir_over_v)
        for kind, _label, value in targets:
            if kind == "brownout":
                if soc_lo <= value:
                    return False
            elif kind == "recovery":
                if soc_hi >= value:
                    return False
            elif not (volts_lo >= value or volts_hi < value):
                return False
        return True

    def _plan_targets(self) -> List[Tuple[str, str, float]]:
        battery = self.battery
        if battery.is_exhausted:
            return [("recovery", "recovery", battery.config.recovery_soc)]
        targets = [("brownout", "brownout", battery.config.brownout_soc)]
        for watch in self._watches:
            targets.append(("volts", watch.label, watch.volts))
        return targets

    @staticmethod
    def _target_side(target: Tuple[str, str, float], soc: float, volts: float) -> bool:
        """Which side of its threshold the target observable is on.

        The side predicates mirror the edge detectors exactly:
        brown-out fires at ``soc <= threshold`` (:attr:`Battery.is_exhausted`),
        recovery at ``soc >= threshold`` (:attr:`Battery.can_restart`), and a
        voltage watch changes side at ``volts >= threshold``
        (:meth:`_update_watches`).
        """
        kind, _label, value = target
        if kind == "brownout":
            return soc > value
        if kind == "recovery":
            return soc >= value
        return volts >= value

    def _bisect_crossing(
        self,
        target: Tuple[str, str, float],
        start_side: bool,
        lo: float,
        hi: float,
        energy_at_lo: float,
        load_w: float,
    ) -> float:
        """First instant in ``(lo, hi]`` where ``target`` sits on the new side."""
        now = self.sim.now
        battery = self.battery
        sources = self.sources
        while hi - lo > self.CROSSING_TOLERANCE_S:
            mid = 0.5 * (lo + hi)
            slice_j = 0.0
            for source in sources:
                slice_j += source.energy_j(lo, mid)
            energy_mid = energy_at_lo + slice_j
            soc = battery.predicted_soc(mid - now, load_w, energy_mid)
            width = mid - lo
            mean_net_w = (slice_j / width if width > 0 else 0.0) - load_w
            volts = battery.terminal_voltage_at(soc, mean_net_w)
            if self._target_side(target, soc, volts) == start_side:
                lo = mid
                energy_at_lo = energy_mid
            else:
                hi = mid
        return hi

    def _score_prediction(self, target: Tuple[str, str, float]) -> None:
        """Account a fired crossing prediction as hit or miss."""
        metrics = self.sim.obs.metrics
        metrics.inc("energy_crossings_predicted_total", station=self._station)
        kind, label, value = target
        if label in self._fired_edges:
            return  # the predicted edge actually fired at this sync
        if kind == "volts":
            observed = self._prev_voltage if self._prev_voltage is not None else 0.0
            hit = abs(observed - value) <= self.PREDICT_TOLERANCE_V
        else:
            hit = abs(self.battery.soc - value) <= self.PREDICT_TOLERANCE_SOC
        if not hit:
            metrics.inc("energy_prediction_misses_total", station=self._station)
