"""The power bus: battery + sources + loads, integrated over time.

The bus owns the station's battery, its charging sources and its
:class:`~repro.energy.loads.LoadSet`.  A background process samples the
sources on a fixed step; load switches trigger an exact sub-step
integration first, so per-load energy accounting is exact for
piecewise-constant loads.

The bus also raises the two life-cycle edges the rest of the system hooks:

- **brown-out** — the battery reached exhaustion; the MSP430 loses its RAM
  schedule and the RTC resets (Section IV of the paper);
- **recovery** — external charging has restored enough charge to restart.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.energy.battery import Battery
from repro.energy.loads import Load, LoadSet
from repro.energy.sources import PowerSource
from repro.sim.kernel import Simulation


class PowerBus:
    """Integrates battery charge and exposes the observable terminal voltage.

    Parameters
    ----------
    sim:
        The simulation kernel.
    battery:
        The station's battery bank.
    name:
        Prefix for trace records (e.g. ``"base.power"``).
    step_s:
        Sampling step for the background integration process.  300 s keeps
        year-long runs fast while resolving the diurnal solar curve.
    """

    def __init__(
        self,
        sim: Simulation,
        battery: Battery,
        name: str = "power",
        step_s: float = 300.0,
    ) -> None:
        if step_s <= 0:
            raise ValueError("step_s must be > 0")
        self.sim = sim
        self.battery = battery
        self.name = name
        #: Station label for metrics (``"base.power"`` -> ``"base"``).
        self._station = name.split(".")[0]
        self.step_s = step_s
        self.loads = LoadSet()
        self.sources: List[PowerSource] = []
        self._last_sync = sim.now
        self._was_exhausted = battery.is_exhausted
        self.on_brownout: List[Callable[[], None]] = []
        self.on_recovery: List[Callable[[], None]] = []
        self.loads.subscribe(lambda _load: self.sync())
        self._process = sim.process(self._run(), name=f"{name}.integrator")

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_source(self, source: PowerSource) -> PowerSource:
        """Attach a charging source."""
        self.sources.append(source)
        return source

    def add_load(self, name: str, power_w: float) -> Load:
        """Register a switchable load."""
        return self.loads.add(name, power_w)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def source_power(self, time: Optional[float] = None) -> float:
        """Combined source output in watts at ``time`` (default: now)."""
        when = self.sim.now if time is None else time
        return sum(source.power_w(when) for source in self.sources)

    def load_power(self) -> float:
        """Combined draw of switched-on loads in watts."""
        return self.loads.total_power()

    def net_power(self) -> float:
        """Sources minus loads, in watts (positive = charging)."""
        return self.source_power() - self.load_power()

    def terminal_voltage(self) -> float:
        """Battery terminal voltage right now — what the MSP430's ADC sees."""
        self.sync()
        return self.battery.terminal_voltage(self.net_power())

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Integrate battery and per-load energy up to the current instant."""
        now = self.sim.now
        dt = now - self._last_sync
        if dt <= 0:
            return
        self._last_sync = now
        exhausted_before = self.battery.is_exhausted
        load_w = self.loads.total_power()
        source_w = self.source_power(now)
        self.battery.apply(dt, load_w=load_w, source_w=source_w)
        if not exhausted_before:
            for load in self.loads:
                load.energy_j += load.current_power() * dt
        for source in self.sources:
            source.energy_j += source.power_w(now) * dt
        metrics = self.sim.obs.metrics
        metrics.set_gauge("battery_soc", self.battery.soc, station=self._station)
        metrics.set_gauge(
            "battery_voltage_v",
            self.battery.terminal_voltage(source_w - load_w),
            station=self._station,
        )
        metrics.observe(
            "battery_net_power_w", source_w - load_w,
            buckets=(-50.0, -20.0, -10.0, -5.0, -2.0, -1.0, 0.0,
                     1.0, 2.0, 5.0, 10.0, 20.0, 50.0),
            station=self._station,
        )
        self._check_edges()

    def _check_edges(self) -> None:
        exhausted = self.battery.is_exhausted
        if exhausted and not self._was_exhausted:
            self._was_exhausted = True
            self.sim.obs.metrics.inc("power_brownouts_total", station=self._station)
            self.sim.trace.emit(self.name, "brownout", soc=self.battery.soc)
            self.loads.all_off()
            for callback in list(self.on_brownout):
                callback()
        elif self._was_exhausted and self.battery.can_restart:
            self._was_exhausted = False
            self.sim.obs.metrics.inc("power_recoveries_total", station=self._station)
            self.sim.trace.emit(self.name, "recovery", soc=self.battery.soc)
            for callback in list(self.on_recovery):
                callback()

    def _run(self):
        while True:
            yield self.sim.timeout(self.step_s)
            self.sync()
