"""Switchable electrical loads and per-load energy accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class Load:
    """One switchable consumer (Gumstix, GPS, modem, sensor rail...).

    Attributes
    ----------
    name:
        Unique name within its :class:`LoadSet`.
    power_w:
        Draw in watts while on.
    on:
        Current switch state.
    energy_j:
        Total energy consumed so far (maintained by the owning bus).
    """

    name: str
    power_w: float
    on: bool = False
    energy_j: float = 0.0

    def current_power(self) -> float:
        """Instantaneous draw in watts."""
        return self.power_w if self.on else 0.0


class LoadSet:
    """A named collection of loads with change notification.

    The power bus subscribes to switch changes so it can integrate the
    battery exactly over each piecewise-constant load interval.
    """

    def __init__(self) -> None:
        self._loads: Dict[str, Load] = {}
        self._on_change: List[Callable[[Load], None]] = []

    def add(self, name: str, power_w: float) -> Load:
        """Register a new load, initially off."""
        if name in self._loads:
            raise ValueError(f"duplicate load name {name!r}")
        if power_w < 0:
            raise ValueError("power must be >= 0")
        load = Load(name=name, power_w=power_w)
        self._loads[name] = load
        return load

    def get(self, name: str) -> Load:
        """Look up a load by name."""
        return self._loads[name]

    def __contains__(self, name: str) -> bool:
        return name in self._loads

    def __iter__(self):
        return iter(self._loads.values())

    def subscribe(self, callback: Callable[[Load], None]) -> None:
        """Call ``callback(load)`` just before any switch change."""
        self._on_change.append(callback)

    def set_on(self, name: str, on: bool) -> None:
        """Switch a load, notifying subscribers first (for exact integration)."""
        load = self._loads[name]
        if load.on == on:
            return
        for callback in self._on_change:
            callback(load)
        load.on = on

    def switch_on(self, name: str) -> None:
        """Turn a load on."""
        self.set_on(name, True)

    def switch_off(self, name: str) -> None:
        """Turn a load off."""
        self.set_on(name, False)

    def all_off(self) -> None:
        """Turn every load off (brown-out)."""
        for load in list(self._loads.values()):
            self.set_on(load.name, False)

    def total_power(self) -> float:
        """Instantaneous combined draw of all switched-on loads, in watts."""
        return sum(load.current_power() for load in self._loads.values())

    def energy_report_wh(self) -> Dict[str, float]:
        """Energy consumed per load so far, in watt-hours."""
        return {load.name: load.energy_j / 3600.0 for load in self._loads.values()}

    def active(self) -> List[str]:
        """Names of loads currently on."""
        return [load.name for load in self._loads.values() if load.on]
