"""Lead-acid battery bank model.

The stations run from 12 V lead-acid batteries (36 Ah in the paper's
Section III arithmetic).  The model is deliberately simple — an
energy-based state of charge plus an internal-resistance terminal-voltage
term — because the reproduced algorithms only ever observe the terminal
voltage through the MSP430's ADC:

- open-circuit voltage rises linearly with state of charge across the
  10.5-12.9 V band, placing the paper's Table II thresholds
  (11.5 / 12.0 / 12.5 V) at meaningful SoC levels;
- charging raises the terminal voltage by ``I x R`` (up to the ~14.5 V seen
  at the top of Fig 5), discharging lowers it, which produces the 2-hourly
  dips Fig 5 shows while the dGPS duty-cycles in state 3.

Calibration anchor (Section III): a 3.6 W GPS running continuously from
36 Ah at 12 V nominal lasts ``36 * 12 / 3.6 = 120 h = 5 days`` — exactly
the paper's figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class BatteryConfig:
    """Electrical parameters of the battery bank (paper defaults)."""

    #: Rated capacity in amp-hours (Section III uses 36 Ah).
    capacity_ah: float = 36.0
    #: Nominal bus voltage used for energy arithmetic.
    nominal_voltage: float = 12.0
    #: Open-circuit voltage at 0% state of charge.
    ocv_empty: float = 10.5
    #: Open-circuit voltage at 100% state of charge.
    ocv_full: float = 12.9
    #: Internal resistance in ohms (sets charge rise / discharge dip size).
    internal_resistance: float = 0.35
    #: Charge acceptance efficiency (fraction of source energy stored).
    charge_efficiency: float = 0.85
    #: Terminal voltage is clamped here during heavy charging (regulator limit).
    max_terminal_voltage: float = 14.5
    #: SoC below which the electronics brown out (MSP430 RAM/RTC lost).
    brownout_soc: float = 0.0
    #: SoC at which a browned-out system has enough charge to restart.
    recovery_soc: float = 0.10
    #: Usable-capacity loss per °C below ``temperature_reference_c``
    #: (lead-acid chemistry slows in the cold; ~0.6-1%/°C is typical).
    #: 0 disables temperature effects — the Section III anchors (5-day /
    #: 117-day lifetimes) are quoted at reference temperature.
    cold_derating_per_c: float = 0.0
    #: Temperature at which the rated capacity applies, °C.
    temperature_reference_c: float = 20.0
    #: Floor on the derated capacity fraction.
    min_capacity_fraction: float = 0.5

    @property
    def capacity_j(self) -> float:
        """Usable capacity in joules."""
        return self.capacity_ah * self.nominal_voltage * 3600.0

    @property
    def capacity_wh(self) -> float:
        """Usable capacity in watt-hours."""
        return self.capacity_ah * self.nominal_voltage


@dataclass
class Battery:
    """Energy-based battery state with a terminal-voltage model."""

    config: BatteryConfig = field(default_factory=BatteryConfig)
    #: State of charge in [0, 1].
    soc: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.soc <= 1.0:
            raise ValueError(f"soc must be in [0, 1], got {self.soc}")

    # ------------------------------------------------------------------
    # Energy book-keeping
    # ------------------------------------------------------------------
    @property
    def energy_j(self) -> float:
        """Stored energy in joules."""
        return self.soc * self.config.capacity_j

    @property
    def is_exhausted(self) -> bool:
        """True when the bank cannot power the electronics at all."""
        return self.soc <= self.config.brownout_soc

    @property
    def can_restart(self) -> bool:
        """True when a browned-out system has recharged enough to restart."""
        return self.soc >= self.config.recovery_soc

    def apply(self, dt: float, load_w: float, source_w: float = 0.0) -> None:
        """Integrate ``dt`` seconds of ``load_w`` drain and ``source_w`` charge.

        Charging passes through the charge-efficiency factor; the SoC is
        clamped to [0, 1].  When the bank is already exhausted the load is
        physically absent (everything has browned out) so only charging has
        an effect.
        """
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        if load_w < 0 or source_w < 0:
            raise ValueError("power values must be >= 0")
        energy = self.energy_j
        if not self.is_exhausted:
            energy -= load_w * dt
        energy += source_w * dt * self.config.charge_efficiency
        self.soc = min(1.0, max(0.0, energy / self.config.capacity_j))

    def drain_j(self, energy_j: float) -> None:
        """Remove a lump of energy (e.g. a burst transfer accounted analytically)."""
        if energy_j < 0:
            raise ValueError("energy must be >= 0")
        self.soc = max(0.0, (self.energy_j - energy_j) / self.config.capacity_j)

    # ------------------------------------------------------------------
    # Crossing prediction (pure — nothing here mutates the battery)
    # ------------------------------------------------------------------
    def predicted_soc(self, dt: float, load_w: float, source_energy_j: float) -> float:
        """SoC after ``dt`` seconds of ``load_w`` given ``source_energy_j`` input.

        Mirrors :meth:`apply` exactly (exhaustion gating evaluated at the
        interval start, charge efficiency, [0, 1] clamp) but leaves the
        battery untouched — the adaptive bus uses it to look ahead along
        the weather-driven source curve.
        """
        energy = self.energy_j
        if not self.is_exhausted:
            energy -= load_w * dt
        energy += source_energy_j * self.config.charge_efficiency
        return min(1.0, max(0.0, energy / self.config.capacity_j))

    def time_to_soc(self, target_soc: float, load_w: float, source_w: float = 0.0) -> float:
        """Seconds until the SoC reaches ``target_soc`` under constant powers.

        Closed form: ``inf`` when the net rate points away from the target
        (or is zero), ``0`` when already there.  The adaptive bus uses this
        for the constant-power segments between weather re-plans; the
        weather-driven case brackets this estimate with root-finding in
        :meth:`repro.energy.bus.PowerBus._plan`.
        """
        cfg = self.config
        delta_j = (target_soc - self.soc) * cfg.capacity_j
        rate_w = source_w * cfg.charge_efficiency
        if not self.is_exhausted:
            rate_w -= load_w
        if delta_j * rate_w > 0.0:  # moving towards the target
            return delta_j / rate_w
        if abs(delta_j) < 1e-12 * cfg.capacity_j:
            return 0.0
        return math.inf

    def time_to_voltage(self, volts: float, load_w: float, source_w: float = 0.0) -> float:
        """Seconds until the terminal voltage reaches ``volts`` (constant powers).

        Inverts the affine OCV + IR model; ``inf`` when the target sits
        above the regulator clamp or outside the reachable SoC band.
        """
        cfg = self.config
        if volts >= cfg.max_terminal_voltage:
            return math.inf
        ir_term = (source_w - load_w) / cfg.nominal_voltage * cfg.internal_resistance
        target_soc = (volts - ir_term - cfg.ocv_empty) / (cfg.ocv_full - cfg.ocv_empty)
        if not 0.0 <= target_soc <= 1.0:
            return math.inf
        return self.time_to_soc(target_soc, load_w, source_w)

    def time_to_exhaustion(self, load_w: float, source_w: float = 0.0) -> float:
        """Seconds until brown-out under constant powers (``inf`` if never)."""
        return self.time_to_soc(self.config.brownout_soc, load_w, source_w)

    # ------------------------------------------------------------------
    # Voltage model
    # ------------------------------------------------------------------
    def open_circuit_voltage(self) -> float:
        """Resting voltage at the current state of charge."""
        cfg = self.config
        return cfg.ocv_empty + (cfg.ocv_full - cfg.ocv_empty) * self.soc

    def terminal_voltage_at(self, soc: float, net_power_w: float = 0.0) -> float:
        """The terminal-voltage model evaluated at an arbitrary ``soc`` (pure)."""
        cfg = self.config
        ocv = cfg.ocv_empty + (cfg.ocv_full - cfg.ocv_empty) * soc
        current = net_power_w / cfg.nominal_voltage
        voltage = ocv + current * cfg.internal_resistance
        return min(voltage, cfg.max_terminal_voltage)

    def terminal_voltage(self, net_power_w: float = 0.0) -> float:
        """Voltage at the battery terminals under ``net_power_w`` flow.

        ``net_power_w`` is sources minus loads: positive while charging
        (terminal voltage rises above OCV), negative while discharging
        (voltage sags — the Fig 5 dGPS dips).
        """
        return self.terminal_voltage_at(self.soc, net_power_w)

    def lifetime_days(self, load_w: float) -> float:
        """Days until empty under a constant ``load_w`` from the current SoC.

        This is the paper's Section III arithmetic (5 days for a continuous
        3.6 W GPS from a full 36 Ah bank).
        """
        if load_w <= 0:
            return float("inf")
        return self.energy_j / load_w / 86400.0

    # ------------------------------------------------------------------
    # Temperature effects (optional)
    # ------------------------------------------------------------------
    def capacity_fraction_at(self, temperature_c: float) -> float:
        """Usable-capacity fraction at ``temperature_c``.

        1.0 at (or above) the reference temperature; derated linearly in
        the cold down to ``min_capacity_fraction``.  With the default
        ``cold_derating_per_c = 0`` this is always 1.0.
        """
        cfg = self.config
        if cfg.cold_derating_per_c <= 0.0:
            return 1.0
        deficit = max(0.0, cfg.temperature_reference_c - temperature_c)
        return max(cfg.min_capacity_fraction,
                   1.0 - cfg.cold_derating_per_c * deficit)

    def usable_energy_j(self, temperature_c: float) -> float:
        """Energy actually extractable at ``temperature_c``."""
        return self.energy_j * self.capacity_fraction_at(temperature_c)

    def lifetime_days_at(self, load_w: float, temperature_c: float) -> float:
        """Cold-aware variant of :meth:`lifetime_days`.

        An Iceland January (~-10 °C) shaves roughly a fifth off the
        headline winter endurance at typical derating coefficients — the
        margin the Table II thresholds buy back.
        """
        if load_w <= 0:
            return float("inf")
        return self.usable_energy_j(temperature_c) / load_w / 86400.0
