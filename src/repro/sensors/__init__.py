"""Sensor models for probes and stations.

The subglacial probes carry "an array of sensors chosen to measure changes
in conductivity, orientation and pressure"; the surface stations add air
temperature, an ultrasonic snow-level sensor, and internal temperature and
humidity from the Gumsense board.  Each sensor wraps an environment signal
with gain/offset calibration, measurement noise and ADC quantisation.
"""

from repro.sensors.base import Sensor
from repro.sensors.probe_sensors import (
    ConductivitySensor,
    PressureSensor,
    TiltSensor,
    make_probe_sensor_suite,
)
from repro.sensors.station_sensors import (
    AirTemperatureSensor,
    InternalHumiditySensor,
    InternalTemperatureSensor,
    UltrasonicSnowSensor,
    make_station_sensor_suite,
)

__all__ = [
    "AirTemperatureSensor",
    "ConductivitySensor",
    "InternalHumiditySensor",
    "InternalTemperatureSensor",
    "PressureSensor",
    "Sensor",
    "TiltSensor",
    "UltrasonicSnowSensor",
    "make_probe_sensor_suite",
    "make_station_sensor_suite",
]
