"""Common sensor machinery: calibration, noise, quantisation."""

from __future__ import annotations

from typing import Callable, Optional

from repro.environment.weather import _smooth_noise


class Sensor:
    """A calibrated, noisy, quantised view of one environment signal.

    Parameters
    ----------
    name:
        Channel name recorded with every reading.
    signal:
        Ground-truth callable, ``signal(time) -> float``.
    noise_std:
        Standard-deviation-like amplitude of measurement noise (uniform
        noise of matching variance, deterministic in time and seed).
    resolution:
        ADC quantisation step; readings are rounded to multiples of this.
    gain, offset:
        Linear calibration applied to the true signal.
    clip:
        Optional ``(lo, hi)`` range of the transducer.
    """

    def __init__(
        self,
        name: str,
        signal: Callable[[float], float],
        noise_std: float = 0.0,
        resolution: float = 0.0,
        gain: float = 1.0,
        offset: float = 0.0,
        clip: Optional[tuple] = None,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.signal = signal
        self.noise_std = noise_std
        self.resolution = resolution
        self.gain = gain
        self.offset = offset
        self.clip = clip
        self.seed = seed
        self._noise_stream = f"sensor:{name}"

    def sample(self, time: float) -> float:
        """One measurement of the signal at ``time``."""
        value = self.gain * self.signal(time) + self.offset
        if self.noise_std > 0.0:
            # Uniform noise with std = noise_std: half-width = std * sqrt(3).
            half_width = self.noise_std * 1.7320508
            noise = (2.0 * _smooth_noise(self.seed, self._noise_stream, time) - 1.0)
            value += noise * half_width
        if self.resolution > 0.0:
            value = round(value / self.resolution) * self.resolution
        if self.clip is not None:
            lo, hi = self.clip
            value = min(hi, max(lo, value))
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Sensor {self.name!r}>"
