"""Sensors on the surface stations: weather, snow level, enclosure health."""

from __future__ import annotations

import math
from typing import List

from repro.environment.weather import IcelandWeather, _smooth_noise
from repro.sensors.base import Sensor


class AirTemperatureSensor(Sensor):
    """External air temperature, °C."""

    def __init__(self, weather: IcelandWeather, seed: int = 0) -> None:
        super().__init__(
            name="air_temp_c",
            signal=weather.temperature_c,
            noise_std=0.2,
            resolution=0.1,
            clip=(-60.0, 60.0),
            seed=seed,
        )


class UltrasonicSnowSensor(Sensor):
    """Snow level under the sensor head, metres.

    Mounted on the station frame; reports the distance-derived snow depth
    with ultrasonic noise.  Deep snow burying the station (the event that
    damaged the base station, Section V) shows up as this channel pinning
    near the mounting height.
    """

    #: Height of the sensor head above the summer surface, metres.
    MOUNT_HEIGHT_M = 2.5

    def __init__(self, weather: IcelandWeather, seed: int = 0) -> None:
        super().__init__(
            name="snow_depth_m",
            signal=weather.snow_depth,
            noise_std=0.02,
            resolution=0.01,
            clip=(0.0, self.MOUNT_HEIGHT_M),
            seed=seed,
        )

    def is_buried(self, time: float) -> bool:
        """Whether snow has reached the sensor head."""
        return self.sample(time) >= self.MOUNT_HEIGHT_M - 0.05


class InternalTemperatureSensor(Sensor):
    """Enclosure-internal temperature: damped, offset-warm view of air temp."""

    def __init__(self, weather: IcelandWeather, seed: int = 0) -> None:
        super().__init__(
            name="internal_temp_c",
            signal=lambda t: 0.7 * weather.temperature_c(t) + 3.0,
            noise_std=0.2,
            resolution=0.1,
            seed=seed,
        )


class InternalHumiditySensor(Sensor):
    """Enclosure-internal relative humidity, %.

    Rises in warm wet periods (melt season) — the Gumsense board reports it
    as a station-health data stream (Section II).
    """

    def __init__(self, weather: IcelandWeather, seed: int = 0) -> None:
        self.weather = weather
        super().__init__(
            name="internal_humidity_pct",
            signal=self._humidity,
            noise_std=1.0,
            resolution=0.5,
            clip=(0.0, 100.0),
            seed=seed,
        )

    def _humidity(self, time: float) -> float:
        temp = self.weather.temperature_c(time)
        base = 55.0 + 2.0 * max(0.0, temp)
        texture = 10.0 * (2.0 * _smooth_noise(self.seed, "humidity", time) - 1.0)
        return base + texture


class EnclosureTiltSensor(Sensor):
    """Enclosure pitch or roll, degrees — the paper's §VII suggestion.

    "Examples of possible additional sensors include pitch and roll so
    that the enclosure's movement as the ice melts can be tracked."  The
    enclosure settles as the surrounding surface ablates: tilt creeps in
    proportion to cumulative melt, with wind-rock noise.
    """

    def __init__(self, weather: IcelandWeather, axis: str = "pitch", seed: int = 0) -> None:
        if axis not in ("pitch", "roll"):
            raise ValueError(f"axis must be 'pitch' or 'roll', got {axis!r}")
        self.weather = weather
        self.axis = axis
        self._gain = 4.0 if axis == "pitch" else 2.5
        super().__init__(
            name=f"enclosure_{axis}_deg",
            signal=self._tilt,
            noise_std=0.15,
            resolution=0.1,
            clip=(-45.0, 45.0),
            seed=seed + (1 if axis == "pitch" else 2),
        )

    def _tilt(self, time: float) -> float:
        from repro.environment.seasons import melt_season_factor
        from repro.sim.simtime import DAY

        # Cumulative settling: integrate the melt indicator day by day
        # (cheap closed form: sample daily).
        days = int(time // DAY)
        settled = sum(melt_season_factor((d + 0.5) * DAY) for d in range(0, days, 3)) * 3
        return self._gain * settled / 100.0


def make_station_sensor_suite(
    weather: IcelandWeather, seed: int = 0, with_tilt: bool = False
) -> List[Sensor]:
    """The base-station sensor set: air temp, snow level, internal temp/humidity.

    ``with_tilt`` adds the §VII enclosure pitch/roll channels.
    """
    suite: List[Sensor] = [
        AirTemperatureSensor(weather, seed=seed),
        UltrasonicSnowSensor(weather, seed=seed),
        InternalTemperatureSensor(weather, seed=seed),
        InternalHumiditySensor(weather, seed=seed),
    ]
    if with_tilt:
        suite.append(EnclosureTiltSensor(weather, axis="pitch", seed=seed))
        suite.append(EnclosureTiltSensor(weather, axis="roll", seed=seed))
    return suite
