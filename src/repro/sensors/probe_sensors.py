"""Sensors carried by the subglacial probes: conductivity, tilt, pressure."""

from __future__ import annotations

import math
from typing import List

from repro.environment.glacier import GlacierModel
from repro.environment.weather import _smooth_noise
from repro.sensors.base import Sensor
from repro.sim.simtime import DAY


class ConductivitySensor(Sensor):
    """Electrical conductivity of the basal till/water, in µS.

    This is the Fig 6 channel: a flat winter baseline followed by a steep
    rise when spring melt-water reaches the glacier bed.
    """

    def __init__(self, glacier: GlacierModel, probe_id: int, seed: int = 0) -> None:
        super().__init__(
            name="conductivity_us",
            signal=lambda t: glacier.conductivity_us(t, probe_id=probe_id),
            noise_std=0.05,
            resolution=0.01,
            clip=(0.0, 100.0),
            seed=seed + probe_id,
        )
        self.probe_id = probe_id


class TiltSensor(Sensor):
    """Probe orientation in degrees from vertical.

    Probes tilt slowly as the till deforms, with small jumps at stick-slip
    events (ref [3]: clast behaviour from wireless probe experiments).
    The tilt trajectory is a deterministic random walk derived from the
    glacier's slip history.
    """

    def __init__(self, glacier: GlacierModel, probe_id: int, seed: int = 0) -> None:
        self.glacier = glacier
        self.probe_id = probe_id
        # Cumulative slip-jump count per day, extended lazily.
        self._jump_cache = [0]
        super().__init__(
            name="tilt_deg",
            signal=self._tilt,
            noise_std=0.1,
            resolution=0.1,
            clip=(0.0, 90.0),
            seed=seed + probe_id,
        )

    def _cumulative_jumps(self, day: int) -> int:
        while len(self._jump_cache) <= day:
            previous_day = len(self._jump_cache) - 1
            self._jump_cache.append(
                self._jump_cache[-1] + (1 if self.glacier.slip_occurred(previous_day) else 0)
            )
        return self._jump_cache[day]

    def _tilt(self, time: float) -> float:
        day = max(0, int(time // DAY))
        # Base creep: slow monotone increase, probe-specific rate.
        rate = 0.01 + 0.02 * _smooth_noise(self.seed, f"tiltrate:{self.probe_id}", 0.0)
        tilt = 5.0 + rate * day
        # Stick-slip events each contribute a small jump.
        return tilt + 0.4 * self._cumulative_jumps(day)


class PressureSensor(Sensor):
    """Subglacial water pressure in metres of head (diurnal under melt)."""

    def __init__(self, glacier: GlacierModel, probe_id: int, seed: int = 0) -> None:
        super().__init__(
            name="pressure_m",
            signal=glacier.water_pressure_m,
            noise_std=0.3,
            resolution=0.1,
            clip=(0.0, 200.0),
            seed=seed + probe_id,
        )
        self.probe_id = probe_id


def make_probe_sensor_suite(glacier: GlacierModel, probe_id: int, seed: int = 0) -> List[Sensor]:
    """The paper's probe sensor array: conductivity, orientation, pressure."""
    return [
        ConductivitySensor(glacier, probe_id, seed=seed),
        TiltSensor(glacier, probe_id, seed=seed),
        PressureSensor(glacier, probe_id, seed=seed),
    ]
