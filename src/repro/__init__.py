"""repro — reproduction of "Field deployment of low power high performance nodes".

Martinez, Basford, Ellul, Clarke (ICDCS workshops 2010): the Glacsweb
Gumsense base stations on Vatnajokull.  See :mod:`repro.core` for the
paper's contribution and :class:`repro.core.Deployment` for the primary
entry point; README.md for the architecture overview; DESIGN.md and
EXPERIMENTS.md for the reproduction inventory and results.
"""

__version__ = "1.1.0"
