"""Scale-out sweep execution: chunked warm workers and shared-dir draining.

``repro.fleet.runner`` used to submit one pool future per job and funnel
every cache read/write and rollup fold through the parent process.  Once
runs are milliseconds that parent-side work is pure Amdahl overhead —
the workers idle while the parent pickles snapshots, writes cache
entries, and folds registries one run at a time.  This module inverts
the shape:

- **Chunked dispatch** — jobs ship to workers in batches, amortising the
  pickle/IPC/scheduling cost per chunk.  Chunk size adapts to measured
  run wall time (:class:`ChunkSizer`) and the submit loop keeps a
  bounded in-flight window instead of materialising every future up
  front, so a million-job campaign holds O(window) futures and a kill
  leaves a cleanly resumable cache.
- **Worker-side cache I/O** — :func:`run_chunk` loads and atomically
  stores cache entries inside the worker (the ``os.replace`` layout is
  concurrency-safe), so summaries never round-trip through the parent
  just to reach disk.
- **Partial-rollup shipping** — each worker folds its chunk's metric
  snapshots into a local :class:`~repro.obs.rollup.RollupAggregate` and
  returns one lossless partial (raw Shewchuk partials, see
  ``rollup.to_partial_doc``) plus metric-stripped run records.  The
  parent's fold cost collapses from O(runs) registry folds to O(chunks)
  partial merges, and per-run IPC payloads shrink by an order of
  magnitude.
- **Shared-dir work sharing** — a campaign manifest plus an atomic
  claim-file protocol over a shared directory lets several hosts drain
  one sweep cooperatively and resumably (:func:`drain_shared_dir`).
  Claims are an *optimisation*, not a lock: results are deterministic
  and cache stores are atomic, so the rare double-computed block is
  harmless.

Byte-identical sweep output across ``--jobs``, chunk sizes, backends,
and completion order stays the hard contract; every path funnels through
the same record builder and exact, order-independent rollup folds.
"""

from __future__ import annotations

import itertools
import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
)

from repro.fleet.cache import SweepCache, _canonical

#: Adaptive chunking aims for roughly this much work per chunk: long
#: enough to amortise dispatch, short enough to keep the in-flight
#: window responsive and progress lines honest.
CHUNK_TARGET_S = 0.5
CHUNK_MIN = 1
CHUNK_MAX = 256
#: Shared-dir manifests fix their claim-block size up front so every
#: drainer cuts identical blocks.
DEFAULT_BLOCK_SIZE = 32
#: A claim older than this whose block is still incomplete is presumed
#: abandoned (killed drainer) and may be stolen.
DEFAULT_STALE_CLAIM_S = 300.0

MANIFEST_NAME = "manifest.json"
CLAIMS_DIR = "claims"
CACHE_DIR = "cache"


def _warm_worker() -> None:
    """Pool initializer: pay the simulator import cost once per worker."""
    import repro.core.deployment  # noqa: F401
    import repro.faults  # noqa: F401
    import repro.obs.rollup  # noqa: F401


def run_chunk(chunk: Sequence[Any], cache_root: Optional[str],
              collect_rollup: bool = True) -> Dict[str, Any]:
    """Execute one batch of jobs inside a worker (the chunk entry point).

    For every job: probe the cache, run on a miss, store atomically,
    fold the metrics snapshot into a chunk-local rollup, and keep a
    metric-stripped run record.  Returns one shippable dict::

        {"records": [...],          # stripped run records, job order
         "rollup": {...} | None,    # lossless partial (to_partial_doc)
         "hits": int, "misses": int,
         "wall_s": float,           # worker-side wall time for sizing
         "payload_bytes": int}      # canonical-JSON size of the payload

    ``payload_bytes`` measures what actually rides back over IPC
    (records + partial rollup, canonical JSON) and is deterministic for
    a fixed chunking — the sweep-scale benchmark pins bounds on it.
    """
    import time

    from repro.fleet.runner import _record, run_job
    from repro.obs.rollup import RollupAggregate

    start = time.perf_counter()  # repro-lint: disable=wall-clock
    cache = SweepCache(cache_root) if cache_root is not None else None
    rollup = RollupAggregate() if collect_rollup else None
    records: List[Dict[str, Any]] = []
    hits = misses = 0
    for job in chunk:
        summary = cache.load(job.digest) if cache is not None else None
        if summary is None:
            summary = run_job(job)
            if cache is not None:
                cache.store(job.digest, summary)
            misses += 1
        else:
            hits += 1
        snapshot = summary.pop("metrics", None)
        if snapshot is not None and rollup is not None:
            rollup.fold(
                (job.config_digest, job.fault_plan_json or "", job.seed),
                snapshot)
        records.append(_record(job, summary))
    partial = rollup.to_partial_doc() if rollup is not None else None
    payload = {"records": records, "rollup": partial}
    return {
        "records": records,
        "rollup": partial,
        "hits": hits,
        "misses": misses,
        "wall_s": time.perf_counter() - start,  # repro-lint: disable=wall-clock
        "payload_bytes": len(_canonical(payload)),
    }


class ChunkSizer:
    """Chunk-size policy: fixed when pinned, else adaptive from wall time.

    Adaptive sizing targets :data:`CHUNK_TARGET_S` of measured work per
    chunk: it starts at 1 (cheap calibration probe), keeps an EMA of
    per-run wall seconds from worker reports, and sizes subsequent
    chunks as ``target / per_run`` clamped to ``[CHUNK_MIN, CHUNK_MAX]``.
    Sizing affects only scheduling — never output bytes, which are
    partition-independent by construction.
    """

    def __init__(self, fixed: Optional[int] = None,
                 target_s: float = CHUNK_TARGET_S) -> None:
        if fixed is not None and fixed < 1:
            raise ValueError(f"chunk size must be >= 1, got {fixed}")
        self.fixed = fixed
        self.target_s = target_s
        self._per_run_s: Optional[float] = None

    def size(self) -> int:
        """The size the next chunk should be cut at."""
        if self.fixed is not None:
            return self.fixed
        if self._per_run_s is None:
            return CHUNK_MIN
        if self._per_run_s <= 0.0:
            return CHUNK_MAX
        want = int(self.target_s / self._per_run_s)
        return max(CHUNK_MIN, min(CHUNK_MAX, want))

    def observe(self, runs: int, wall_s: float) -> None:
        """Fold one completed chunk's worker-side wall time into the EMA."""
        if runs <= 0:
            return
        sample = max(0.0, wall_s) / runs
        if self._per_run_s is None:
            self._per_run_s = sample
        else:
            self._per_run_s = 0.5 * self._per_run_s + 0.5 * sample


def iter_chunks(jobs: Iterable[Any], sizer: ChunkSizer) -> Iterator[List[Any]]:
    """Cut a lazy job stream into chunks sized by ``sizer`` at cut time."""
    it = iter(jobs)
    while True:
        chunk = list(itertools.islice(it, sizer.size()))
        if not chunk:
            return
        yield chunk


def run_chunked_pool(
    pending: Iterable[Any],
    *,
    workers: int,
    cache_root: Optional[str],
    absorb: Callable[[Dict[str, Any]], None],
    collect_rollup: bool = True,
    chunk_size: Optional[int] = None,
    window: Optional[int] = None,
    pool_factory: Callable[..., Any] = ProcessPoolExecutor,
) -> None:
    """Drain ``pending`` through warm pool workers in bounded chunks.

    At most ``window`` (default ``2 * workers``) chunk futures exist at
    any moment — the job stream is consumed lazily, so memory is
    O(window x chunk), not O(jobs), and an interrupt abandons only the
    in-flight chunks (everything stored so far is already in the cache).
    ``absorb`` runs in the parent for each completed chunk, in completion
    order; output determinism comes from the merge keys, not arrival.
    """
    sizer = ChunkSizer(chunk_size)
    if window is None:
        window = 2 * workers
    window = max(1, window)
    chunks = iter_chunks(pending, sizer)
    in_flight: Dict[Any, int] = {}
    with pool_factory(max_workers=workers, initializer=_warm_worker) as pool:
        def fill() -> None:
            while len(in_flight) < window:
                chunk = next(chunks, None)
                if chunk is None:
                    return
                future = pool.submit(run_chunk, chunk, cache_root,
                                     collect_rollup)
                in_flight[future] = len(chunk)

        fill()
        while in_flight:
            done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
            for future in done:
                runs = in_flight.pop(future)
                out = future.result()
                sizer.observe(runs, out.get("wall_s", 0.0))
                absorb(out)
            fill()


# ----------------------------------------------------------------------
# Shared-dir backend: manifest + claim files over one directory
# ----------------------------------------------------------------------
def manifest_doc(spec: Any, block_size: int = DEFAULT_BLOCK_SIZE) -> Dict[str, Any]:
    """The canonical manifest document for ``spec``.

    The manifest pins everything a drainer needs to regenerate the exact
    job list — grid, seeds, duration, fault plans, alert rules, the
    claim-block size, and the package version (job digests embed it, so
    mixed-version drainers would simply never see each other's entries;
    refusing up front is kinder).
    """
    return {
        "version": 1,
        "repro_version": _repro_version(),
        "block_size": int(block_size),
        "spec": {
            "grid": list(spec.grid),
            "seeds": [int(s) for s in spec.seeds],
            "days": spec.days,
            "fault_plans": spec.fault_plans,
            "alert_rules": spec.alert_rules,
        },
    }


def _repro_version() -> str:
    from repro import __version__

    return __version__


def ensure_manifest(work_dir: str, spec: Any,
                    block_size: int = DEFAULT_BLOCK_SIZE) -> Dict[str, Any]:
    """Create (or verify) the campaign manifest under ``work_dir``.

    Idempotent: a second invoker with the same spec adopts the existing
    manifest — including its claim-block size, which is fixed at
    campaign creation so every drainer cuts identical blocks.  A
    different spec raises: one work directory hosts exactly one
    campaign.
    """
    os.makedirs(os.path.join(work_dir, CLAIMS_DIR), exist_ok=True)
    os.makedirs(os.path.join(work_dir, CACHE_DIR), exist_ok=True)
    path = os.path.join(work_dir, MANIFEST_NAME)
    doc = manifest_doc(spec, block_size)
    text = _canonical(doc)
    if os.path.exists(path):
        existing = load_manifest(work_dir)
        if _canonical(existing["spec"]) != _canonical(doc["spec"]):
            raise ValueError(
                f"work dir {work_dir!r} already holds a different campaign "
                f"manifest — one work dir hosts one campaign")
        return existing
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(tmp, path)
    return doc


def load_manifest(work_dir: str) -> Dict[str, Any]:
    """Read the campaign manifest; raises on absence or version skew."""
    path = os.path.join(work_dir, MANIFEST_NAME)
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("version") != 1:
        raise ValueError(f"unsupported manifest version {doc.get('version')!r}")
    if doc.get("repro_version") != _repro_version():
        raise ValueError(
            f"manifest was written by repro {doc.get('repro_version')!r}, "
            f"this is {_repro_version()!r} — start a fresh campaign dir")
    return doc


def manifest_spec(doc: Dict[str, Any]) -> Any:
    """Reconstruct the :class:`~repro.fleet.runner.SweepSpec`."""
    from repro.fleet.runner import SweepSpec

    spec = doc["spec"]
    return SweepSpec(grid=list(spec["grid"]), seeds=list(spec["seeds"]),
                     days=spec["days"], fault_plans=spec["fault_plans"],
                     alert_rules=spec["alert_rules"])


class ClaimStore:
    """Atomic claim files: at most one *live* drainer per block.

    A claim is created with ``O_CREAT | O_EXCL`` (atomic on every POSIX
    filesystem, including NFS v3+ for local-dir semantics we rely on) and
    simply left in place when the block completes — completion is judged
    by cache-entry presence, never by claim state, which is what makes a
    kill at any instant resumable.  A claim whose block is still
    incomplete after ``stale_after_s`` is presumed orphaned and stolen
    via an atomic ``os.replace``.  Two stealers racing is safe: both
    recompute the same deterministic block and the cache store is
    atomic, so the only cost is duplicated work.
    """

    def __init__(self, work_dir: str, owner: str,
                 stale_after_s: float = DEFAULT_STALE_CLAIM_S) -> None:
        self.root = os.path.join(work_dir, CLAIMS_DIR)
        self.owner = owner
        self.stale_after_s = stale_after_s

    def _path(self, block: int) -> str:
        return os.path.join(self.root, f"block-{block:08d}.claim")

    def try_claim(self, block: int) -> bool:
        """Claim ``block``; True when this drainer now owns it."""
        os.makedirs(self.root, exist_ok=True)
        path = self._path(block)
        payload = _canonical({"owner": self.owner, "pid": os.getpid()})
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return self._try_steal(path, payload)
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(payload)
        return True

    def _try_steal(self, path: str, payload: str) -> bool:
        import time

        try:
            age = time.time() - os.path.getmtime(path)  # repro-lint: disable=wall-clock
        except OSError:
            # Claim vanished between the O_EXCL race and the stat — the
            # other drainer is live and fast; leave the block to it.
            return False
        if age < self.stale_after_s:
            return False
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(payload)
        os.replace(tmp, path)
        return True


def drain_shared_dir(
    work_dir: str,
    *,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    stale_claim_s: float = DEFAULT_STALE_CLAIM_S,
    poll_s: float = 0.2,
    collect_rollup: bool = True,
    absorb: Optional[Callable[[Dict[str, Any]], None]] = None,
    pool_factory: Callable[..., Any] = ProcessPoolExecutor,
    owner: Optional[str] = None,
) -> List[Any]:
    """Cooperatively drain the campaign under ``work_dir`` to completion.

    Walks the manifest's claim blocks, claims and runs the incomplete
    ones (through a local warm-worker pool when ``workers > 1``), and
    polls blocks held by other drainers until every job's cache entry
    exists.  Safe to run concurrently on any number of hosts sharing the
    directory, and safe to kill and re-run: completed work is judged
    purely by cache presence.

    ``absorb`` (if given) sees each chunk result *this* drainer computed
    or loaded — other drainers' blocks never transit this process.
    Returns the full deterministic job list so the caller can assemble
    the sweep from the shared cache.
    """
    doc = load_manifest(work_dir)
    spec = manifest_spec(doc)
    block_size = int(doc["block_size"])
    jobs = spec.jobs()
    cache_root = os.path.join(work_dir, CACHE_DIR)
    cache = SweepCache(cache_root)
    if owner is None:
        import socket

        owner = f"{socket.gethostname()}:{os.getpid()}"
    claims = ClaimStore(work_dir, owner, stale_after_s=stale_claim_s)
    blocks = [jobs[i:i + block_size] for i in range(0, len(jobs), block_size)]
    done: set = set()
    claimed_by_us: set = set()
    in_flight: Dict[Any, int] = {}
    window = max(1, 2 * workers)
    pool = pool_factory(max_workers=workers, initializer=_warm_worker) \
        if workers > 1 else None

    def block_complete(index: int) -> bool:
        if index in done:
            return True
        if all(cache.contains(job.digest) for job in blocks[index]):
            done.add(index)
            return True
        return False

    def absorb_future(future: Any, index: int) -> None:
        out = future.result()
        if absorb is not None:
            absorb(out)
        done.add(index)

    import time

    try:
        while True:
            progressed = False
            if pool is not None and in_flight:
                finished, _ = wait(set(in_flight), timeout=0.0)
                for future in finished:
                    absorb_future(future, in_flight.pop(future))
                    progressed = True
            for index in range(len(blocks)):
                if pool is not None and len(in_flight) >= window:
                    break
                if index in claimed_by_us or block_complete(index):
                    continue
                if not claims.try_claim(index):
                    continue
                claimed_by_us.add(index)
                if pool is not None:
                    future = pool.submit(run_chunk, blocks[index], cache_root,
                                         collect_rollup)
                    in_flight[future] = index
                else:
                    out = run_chunk(blocks[index], cache_root, collect_rollup)
                    if absorb is not None:
                        absorb(out)
                    done.add(index)
                progressed = True
            if len(done) == len(blocks) and not in_flight:
                break
            if not progressed:
                if in_flight:
                    finished, _ = wait(set(in_flight),
                                       return_when=FIRST_COMPLETED)
                    for future in finished:
                        absorb_future(future, in_flight.pop(future))
                else:
                    # Every incomplete block is claimed by a live drainer
                    # elsewhere; wait for its cache entries to land (or
                    # for the claim to go stale and become stealable).
                    time.sleep(poll_s)
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
    return jobs
