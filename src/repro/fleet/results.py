"""Sweep results: deterministic merge and canonical serialisation.

The contract every consumer (CLI, CI smoke bench, notebooks) relies on:
a sweep's JSON depends only on the grid, the seeds, the duration and the
package version — not on worker count, completion order or cache state.
:func:`merge_runs` enforces the ordering; :func:`sweep_to_json` keeps the
encoding canonical (sorted keys, fixed separators).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import __version__


@dataclass
class SweepResult:
    """A finished sweep: ordered runs plus cache statistics.

    ``runs`` entries are dicts with keys ``config`` (the overrides),
    ``config_digest``, ``seed``, ``days`` and ``result`` (the per-run
    summary).  ``cache_hits``/``cache_misses`` are *not* serialised into
    the JSON — they vary between invocations of the identical sweep.
    ``rollup`` is the streaming campaign aggregate
    (:class:`repro.obs.rollup.RollupAggregate`) the runner folds metric
    snapshots into as futures complete; it has its own canonical JSON
    (``--rollup-out``) and never enters the sweep JSON.

    The executor-accounting fields quantify the scale-out engine and
    back the sweep-scale benchmark's deterministic gates; like the cache
    counters they never enter the sweep JSON.  ``chunks_dispatched``
    counts worker batches; ``parent_folds`` counts parent-side rollup
    fold operations (per-run in the legacy engine, per-chunk partial
    merges in the chunked one); ``ipc_payload_bytes`` totals the
    canonical-JSON size of what actually crossed the worker→parent
    boundary.  ``telemetry`` is a parent-side
    :class:`~repro.obs.metrics.MetricsRegistry` holding the sweep's own
    observability counters (``sweep_chunks_dispatched_total``,
    ``sweep_worker_cache_hits_total{where=worker|parent}``) — about the
    sweep machinery, deliberately separate from the simulated-world
    rollup.
    """

    runs: List[Dict[str, Any]] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    rollup: Optional[Any] = None
    telemetry: Optional[Any] = None
    chunks_dispatched: int = 0
    parent_folds: int = 0
    ipc_payload_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of runs served from cache (0.0 for an empty sweep)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


def merge_runs(runs: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Order run records by ``(config_digest, fault plan, seed)``.

    Completion order out of the process pool is non-deterministic; this
    sort is what makes ``--jobs 1`` and ``--jobs 4`` byte-identical.  The
    fault-plan key (its canonical JSON; "" when absent) slots between
    config and seed so fault-grid sweeps merge as deterministically as
    plain ones — and plain sweeps sort exactly as they always have.

    Exact key duplicates (a cache hit racing a live run of the same job)
    collapse to one record, **last wins** — safe because an identical key
    implies an identical job digest, hence an identical summary; the
    rollup fold relies on the same contract (one fold per key).
    """

    def key(run: Dict[str, Any]):
        plan = run.get("fault_plan")
        plan_key = "" if plan is None else json.dumps(
            plan, sort_keys=True, separators=(",", ":"))
        return (run["config_digest"], plan_key, run["seed"])

    deduped: Dict[Any, Dict[str, Any]] = {}
    for run in runs:
        deduped[key(run)] = run
    return [deduped[k] for k in sorted(deduped)]


def sweep_to_json(result: SweepResult) -> str:
    """Canonical JSON for a sweep (stable across jobs/cache variations)."""
    payload = {
        "version": __version__,
        "runs": merge_runs(result.runs),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), indent=None)
