"""Content-addressed on-disk cache for finished sweep runs.

A run is identified by the sha256 digest of its canonical inputs: the
station-config overrides, the simulated duration, the seed, and the
package version.  Anything that could change the result is part of the
key, so a hit can be trusted blindly; bumping ``repro.__version__``
invalidates every prior entry at once.

Layout: ``<root>/<digest[:2]>/<digest>.json`` (two-level fan-out keeps
directories small on big sweeps).  Writes are atomic — the payload goes
to a ``.tmp`` sibling first and is then ``os.replace``d into place — so
a killed sweep never leaves a truncated entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Mapping, Optional, Tuple

from repro import __version__


def _canonical(payload: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace variance."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_digest(overrides: Mapping[str, Any]) -> str:
    """Digest of one grid point's config overrides (seed-independent).

    This is the sweep's *merge key*: results are ordered by
    ``(config_digest, seed)`` so output never depends on completion order.
    """
    return hashlib.sha256(_canonical(dict(overrides)).encode()).hexdigest()


def job_digest(overrides: Mapping[str, Any], days: float, seed: int,
               version: Optional[str] = None,
               fault_plan: Optional[Mapping[str, Any]] = None,
               alert_rules: Optional[Any] = None) -> str:
    """Digest of one run's full inputs — the cache key.

    ``version`` defaults to the installed ``repro.__version__`` at call
    time, so bumping the package version invalidates every cached run.
    ``fault_plan`` (the plan's dict form) and ``alert_rules`` (the parsed
    rules document) join the key only when present, so plain sweeps keep
    their existing cache entries.
    """
    if version is None:
        version = __version__
    payload = {
        "config": dict(overrides),
        "days": days,
        "seed": seed,
        "version": version,
    }
    if fault_plan is not None:
        payload["fault_plan"] = dict(fault_plan)
    if alert_rules is not None:
        payload["alert_rules"] = alert_rules
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


class SweepCache:
    """Digest-keyed store of run summaries under ``root``."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], f"{digest}.json")

    def load(self, digest: str) -> Optional[Dict[str, Any]]:
        """The cached summary for ``digest``, or None.

        A corrupt entry (truncated by an older non-atomic writer, manual
        editing) reads as a miss and is re-computed, never trusted.
        """
        try:
            with open(self._path(digest), "r", encoding="utf-8") as fh:
                result = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, digest: str, result: Dict[str, Any]) -> None:
        """Atomically persist ``result`` under ``digest``."""
        path = self._path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(_canonical(result))
        os.replace(tmp, path)

    def stats(self) -> Tuple[int, int]:
        """``(hits, misses)`` accumulated by this cache instance."""
        return self.hits, self.misses
