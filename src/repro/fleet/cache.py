"""Content-addressed on-disk cache for finished sweep runs.

A run is identified by the sha256 digest of its canonical inputs: the
station-config overrides, the simulated duration, the seed, and the
package version.  Anything that could change the result is part of the
key, so a hit can be trusted blindly; bumping ``repro.__version__``
invalidates every prior entry at once.

Layout: ``<root>/<digest[:2]>/<digest>.json`` (two-level fan-out keeps
directories small on big sweeps).  Writes are atomic — the payload goes
to a ``.tmp`` sibling first and is then ``os.replace``d into place — so
a killed sweep never leaves a truncated entry behind, and *concurrent*
writers (pool workers, shared-dir drainers on several hosts) can share
one cache without locking: the digest pins the content, so whichever
replace lands last wrote the same bytes.

Entries record the package version that wrote them
(``{"v": <version>, "summary": {...}}``) so :meth:`SweepCache.gc` can
prune superseded generations — version-bumped entries are unreachable
(their digest embeds the old version) but otherwise live on disk
forever.  Files the cache cannot positively identify as its own stale
entries (corrupt JSON, foreign files, legacy unwrapped payloads) are
never touched.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro import __version__

#: Orphaned ``.tmp`` files (a writer killed mid-store) older than this
#: are reclaimed by :meth:`SweepCache.gc`; younger ones may belong to a
#: live writer and are left alone.
TMP_REAP_AGE_S = 3600.0

_HEX = set("0123456789abcdef")


def _canonical(payload: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace variance."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_digest(overrides: Mapping[str, Any]) -> str:
    """Digest of one grid point's config overrides (seed-independent).

    This is the sweep's *merge key*: results are ordered by
    ``(config_digest, seed)`` so output never depends on completion order.
    """
    return hashlib.sha256(_canonical(dict(overrides)).encode()).hexdigest()


def job_digest(overrides: Mapping[str, Any], days: float, seed: int,
               version: Optional[str] = None,
               fault_plan: Optional[Mapping[str, Any]] = None,
               alert_rules: Optional[Any] = None) -> str:
    """Digest of one run's full inputs — the cache key.

    ``version`` defaults to the installed ``repro.__version__`` at call
    time, so bumping the package version invalidates every cached run.
    ``fault_plan`` (the plan's dict form) and ``alert_rules`` (the parsed
    rules document) join the key only when present, so plain sweeps keep
    their existing cache entries.
    """
    if version is None:
        version = __version__
    payload = {
        "config": dict(overrides),
        "days": days,
        "seed": seed,
        "version": version,
    }
    if fault_plan is not None:
        payload["fault_plan"] = dict(fault_plan)
    if alert_rules is not None:
        payload["alert_rules"] = alert_rules
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


@dataclass
class GcReport:
    """What :meth:`SweepCache.gc` removed and what it left alone."""

    removed_entries: int = 0
    removed_tmp: int = 0
    reclaimed_bytes: int = 0
    kept_entries: int = 0
    skipped_foreign: int = 0

    def format(self) -> str:
        return (f"cache-gc: removed {self.removed_entries} stale entr"
                f"{'y' if self.removed_entries == 1 else 'ies'} and "
                f"{self.removed_tmp} orphaned tmp file(s), reclaimed "
                f"{self.reclaimed_bytes} bytes; kept {self.kept_entries} "
                f"current entr{'y' if self.kept_entries == 1 else 'ies'}, "
                f"left {self.skipped_foreign} unrecognised file(s) untouched")


class SweepCache:
    """Digest-keyed store of run summaries under ``root``."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], f"{digest}.json")

    def contains(self, digest: str) -> bool:
        """Whether an entry exists on disk — a stat, no read or parse.

        The chunked runner uses this to partition jobs cheaply in the
        parent; it is advisory (the entry may appear or vanish before the
        actual :meth:`load`), never a correctness gate.
        """
        return os.path.exists(self._path(digest))

    def load(self, digest: str) -> Optional[Dict[str, Any]]:
        """The cached summary for ``digest``, or None.

        A corrupt entry (truncated by an older non-atomic writer, manual
        editing) reads as a miss and is re-computed, never trusted.
        """
        try:
            with open(self._path(digest), "r", encoding="utf-8") as fh:
                result = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        if isinstance(result, dict) and set(result) == {"v", "summary"}:
            return result["summary"]
        return result

    def store(self, digest: str, result: Dict[str, Any]) -> None:
        """Atomically persist ``result`` under ``digest``.

        The envelope records the writing package version so :meth:`gc`
        can recognise superseded generations without reversing digests.
        """
        path = self._path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(_canonical({"v": __version__, "summary": result}))
        os.replace(tmp, path)

    def stats(self) -> Tuple[int, int]:
        """``(hits, misses)`` accumulated by this cache instance."""
        return self.hits, self.misses

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def gc(self) -> GcReport:
        """Prune entries written by other ``repro`` versions.

        Removes only files the cache positively identifies as its own
        stale state: version-enveloped entries whose recorded version
        differs from the running ``repro.__version__``, and orphaned
        atomic-write temporaries older than :data:`TMP_REAP_AGE_S`.
        Everything else — corrupt JSON, foreign files, legacy unwrapped
        payloads, files outside the ``<2-hex>/<64-hex>.json`` layout —
        is left untouched and reported as skipped.
        """
        import time

        report = GcReport()
        if not os.path.isdir(self.root):
            return report
        now = time.time()  # repro-lint: disable=wall-clock
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if len(shard) != 2 or not set(shard) <= _HEX \
                    or not os.path.isdir(shard_dir):
                report.skipped_foreign += 1
                continue
            for name in sorted(os.listdir(shard_dir)):
                path = os.path.join(shard_dir, name)
                if self._is_tmp_name(name):
                    try:
                        age = now - os.path.getmtime(path)
                        if age >= TMP_REAP_AGE_S:
                            size = os.path.getsize(path)
                            os.remove(path)
                            report.removed_tmp += 1
                            report.reclaimed_bytes += size
                        else:
                            report.skipped_foreign += 1
                    except OSError:
                        report.skipped_foreign += 1
                    continue
                if not self._is_entry_name(name):
                    report.skipped_foreign += 1
                    continue
                try:
                    with open(path, "r", encoding="utf-8") as fh:
                        payload = json.load(fh)
                except (OSError, ValueError):
                    report.skipped_foreign += 1
                    continue
                if not (isinstance(payload, dict)
                        and set(payload) == {"v", "summary"}):
                    report.skipped_foreign += 1
                    continue
                if payload["v"] == __version__:
                    report.kept_entries += 1
                    continue
                try:
                    size = os.path.getsize(path)
                    os.remove(path)
                except OSError:
                    report.skipped_foreign += 1
                    continue
                report.removed_entries += 1
                report.reclaimed_bytes += size
        return report

    @staticmethod
    def _is_entry_name(name: str) -> bool:
        return (name.endswith(".json") and len(name) == 69
                and set(name[:64]) <= _HEX)

    @staticmethod
    def _is_tmp_name(name: str) -> bool:
        head, sep, pid = name.rpartition(".tmp.")
        return (bool(sep) and pid.isdigit()
                and SweepCache._is_entry_name(head))
