"""The fleet runner: fan a config×seed grid across worker processes.

Each grid point is an independent deployment — no shared state, no
ordering constraints — so the runner is a straight map over jobs with a
cache lookup in front.  Cache reads and writes happen only in the parent
process (workers stay pure functions), which keeps the cache free of
write races without any locking.

``--jobs 1`` runs in-process; the output is byte-identical either way
because :func:`repro.fleet.results.merge_runs` orders by
``(config_digest, seed)`` before serialisation.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import DeploymentConfig, StationConfig
from repro.core.deployment import Deployment
from repro.fleet.cache import SweepCache, config_digest, job_digest
from repro.fleet.results import SweepResult

#: Override items as a sorted tuple of pairs — hashable, picklable, and
#: canonical (two dicts with the same content produce the same job).
OverrideItems = Tuple[Tuple[str, Any], ...]

_STATION_FIELDS = frozenset(f.name for f in dataclasses.fields(StationConfig))


@dataclasses.dataclass(frozen=True)
class SweepJob:
    """One grid point: config overrides × fault plan × seed × duration.

    ``fault_plan_json`` carries the plan's canonical JSON string (not the
    dict) so the job stays hashable and picklable; ``None`` means no
    faults, which is also the wire format of every pre-fault sweep.
    """

    overrides: OverrideItems
    seed: int
    days: float
    config_digest: str
    digest: str
    fault_plan_json: Optional[str] = None
    #: Canonical JSON of the alert-rules document (None = no rules);
    #: string form for the same hashability/pickling reasons as the plan.
    alert_rules_json: Optional[str] = None


@dataclasses.dataclass
class SweepSpec:
    """A sweep: every config in ``grid`` crossed with every plan and seed.

    ``fault_plans`` is a list of fault-plan dict forms
    (:meth:`repro.faults.FaultPlan.to_dict`); a ``None`` entry is the
    fault-free baseline.  Omitting it entirely keeps the classic
    config × seed sweep, byte-identical to before the faults layer.
    """

    grid: List[Dict[str, Any]]
    seeds: Sequence[int]
    days: float
    fault_plans: Optional[List[Optional[Dict[str, Any]]]] = None
    #: Parsed alert-rules document applied to every run (None = no rules).
    alert_rules: Optional[Any] = None

    def jobs(self) -> List[SweepJob]:
        """The expanded job list, validated, in deterministic order."""
        plans = self.fault_plans if self.fault_plans else [None]
        rules_json = (None if self.alert_rules is None
                      else _canonical_plan(self.alert_rules))
        out: List[SweepJob] = []
        for overrides in self.grid:
            unknown = set(overrides) - _STATION_FIELDS
            if unknown:
                raise ValueError(
                    f"unknown StationConfig field(s) in sweep grid: {sorted(unknown)}"
                )
            items: OverrideItems = tuple(sorted(overrides.items()))
            cfg_digest = config_digest(overrides)
            for plan in plans:
                plan_json = None if plan is None else _canonical_plan(plan)
                for seed in self.seeds:
                    out.append(
                        SweepJob(
                            overrides=items,
                            seed=int(seed),
                            days=self.days,
                            config_digest=cfg_digest,
                            digest=job_digest(overrides, self.days, seed,
                                              fault_plan=plan,
                                              alert_rules=self.alert_rules),
                            fault_plan_json=plan_json,
                            alert_rules_json=rules_json,
                        )
                    )
        return out


def _canonical_plan(plan: Any) -> str:
    """Canonical JSON for a plan/rules document (sorted keys, compact)."""
    import json

    return json.dumps(plan, sort_keys=True, separators=(",", ":"))


def expand_grid(params: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of ``{field: [values...]}`` into override dicts.

    An empty mapping yields the single all-defaults config.  Insertion
    order of ``params`` fixes the nesting order, but the merge key is the
    content digest, so grid ordering never changes sweep output.
    """
    grid: List[Dict[str, Any]] = [{}]
    for name, values in params.items():
        grid = [dict(point, **{name: value}) for point in grid for value in values]
    return grid


def run_job(job: SweepJob) -> Dict[str, Any]:
    """Execute one deployment run and return its summary (worker entry).

    Top-level so it pickles into pool workers; everything it needs rides
    in the :class:`SweepJob`.
    """
    import json

    base = StationConfig()
    for name, value in job.overrides:
        setattr(base, name, value)
    deployment = Deployment(DeploymentConfig(seed=job.seed, base=base))
    engine = None
    if job.fault_plan_json is not None:
        from repro.faults import apply_fault_plan

        engine = apply_fault_plan(deployment, json.loads(job.fault_plan_json))
    alert_engine = None
    if job.alert_rules_json is not None:
        from repro.obs.alerts import AlertEngine

        sim = deployment.sim
        alert_engine = AlertEngine(json.loads(job.alert_rules_json),
                                   metrics=sim.obs.metrics)
        alert_engine.attach(sim.trace)
    deployment.run_days(job.days)
    obs = deployment.sim.obs
    conservation = obs.finalise(deployment.sim)
    if alert_engine is not None:
        alert_engine.finish(deployment.sim.now)
    summary = summarise(deployment, job.days)
    if engine is not None:
        report = engine.finish()
        summary["faults"] = {
            "injected": len(report.outcomes),
            "violations": len(report.violations),
            "resolved": len(report.resolved),
            "pending": len(report.pending),
        }
    if conservation is not None:
        summary["provenance"] = conservation.to_dict()
    if alert_engine is not None:
        summary["alerts"] = alert_engine.summary()
    # The full registry snapshot rides in the summary so cache hits can be
    # folded into the campaign rollup without re-running anything; the
    # parent strips it from run records after folding.
    summary["metrics"] = obs.metrics.snapshot()
    return summary


def summarise(deployment: Deployment, days: float) -> Dict[str, Any]:
    """The per-run summary: deterministic, JSON-serialisable scalars only."""
    sim = deployment.sim
    stations: Dict[str, Any] = {}
    for station in deployment.stations:
        stations[station.name] = {
            "daily_runs": station.daily_runs,
            "effective_state": int(station.effective_state),
            "soc": round(station.bus.battery.soc, 6),
            "delivered_bytes": deployment.server.received_bytes(station=station.name),
            "gprs_cost": round(station.modem.cost_total, 6),
            "watchdog_cuts": station.msp.watchdog_cuts,
            "skipped_comms_days": station.skipped_comms_days,
        }
    return {
        "days": days,
        "events_processed": sim.events_processed,
        "stations": stations,
        "probes_alive": deployment.surviving_probes(),
        "readings_collected": deployment.base.readings_collected,
    }


def _record(job: SweepJob, summary: Dict[str, Any]) -> Dict[str, Any]:
    record = {
        "config": dict(job.overrides),
        "config_digest": job.config_digest,
        "seed": job.seed,
        "days": job.days,
        "result": summary,
    }
    if job.fault_plan_json is not None:
        import json

        record["fault_plan"] = json.loads(job.fault_plan_json)
    return record


def _absorb(result: SweepResult, job: SweepJob,
            summary: Dict[str, Any]) -> None:
    """Fold one finished run into the sweep: rollup first, record second.

    The metrics snapshot is folded into the campaign aggregate and then
    *stripped* from the run record — the runner holds only the aggregate,
    never per-run registries, which is what lets million-run sweeps
    stream.  Folding is keyed by (config digest, fault plan, seed), so
    the aggregate is order-independent regardless of completion order.
    """
    snapshot = summary.pop("metrics", None)
    if snapshot is not None and result.rollup is not None:
        result.rollup.fold(
            (job.config_digest, job.fault_plan_json or "", job.seed),
            snapshot)
    result.runs.append(_record(job, summary))


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
) -> SweepResult:
    """Run every grid point, using ``cache`` and up to ``jobs`` workers.

    Cached points never reach the pool.  With ``jobs == 1`` the misses run
    in-process (no pool, no pickling), which is also the path coverage
    tools and debuggers see.
    """
    from repro.obs.rollup import RollupAggregate

    all_jobs = spec.jobs()
    result = SweepResult(rollup=RollupAggregate())
    pending: List[SweepJob] = []
    for job in all_jobs:
        summary = cache.load(job.digest) if cache is not None else None
        if summary is not None:
            _absorb(result, job, summary)
        else:
            pending.append(job)
    result.cache_misses = len(pending)
    result.cache_hits = len(all_jobs) - len(pending)

    if jobs <= 1 or len(pending) <= 1:
        for job in pending:
            summary = run_job(job)
            if cache is not None:
                cache.store(job.digest, summary)
            _absorb(result, job, summary)
        return result

    with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
        futures = {pool.submit(run_job, job): job for job in pending}
        remaining = set(futures)
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in done:
                job = futures[future]
                summary = future.result()
                if cache is not None:
                    cache.store(job.digest, summary)
                _absorb(result, job, summary)
    return result
