"""The fleet runner: fan a config×seed grid across worker processes.

Each grid point is an independent deployment — no shared state, no
ordering constraints — so the runner is a map over jobs with a cache
lookup in front.  Execution is delegated to a pluggable executor
(:mod:`repro.fleet.executor`):

- ``backend="pool"`` (default) — jobs the parent's cache probe can't
  satisfy ship to warm pool workers in adaptive chunks; workers do their
  own cache loads and atomic stores and return stripped records plus one
  lossless partial rollup per chunk.  Parent-side cache hits are still
  loaded in the parent (a hit is one JSON read — cheaper than a pool
  round-trip), which keeps fully-warm sweeps as fast as ever.
- ``backend="shared-dir"`` — several hosts drain one campaign manifest
  cooperatively through an atomic claim-file protocol over a shared work
  directory; every drainer assembles the identical sweep from the shared
  cache when the campaign completes.

``--jobs 1`` runs in-process; the output is byte-identical across jobs,
chunk sizes, and backends because
:func:`repro.fleet.results.merge_runs` orders by
``(config_digest, fault plan, seed)`` and every rollup fold is exact and
order-independent.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.config import DeploymentConfig, StationConfig
from repro.core.deployment import Deployment
from repro.fleet.cache import SweepCache, _canonical, config_digest, job_digest
from repro.fleet.results import SweepResult

#: Override items as a sorted tuple of pairs — hashable, picklable, and
#: canonical (two dicts with the same content produce the same job).
OverrideItems = Tuple[Tuple[str, Any], ...]

_STATION_FIELDS = frozenset(f.name for f in dataclasses.fields(StationConfig))

#: Deployment-level grid axes: scalar DeploymentConfig fields a sweep may
#: override directly (fleet shape, policies, tenancy...).  The structured
#: fields (station configs, weather, fault plans) have their own channels.
_DEPLOYMENT_FIELDS = frozenset(
    f.name for f in dataclasses.fields(DeploymentConfig)
) - {"seed", "base", "reference", "weather", "glacier", "fault_plan"}


@dataclasses.dataclass(frozen=True)
class SweepJob:
    """One grid point: config overrides × fault plan × seed × duration.

    ``fault_plan_json`` carries the plan's canonical JSON string (not the
    dict) so the job stays hashable and picklable; ``None`` means no
    faults, which is also the wire format of every pre-fault sweep.
    """

    overrides: OverrideItems
    seed: int
    days: float
    config_digest: str
    digest: str
    fault_plan_json: Optional[str] = None
    #: Canonical JSON of the alert-rules document (None = no rules);
    #: string form for the same hashability/pickling reasons as the plan.
    alert_rules_json: Optional[str] = None


@dataclasses.dataclass
class SweepSpec:
    """A sweep: every config in ``grid`` crossed with every plan and seed.

    ``fault_plans`` is a list of fault-plan dict forms
    (:meth:`repro.faults.FaultPlan.to_dict`); a ``None`` entry is the
    fault-free baseline.  Omitting it entirely keeps the classic
    config × seed sweep, byte-identical to before the faults layer.
    """

    grid: List[Dict[str, Any]]
    seeds: Sequence[int]
    days: float
    fault_plans: Optional[List[Optional[Dict[str, Any]]]] = None
    #: Parsed alert-rules document applied to every run (None = no rules).
    alert_rules: Optional[Any] = None

    def total_jobs(self) -> int:
        """Job count without expanding the grid (for progress totals)."""
        plans = len(self.fault_plans) if self.fault_plans else 1
        return len(self.grid) * plans * len(self.seeds)

    def iter_jobs(self) -> Iterator[SweepJob]:
        """Lazily yield validated jobs in deterministic order.

        The streaming form of :meth:`jobs` — the chunked executor
        consumes this directly so a million-run campaign never holds the
        full job list (let alone a future per job) in memory.
        """
        plans = self.fault_plans if self.fault_plans else [None]
        rules_json = (None if self.alert_rules is None
                      else _canonical_plan(self.alert_rules))
        for overrides in self.grid:
            unknown = set(overrides) - _STATION_FIELDS - _DEPLOYMENT_FIELDS
            if unknown:
                raise ValueError(
                    f"unknown StationConfig/DeploymentConfig field(s)"
                    f" in sweep grid: {sorted(unknown)}"
                )
            items: OverrideItems = tuple(sorted(overrides.items()))
            cfg_digest = config_digest(overrides)
            for plan in plans:
                plan_json = None if plan is None else _canonical_plan(plan)
                for seed in self.seeds:
                    yield SweepJob(
                        overrides=items,
                        seed=int(seed),
                        days=self.days,
                        config_digest=cfg_digest,
                        digest=job_digest(overrides, self.days, seed,
                                          fault_plan=plan,
                                          alert_rules=self.alert_rules),
                        fault_plan_json=plan_json,
                        alert_rules_json=rules_json,
                    )

    def jobs(self) -> List[SweepJob]:
        """The expanded job list, validated, in deterministic order."""
        return list(self.iter_jobs())


def _canonical_plan(plan: Any) -> str:
    """Canonical JSON for a plan/rules document (sorted keys, compact)."""
    import json

    return json.dumps(plan, sort_keys=True, separators=(",", ":"))


def expand_grid(params: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of ``{field: [values...]}`` into override dicts.

    An empty mapping yields the single all-defaults config.  Insertion
    order of ``params`` fixes the nesting order, but the merge key is the
    content digest, so grid ordering never changes sweep output.
    """
    grid: List[Dict[str, Any]] = [{}]
    for name, values in params.items():
        grid = [dict(point, **{name: value}) for point in grid for value in values]
    return grid


def run_job(job: SweepJob) -> Dict[str, Any]:
    """Execute one deployment run and return its summary (worker entry).

    Top-level so it pickles into pool workers; everything it needs rides
    in the :class:`SweepJob`.
    """
    import json

    base = StationConfig()
    deployment_overrides: Dict[str, Any] = {}
    for name, value in job.overrides:
        if name in _DEPLOYMENT_FIELDS:
            deployment_overrides[name] = value
        else:
            setattr(base, name, value)
    deployment = Deployment(DeploymentConfig(seed=job.seed, base=base,
                                             **deployment_overrides))
    engine = None
    if job.fault_plan_json is not None:
        from repro.faults import apply_fault_plan

        engine = apply_fault_plan(deployment, json.loads(job.fault_plan_json))
    alert_engine = None
    if job.alert_rules_json is not None:
        from repro.obs.alerts import AlertEngine

        sim = deployment.sim
        alert_engine = AlertEngine(json.loads(job.alert_rules_json),
                                   metrics=sim.obs.metrics)
        alert_engine.attach(sim.trace)
    deployment.run_days(job.days)
    obs = deployment.sim.obs
    conservation = obs.finalise(deployment.sim)
    if alert_engine is not None:
        alert_engine.finish(deployment.sim.now)
    summary = summarise(deployment, job.days)
    if engine is not None:
        report = engine.finish()
        summary["faults"] = {
            "injected": len(report.outcomes),
            "violations": len(report.violations),
            "resolved": len(report.resolved),
            "pending": len(report.pending),
        }
    if conservation is not None:
        summary["provenance"] = conservation.to_dict()
    if alert_engine is not None:
        summary["alerts"] = alert_engine.summary()
    # The full registry snapshot rides in the summary so cache hits can be
    # folded into the campaign rollup without re-running anything; the
    # folding side strips it from run records after folding.
    summary["metrics"] = obs.metrics.snapshot()
    return summary


def summarise(deployment: Deployment, days: float) -> Dict[str, Any]:
    """The per-run summary: deterministic, JSON-serialisable scalars only."""
    sim = deployment.sim
    stations: Dict[str, Any] = {}
    for station in deployment.stations:
        stations[station.name] = {
            "daily_runs": station.daily_runs,
            "effective_state": int(station.effective_state),
            "soc": round(station.bus.battery.soc, 6),
            "delivered_bytes": deployment.server.received_bytes(station=station.name),
            "gprs_cost": round(station.modem.cost_total, 6),
            "watchdog_cuts": station.msp.watchdog_cuts,
            "skipped_comms_days": station.skipped_comms_days,
        }
    summary = {
        "days": days,
        "events_processed": sim.events_processed,
        "stations": stations,
        "probes_alive": deployment.surviving_probes(),
        "readings_collected": deployment.base.readings_collected,
    }
    fleet = getattr(deployment, "fleet", None)
    if fleet is not None:
        shard_bytes = [shard.received_bytes() for shard in fleet.shards]
        mean = sum(shard_bytes) / len(shard_bytes) if shard_bytes else 0.0
        summary["fleet"] = {
            "servers": len(fleet.shards),
            "policy": deployment.config.server_policy,
            "shards": {
                shard.name: {
                    "uploads": len(shard.uploads),
                    "bytes": shard.received_bytes(),
                }
                for shard in fleet.shards
            },
            "max_shard_bytes": max(shard_bytes) if shard_bytes else 0,
            "imbalance": round(max(shard_bytes) / mean, 6) if mean else 0.0,
            "hops": sum(
                getattr(station.server, "hops", 0)
                for station in deployment.stations
            ),
            "retransfers": fleet.retransfers,
        }
    return summary


def _record(job: SweepJob, summary: Dict[str, Any]) -> Dict[str, Any]:
    record = {
        "config": dict(job.overrides),
        "config_digest": job.config_digest,
        "seed": job.seed,
        "days": job.days,
        "result": summary,
    }
    if job.fault_plan_json is not None:
        import json

        record["fault_plan"] = json.loads(job.fault_plan_json)
    return record


def _absorb(result: SweepResult, job: SweepJob,
            summary: Dict[str, Any]) -> None:
    """Fold one finished run into the sweep: rollup first, record second.

    The metrics snapshot is folded into the campaign aggregate and then
    *stripped* from the run record — the runner holds only the aggregate,
    never per-run registries, which is what lets million-run sweeps
    stream.  Folding is keyed by (config digest, fault plan, seed), so
    the aggregate is order-independent regardless of completion order.
    """
    snapshot = summary.pop("metrics", None)
    if snapshot is not None and result.rollup is not None:
        result.rollup.fold(
            (job.config_digest, job.fault_plan_json or "", job.seed),
            snapshot)
        result.parent_folds += 1
    result.runs.append(_record(job, summary))


class SweepProgress:
    """Throttled runs/s reporting through a caller-supplied line sink.

    The runner itself never prints (repro-lint's no-print rule); the CLI
    passes a stderr-writing callable when ``--progress`` is given.  Lines
    are emitted at most every ``interval_s`` and never affect output
    bytes.
    """

    def __init__(self, emit: Callable[[str], None], total: int,
                 interval_s: float = 2.0) -> None:
        import time

        self.emit = emit
        self.total = total
        self.interval_s = interval_s
        self.done = 0
        self._start = time.perf_counter()  # repro-lint: disable=wall-clock
        self._last_emit = self._start

    def advance(self, runs: int) -> None:
        import time

        self.done += runs
        now = time.perf_counter()  # repro-lint: disable=wall-clock
        if now - self._last_emit >= self.interval_s:
            self._last_emit = now
            self.emit(self._line(now))

    def finish(self) -> None:
        import time

        now = time.perf_counter()  # repro-lint: disable=wall-clock
        self.emit(self._line(now))

    def _line(self, now: float) -> str:
        elapsed = max(now - self._start, 1e-9)
        rate = self.done / elapsed
        return (f"sweep: {self.done}/{self.total} runs "
                f"({rate:.0f} runs/s, {elapsed:.1f}s elapsed)")


def _chunk_absorber(result: SweepResult, where: str,
                    progress: Optional[SweepProgress],
                    fold_partials: bool = True,
                    keep_records: bool = True) -> Callable[[Dict[str, Any]], None]:
    """Build the parent-side sink for completed worker chunks."""

    def absorb_chunk(out: Dict[str, Any]) -> None:
        result.chunks_dispatched += 1
        result.ipc_payload_bytes += out.get("payload_bytes", 0)
        result.cache_hits += out.get("hits", 0)
        result.cache_misses += out.get("misses", 0)
        if result.telemetry is not None:
            result.telemetry.inc("sweep_chunks_dispatched_total")
            hits = out.get("hits", 0)
            if hits:
                result.telemetry.inc("sweep_worker_cache_hits_total",
                                     amount=hits, where=where)
        if fold_partials and out.get("rollup") is not None \
                and result.rollup is not None:
            result.rollup.absorb_partial(out["rollup"])
            result.parent_folds += 1
        if keep_records:
            result.runs.extend(out["records"])
        if progress is not None:
            progress.advance(len(out["records"]))

    return absorb_chunk


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
    *,
    backend: str = "pool",
    chunk_size: Optional[int] = None,
    work_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    stale_claim_s: Optional[float] = None,
    pool_factory: Optional[Callable[..., Any]] = None,
) -> SweepResult:
    """Run every grid point, using ``cache`` and up to ``jobs`` workers.

    ``backend="pool"``: cache hits the parent's stat-probe finds are
    loaded parent-side and never reach the pool; misses ship to warm
    workers in bounded chunks (``chunk_size=None`` adapts to measured run
    wall time).  With ``jobs <= 1`` the misses run in-process (no pool,
    no pickling), which is also the path coverage tools and debuggers
    see.

    ``backend="shared-dir"``: ``work_dir`` hosts a campaign manifest, a
    claim directory, and the shared cache; this invocation drains
    whatever blocks it can claim (alongside any other drainers on the
    same directory), waits for the rest, and assembles the full sweep
    from the shared cache — identical bytes on every drainer.
    ``stale_claim_s`` tunes how quickly a killed drainer's claims are
    stolen.

    ``progress`` is an optional line sink (the CLI's ``--progress``)
    for periodic runs/s reporting.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.rollup import RollupAggregate

    result = SweepResult(rollup=RollupAggregate(), telemetry=MetricsRegistry())
    reporter = (SweepProgress(progress, total=spec.total_jobs())
                if progress is not None else None)

    if backend == "shared-dir":
        _run_shared_dir(spec, result, jobs=jobs, work_dir=work_dir,
                        cache=cache, chunk_size=chunk_size,
                        stale_claim_s=stale_claim_s, reporter=reporter,
                        pool_factory=pool_factory)
    elif backend == "pool":
        _run_pool(spec, result, jobs=jobs, cache=cache,
                  chunk_size=chunk_size, reporter=reporter,
                  pool_factory=pool_factory)
    else:
        raise ValueError(f"unknown sweep backend {backend!r} "
                         f"(expected 'pool' or 'shared-dir')")
    if reporter is not None:
        reporter.finish()
    return result


def _run_pool(spec: SweepSpec, result: SweepResult, *, jobs: int,
              cache: Optional[SweepCache], chunk_size: Optional[int],
              reporter: Optional[SweepProgress],
              pool_factory: Optional[Callable[..., Any]]) -> None:
    from repro.fleet import executor

    parent_hits = 0

    def pending() -> Iterator[SweepJob]:
        """Jobs the parent-side cache could not satisfy, lazily.

        Hits are loaded and folded right here — one JSON read, strictly
        cheaper than any pool round-trip, so the chunked engine is never
        slower than the classic runner when the cache is hot.  Workers
        re-probe misses anyway (shared caches can fill underneath us).
        """
        nonlocal parent_hits
        for job in spec.iter_jobs():
            if cache is not None:
                summary = cache.load(job.digest)
                if summary is not None:
                    parent_hits += 1
                    result.cache_hits += 1
                    _absorb(result, job, summary)
                    if reporter is not None:
                        reporter.advance(1)
                    continue
            yield job

    if jobs <= 1:
        for job in pending():
            summary = run_job(job)
            if cache is not None:
                cache.store(job.digest, summary)
            result.cache_misses += 1
            _absorb(result, job, summary)
            if reporter is not None:
                reporter.advance(1)
    else:
        absorb = _chunk_absorber(result, where="worker", progress=reporter)
        kwargs: Dict[str, Any] = {}
        if pool_factory is not None:
            kwargs["pool_factory"] = pool_factory
        executor.run_chunked_pool(
            pending(),
            workers=jobs,
            cache_root=cache.root if cache is not None else None,
            absorb=absorb,
            chunk_size=chunk_size,
            **kwargs,
        )
    # Hit-loop telemetry is batched to one inc — per-hit counter lookups
    # would tax exactly the warm path the parent-side load keeps fast.
    if result.telemetry is not None and parent_hits:
        result.telemetry.inc("sweep_worker_cache_hits_total",
                             amount=parent_hits, where="parent")


def _run_shared_dir(spec: SweepSpec, result: SweepResult, *, jobs: int,
                    work_dir: Optional[str], cache: Optional[SweepCache],
                    chunk_size: Optional[int],
                    stale_claim_s: Optional[float],
                    reporter: Optional[SweepProgress],
                    pool_factory: Optional[Callable[..., Any]]) -> None:
    import os

    from repro.fleet import executor

    if work_dir is None:
        raise ValueError("backend='shared-dir' requires work_dir")
    if cache is not None:
        raise ValueError(
            "backend='shared-dir' manages its own cache under work_dir; "
            "do not pass one")
    executor.ensure_manifest(
        work_dir, spec,
        block_size=chunk_size or executor.DEFAULT_BLOCK_SIZE)
    # Drain-phase chunk results are used for *accounting only* — records
    # and rollup folds come from the deterministic assembly below, so
    # workers skip partial building and the parent drops their records.
    absorb = _chunk_absorber(result, where="worker", progress=reporter,
                             fold_partials=False, keep_records=False)
    kwargs: Dict[str, Any] = {}
    if stale_claim_s is not None:
        kwargs["stale_claim_s"] = stale_claim_s
    if pool_factory is not None:
        kwargs["pool_factory"] = pool_factory
    all_jobs = executor.drain_shared_dir(
        work_dir,
        workers=jobs,
        collect_rollup=False,
        absorb=absorb,
        **kwargs,
    )
    computed = result.cache_misses
    # Assembly: every drainer loads every entry in deterministic job
    # order and folds parent-side — identical sweep and rollup bytes on
    # every host, regardless of who computed what.
    shared_cache = SweepCache(os.path.join(work_dir, executor.CACHE_DIR))
    for job in all_jobs:
        summary = shared_cache.load(job.digest)
        if summary is None:
            raise RuntimeError(
                f"shared-dir drain finished but cache entry {job.digest} "
                f"is missing — was the cache pruned mid-campaign?")
        _absorb(result, job, summary)
    result.cache_misses = computed
    result.cache_hits = len(all_jobs) - computed
    if result.telemetry is not None and result.cache_hits:
        result.telemetry.inc("sweep_worker_cache_hits_total",
                             amount=result.cache_hits, where="parent")


def run_sweep_legacy(
    spec: SweepSpec,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
) -> SweepResult:
    """The pre-executor engine: one future per job, parent-side cache I/O.

    Kept as the baseline arm of ``benchmarks/test_sweep_scale.py`` — the
    submit-everything futures dict, full metric snapshots over IPC, and
    per-run parent folds are exactly the overheads the chunked engine
    removes, and the A/B quantifies them.  Not wired to the CLI;
    ``ipc_payload_bytes``/``parent_folds`` accounting mirrors the new
    engine so the counters compare like for like.
    """
    from repro.obs.rollup import RollupAggregate

    all_jobs = spec.jobs()
    result = SweepResult(rollup=RollupAggregate())
    pending: List[SweepJob] = []
    for job in all_jobs:
        summary = cache.load(job.digest) if cache is not None else None
        if summary is not None:
            _absorb(result, job, summary)
        else:
            pending.append(job)
    result.cache_misses = len(pending)
    result.cache_hits = len(all_jobs) - len(pending)

    if jobs <= 1 or len(pending) <= 1:
        for job in pending:
            summary = run_job(job)
            if cache is not None:
                cache.store(job.digest, summary)
            _absorb(result, job, summary)
        return result

    with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
        futures = {pool.submit(run_job, job): job for job in pending}
        remaining = set(futures)
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in done:
                job = futures[future]
                summary = future.result()
                result.ipc_payload_bytes += len(_canonical(summary))
                if cache is not None:
                    cache.store(job.digest, summary)
                _absorb(result, job, summary)
    return result
