"""repro.fleet — scale-out sweep engine with a content-addressed cache.

The paper's experiments (EXPERIMENTS.md) are sweeps: the same deployment
run across a grid of station configurations and seeds.  Each run is
deterministic given ``(config, seed)``, so its summary is a pure function
of its inputs — which makes three things cheap:

- **parallelism**: runs share nothing, so warm pool workers drain them
  in adaptively-sized chunks behind a bounded in-flight window
  (:func:`repro.fleet.runner.run_sweep`,
  :mod:`repro.fleet.executor`);
- **caching**: a finished run's summary is stored under a digest of
  ``(config overrides, days, seed, package version)`` — atomically, by
  whichever process computed it — and re-used by any later sweep
  containing the same point (:class:`repro.fleet.cache.SweepCache`);
- **work sharing**: because completion is just "the cache entry exists",
  several hosts can drain one campaign cooperatively and resumably over
  a shared work directory (``backend="shared-dir"``).

Merged sweep output is ordered by ``(config digest, fault plan, seed)``
— never by completion order — so a sweep's JSON is byte-identical
regardless of worker count, chunk size, backend, or cache state.

The runner also maintains a streaming campaign rollup: workers fold
their chunk's metric snapshots into a local
:class:`~repro.obs.rollup.RollupAggregate` and ship one lossless partial
per chunk (stripped from run records), so the campaign-level metric view
costs O(metric families), not O(runs) — see ``docs/telemetry_rollup.md``.
"""

from repro.fleet.cache import GcReport, SweepCache, config_digest, job_digest
from repro.fleet.results import SweepResult, merge_runs, sweep_to_json
from repro.fleet.runner import (
    SweepJob,
    SweepSpec,
    expand_grid,
    run_job,
    run_sweep,
    run_sweep_legacy,
)

__all__ = [
    "GcReport",
    "SweepCache",
    "SweepJob",
    "SweepResult",
    "SweepSpec",
    "config_digest",
    "expand_grid",
    "job_digest",
    "merge_runs",
    "run_job",
    "run_sweep",
    "run_sweep_legacy",
    "sweep_to_json",
]
