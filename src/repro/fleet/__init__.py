"""repro.fleet — parallel sweep runner with a content-addressed result cache.

The paper's experiments (EXPERIMENTS.md) are sweeps: the same deployment
run across a grid of station configurations and seeds.  Each run is
deterministic given ``(config, seed)``, so its summary is a pure function
of its inputs — which makes two things cheap:

- **parallelism**: runs share nothing, so a process pool fans them out
  (:func:`repro.fleet.runner.run_sweep`);
- **caching**: a finished run's summary is stored under a digest of
  ``(config overrides, days, seed, package version)`` and re-used by any
  later sweep containing the same point
  (:class:`repro.fleet.cache.SweepCache`).

Merged sweep output is ordered by ``(config digest, seed)`` — never by
completion order — so a sweep's JSON is byte-identical regardless of
worker count or cache state.

The runner also maintains a streaming campaign rollup: each job's final
metrics snapshot is folded into one
:class:`~repro.obs.rollup.RollupAggregate` as futures complete (and
stripped from the run record), so the campaign-level metric view costs
O(metric families), not O(runs) — see ``docs/telemetry_rollup.md``.
"""

from repro.fleet.cache import SweepCache, config_digest, job_digest
from repro.fleet.results import SweepResult, merge_runs, sweep_to_json
from repro.fleet.runner import SweepJob, SweepSpec, expand_grid, run_job, run_sweep

__all__ = [
    "SweepCache",
    "SweepJob",
    "SweepResult",
    "SweepSpec",
    "config_digest",
    "expand_grid",
    "job_digest",
    "merge_runs",
    "run_job",
    "run_sweep",
    "sweep_to_json",
]
