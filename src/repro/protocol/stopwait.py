"""Stop-and-wait ACK baseline: what the NACK-free technique replaced.

Every DATA packet is individually acknowledged; the sender retransmits
until the ACK arrives or the per-reading retry budget is spent.  Under the
probe link's loss rates this pays an ACK's airtime *and* a turnaround for
every reading, and loses a reading whenever either direction fails
repeatedly — the reference point for the E14 protocol ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.comms.probe_radio import ProbeRadioLink
from repro.protocol.framing import ACK_BYTES, DATA_HEADER_BYTES, TaskSnapshot
from repro.sim.events import Interrupt
from repro.sim.kernel import Simulation


@dataclass
class StopWaitResult:
    """Outcome of one stop-and-wait session."""

    task_id: Optional[int] = None
    probe_id: Optional[int] = None
    total: int = 0
    delivered: int = 0
    failed: int = 0
    #: Readings abandoned because ``budget_s`` ran out, not because the
    #: link lost them — kept out of ``failed`` so the E14 ablation doesn't
    #: charge session-budget exhaustion against the protocol's loss rate.
    truncated: int = 0
    complete: bool = False
    duration_s: float = 0.0
    airtime_bytes: int = 0
    interrupted: bool = False
    #: Sequence numbers delivered this session (provenance feed).
    delivered_seqs: List[int] = field(default_factory=list)


class StopWaitFetcher:
    """Base-station driver of the per-packet-ACK baseline protocol."""

    def __init__(
        self,
        sim: Simulation,
        retries_per_reading: int = 5,
    ) -> None:
        self.sim = sim
        self.retries_per_reading = retries_per_reading

    def fetch(self, probe, link: ProbeRadioLink, budget_s: Optional[float] = None):
        """Process: fetch the probe's task with per-reading ACKs.

        The task is marked complete only if every reading was delivered in
        this session (the baseline has no cross-day memory — the property
        the paper's protocol added).
        """
        start = self.sim.now
        deadline = None if budget_s is None else start + budget_s
        result = StopWaitResult()
        try:
            task: Optional[TaskSnapshot] = probe.task()
            if task is None:
                result.complete = True
                return result
            result.task_id = task.task_id
            result.probe_id = (
                task.readings[0].probe_id if task.readings else None)
            result.total = task.total
            for reading in task.readings:
                if deadline is not None and self.sim.now >= deadline:
                    break
                packet_bytes = DATA_HEADER_BYTES + reading.wire_bytes
                delivered = False
                out_of_budget = False
                for _attempt in range(self.retries_per_reading):
                    if deadline is not None and self.sim.now >= deadline:
                        out_of_budget = True
                        break
                    result.airtime_bytes += packet_bytes
                    data_ok = yield self.sim.process(link.transmit(packet_bytes))
                    if not data_ok:
                        # The receiver never saw the DATA packet, so no ACK
                        # is sent: the ACK leg costs neither airtime nor a
                        # loss roll.
                        continue
                    result.airtime_bytes += ACK_BYTES
                    ack_ok = yield self.sim.process(link.transmit(ACK_BYTES))
                    if ack_ok:
                        delivered = True
                        break
                if delivered:
                    result.delivered += 1
                    result.delivered_seqs.append(reading.seq)
                elif out_of_budget:
                    result.truncated += 1
                else:
                    result.failed += 1
            if result.delivered == result.total:
                probe.mark_complete(task.task_id)
                result.complete = True
        except Interrupt:
            result.interrupted = True
        result.duration_s = self.sim.now - start
        self.sim.trace.emit(
            "protocol.stopwait",
            "fetch_done",
            task=result.task_id,
            probe=result.probe_id,
            delivered=result.delivered,
            failed=result.failed,
            truncated=result.truncated,
            complete=result.complete,
            delivered_seqs=list(result.delivered_seqs),
        )
        return result
