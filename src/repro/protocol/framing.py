"""Wire framing for probe communications: readings, packet sizes, tasks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Encoded size of one sensor reading on the wire (id, seq, time, channels).
READING_BYTES = 24
#: Extra header on a DATA packet beyond the reading payload.
DATA_HEADER_BYTES = 6
#: Size of a selective-repeat REQUEST packet.
REQUEST_BYTES = 8
#: Size of an ACK / control packet (task query, summary, complete).
ACK_BYTES = 8


@dataclass(frozen=True)
class Reading:
    """One buffered probe measurement.

    Attributes
    ----------
    probe_id:
        Originating probe.
    seq:
        Sequence number within the probe's task (dense, from 0).
    time:
        Probe-RTC timestamp of the measurement (simulated seconds).
    channels:
        Sensor channel name -> value.
    """

    probe_id: int
    seq: int
    time: float
    channels: Dict[str, float] = field(default_factory=dict)

    @property
    def wire_bytes(self) -> int:
        """Bytes this reading occupies in a DATA packet."""
        return READING_BYTES


@dataclass
class TaskSnapshot:
    """The probe's view of one outstanding data-collection task.

    A task is the unit of completion: the probe keeps its readings until the
    base station confirms it holds all of them ("the task was not marked as
    complete in the probes", Section V).
    """

    task_id: int
    readings: List[Reading]

    @property
    def total(self) -> int:
        """Number of readings in the task."""
        return len(self.readings)

    def by_seq(self, seq: int) -> Reading:
        """Look up one reading by its sequence number."""
        reading = self.readings[seq]
        if reading.seq != seq:  # defensive: readings must be seq-ordered
            raise ValueError(f"task {self.task_id}: readings not dense at {seq}")
        return reading
