"""Probe data-transfer protocols.

Section V describes "a new technique, avoiding acknowledge packets": the
probe streams a whole task of readings without per-packet ACKs; the base
station records which sequence numbers arrived broken or not at all and
later requests the missed readings individually — "unless there were so
many that it would be as efficient to request them all again".  Tasks are
only marked complete in the probe once the base holds every reading, so a
session cut short by the communication window resumes on subsequent days.

- :mod:`repro.protocol.framing` — readings, packets, sizes;
- :mod:`repro.protocol.bulk` — the paper's NACK-free protocol;
- :mod:`repro.protocol.stopwait` — the classic stop-and-wait ACK baseline
  it replaced (for the E14 ablation).
"""

from repro.protocol.bulk import BulkFetcher, FetchResult, FetchStrategy
from repro.protocol.framing import (
    ACK_BYTES,
    DATA_HEADER_BYTES,
    READING_BYTES,
    REQUEST_BYTES,
    Reading,
    TaskSnapshot,
)
from repro.protocol.stopwait import StopWaitFetcher, StopWaitResult

__all__ = [
    "ACK_BYTES",
    "BulkFetcher",
    "DATA_HEADER_BYTES",
    "FetchResult",
    "FetchStrategy",
    "READING_BYTES",
    "REQUEST_BYTES",
    "Reading",
    "StopWaitFetcher",
    "StopWaitResult",
    "TaskSnapshot",
]
