"""The paper's NACK-free bulk transfer protocol (Section V).

Phases of one fetch session, run from the base-station side:

1. **Task query** — a control exchange discovers the probe's outstanding
   task and its reading count.
2. **Stream** — on the first contact (or when too much is missing), the
   probe streams every reading without acknowledgements; the base records
   which sequence numbers arrived.
3. **Selective refetch** — otherwise the base requests each missing
   reading individually.  Requests and responses can themselves be lost;
   each consumes airtime and a retry budget.  This is the phase that "was
   never considered in the testing phase" and buckled under ~400 misses.
4. **Completion** — only when the base holds every reading does it send a
   COMPLETE, letting the probe retire the task.  If the session runs out
   of window first, received sequence numbers persist on the base and the
   fetch resumes on a later day.

The choice between phases 2 and 3 is the refetch-all heuristic: request
individually "unless there were so many that it would be as efficient to
request them all again".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.comms.probe_radio import ProbeRadioLink
from repro.protocol.framing import (
    ACK_BYTES,
    DATA_HEADER_BYTES,
    REQUEST_BYTES,
    Reading,
    TaskSnapshot,
)
from repro.sim.events import Interrupt
from repro.sim.kernel import Simulation


class FetchStrategy(enum.Enum):
    """Which recovery strategy a session used."""

    STREAM = "stream"  # full NACK-free stream
    SELECTIVE = "selective"  # individual refetch of missing readings
    NONE = "none"  # session failed before any data moved


@dataclass
class FetchResult:
    """Outcome of one fetch session against one probe."""

    task_id: Optional[int] = None
    probe_id: Optional[int] = None
    total: int = 0
    received_new: int = 0
    missing_after: int = 0
    complete: bool = False
    strategy: FetchStrategy = FetchStrategy.NONE
    duration_s: float = 0.0
    airtime_bytes: int = 0
    interrupted: bool = False
    #: Sequence numbers newly delivered this session (provenance feed).
    new_seqs: List[int] = field(default_factory=list)
    #: How many previously-missing readings this session re-requested.
    rerequested: int = 0

    @property
    def missing_before(self) -> int:
        """How many readings were outstanding when the session began."""
        return self.missing_after + self.received_new


class BulkFetcher:
    """Base-station side of the NACK-free protocol, with per-probe memory.

    Parameters
    ----------
    sim:
        Kernel.
    refetch_all_fraction:
        If more than this fraction of the task is missing, stream the whole
        task again instead of requesting readings one by one.
    request_retries:
        Attempts per missing reading in the selective phase.
    control_retries:
        Attempts for control exchanges (task query, complete).
    response_timeout_s:
        Wait for a DATA response to a REQUEST before retrying.
    """

    def __init__(
        self,
        sim: Simulation,
        refetch_all_fraction: float = 0.5,
        request_retries: int = 3,
        control_retries: int = 5,
        response_timeout_s: float = 0.5,
        request_batch_size: int = 1,
    ) -> None:
        if not 0.0 < refetch_all_fraction <= 1.0:
            raise ValueError("refetch_all_fraction must be in (0, 1]")
        if request_batch_size < 1:
            raise ValueError("request_batch_size must be >= 1")
        self.sim = sim
        self.refetch_all_fraction = refetch_all_fraction
        self.request_retries = request_retries
        self.control_retries = control_retries
        self.response_timeout_s = response_timeout_s
        #: Missing seqs per REQUEST packet.  1 is the deployed behaviour
        #: (the one that buckled at ~400 misses); larger batches amortise
        #: the request overhead — one of the "different strategies for
        #: retrieving data" the team could push remotely (Section V).
        self.request_batch_size = request_batch_size
        #: (probe_id, task_id) -> set of received seqs; survives across days.
        self.received: Dict[Tuple[int, int], Set[int]] = {}
        #: (probe_id, task_id) -> {seq: Reading} actually held.
        self.store: Dict[Tuple[int, int], Dict[int, Reading]] = {}

    # ------------------------------------------------------------------
    # Control exchanges
    # ------------------------------------------------------------------
    def _control_exchange(self, link: ProbeRadioLink, result: FetchResult):
        """One round-trip control packet pair; returns True on success."""
        for _attempt in range(self.control_retries):
            result.airtime_bytes += 2 * ACK_BYTES
            outbound = yield self.sim.process(link.transmit(ACK_BYTES))
            if not outbound:
                continue
            inbound = yield self.sim.process(link.transmit(ACK_BYTES))
            if inbound:
                return True
        return False

    # ------------------------------------------------------------------
    # The session
    # ------------------------------------------------------------------
    def fetch(self, probe, link: ProbeRadioLink, budget_s: Optional[float] = None):
        """Process: run one fetch session.  Returns a :class:`FetchResult`.

        ``probe`` is any object with ``task() -> Optional[TaskSnapshot]``
        and ``mark_complete(task_id)``.  A watchdog
        :class:`~repro.sim.events.Interrupt` (or ``budget_s`` expiring)
        ends the session with partial progress preserved.
        """
        start = self.sim.now
        deadline = None if budget_s is None else start + budget_s
        result = FetchResult()
        try:
            yield from self._fetch_body(probe, link, result, deadline)
        except Interrupt:
            result.interrupted = True
        result.duration_s = self.sim.now - start
        self.sim.trace.emit(
            "protocol.bulk",
            "fetch_done",
            task=result.task_id,
            probe=result.probe_id,
            strategy=result.strategy.value,
            received_new=result.received_new,
            missing_after=result.missing_after,
            complete=result.complete,
            new_seqs=list(result.new_seqs),
            rerequested=result.rerequested,
        )
        return result

    def _over_budget(self, deadline: Optional[float]) -> bool:
        return deadline is not None and self.sim.now >= deadline

    def _fetch_body(self, probe, link, result: FetchResult, deadline):
        # Phase 1: discover the task.
        ok = yield from self._control_exchange(link, result)
        if not ok:
            return
        task: Optional[TaskSnapshot] = probe.task()
        if task is None:
            result.complete = True
            return
        key = (task.readings[0].probe_id if task.readings else -1, task.task_id)
        result.task_id = task.task_id
        result.probe_id = key[0]
        result.total = task.total
        received = self.received.setdefault(key, set())
        held = self.store.setdefault(key, {})
        missing = [seq for seq in range(task.total) if seq not in received]

        # Phase 2/3: choose a strategy.
        if missing:
            first_contact = len(received) == 0
            if first_contact or len(missing) >= self.refetch_all_fraction * task.total:
                result.strategy = FetchStrategy.STREAM
                yield from self._stream_phase(task, link, received, held, result, deadline)
            else:
                result.strategy = FetchStrategy.SELECTIVE
                yield from self._selective_phase(task, link, received, held, result, deadline)
        missing_now = task.total - len(received)
        result.missing_after = missing_now

        # Phase 4: completion.
        if missing_now == 0 and not self._over_budget(deadline):
            ok = yield from self._control_exchange(link, result)
            if ok:
                probe.mark_complete(task.task_id)
                result.complete = True

    #: Max packets per :meth:`ProbeRadioLink.transmit_sequence` burst in the
    #: stream phase.  Large enough that a 3000-reading first contact costs
    #: ~12 kernel events instead of 3000; small enough that a fault window
    #: swapping ``loss_fn`` mid-stream goes stale for at most a burst
    #: (~17 s of airtime), and budget checks stay packet-accurate because
    #: the link applies the deadline per packet *inside* the burst.
    STREAM_BURST = 256

    def _stream_phase(self, task, link, received, held, result, deadline):
        """The NACK-free stream: every reading sent once, no per-packet ACK.

        Readings go out in :attr:`STREAM_BURST` groups through
        :meth:`~repro.comms.probe_radio.ProbeRadioLink.transmit_sequence`;
        per-packet outcomes (and the per-packet deadline cut) are bitwise
        identical to the old transmit-per-reading loop in both link modes.
        """
        readings = task.readings
        packet_bytes = DATA_HEADER_BYTES + readings[0].wire_bytes if readings else 0
        index = 0
        while index < len(readings):
            if self._over_budget(deadline):
                return
            burst = readings[index:index + self.STREAM_BURST]
            outcomes = yield self.sim.process(
                link.transmit_sequence(packet_bytes, len(burst), deadline)
            )
            result.airtime_bytes += packet_bytes * len(outcomes)
            for reading, outcome in zip(burst, outcomes):
                if outcome.ok and reading.seq not in received:
                    received.add(reading.seq)
                    held[reading.seq] = reading
                    result.received_new += 1
                    result.new_seqs.append(reading.seq)
            if len(outcomes) < len(burst):
                return  # deadline expired mid-burst; progress is recorded
            index += len(burst)

    def _selective_phase(self, task, link, received, held, result, deadline):
        """Refetch of recorded-missing readings, in request batches.

        With ``request_batch_size == 1`` this is the deployed per-reading
        behaviour; larger batches send one REQUEST naming up to N seqs and
        the probe streams those N readings back (each can still be lost
        individually — leftovers go back on the missing list).
        """
        missing = [seq for seq in range(task.total) if seq not in received]
        result.rerequested = len(missing)
        batch_size = self.request_batch_size
        pending = list(missing)
        while pending:
            if self._over_budget(deadline):
                return
            batch, pending = pending[:batch_size], pending[batch_size:]
            remaining = list(batch)
            for _attempt in range(self.request_retries):
                if self._over_budget(deadline) or not remaining:
                    break
                request_bytes = REQUEST_BYTES + 2 * (len(remaining) - 1)
                result.airtime_bytes += request_bytes
                request_ok = yield self.sim.process(link.transmit(request_bytes))
                if not request_ok:
                    # The probe never heard us; wait out the response window.
                    yield self.sim.timeout(self.response_timeout_s)
                    continue
                still_missing = []
                for seq in remaining:
                    if self._over_budget(deadline):
                        return  # progress so far is already recorded
                    reading = task.by_seq(seq)
                    packet_bytes = DATA_HEADER_BYTES + reading.wire_bytes
                    result.airtime_bytes += packet_bytes
                    delivered = yield self.sim.process(link.transmit(packet_bytes))
                    if delivered:
                        received.add(seq)
                        held[seq] = reading
                        result.received_new += 1
                        result.new_seqs.append(seq)
                    else:
                        still_missing.append(seq)
                remaining = still_missing

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def holdings(self, probe_id: int, task_id: int) -> Dict[int, Reading]:
        """The readings actually held for one (probe, task)."""
        return dict(self.store.get((probe_id, task_id), {}))
