"""Analysis helpers: time series, dip detection, reports, ASCII plots.

Post-processing used by the examples and the benchmark harness to turn
simulation traces into the series and tables the paper's figures show.
"""

from repro.analysis.ascii_plot import ascii_series
from repro.analysis.export import (
    archive_snapshot_json,
    multi_series_to_csv,
    series_to_csv,
    series_to_json,
)
from repro.analysis.report import format_table
from repro.analysis.timeseries import (
    daily_extremes,
    detect_dips,
    dip_intervals,
    moving_average,
    resample_mean,
    time_of_daily_max,
)

__all__ = [
    "archive_snapshot_json",
    "ascii_series",
    "daily_extremes",
    "detect_dips",
    "dip_intervals",
    "format_table",
    "moving_average",
    "multi_series_to_csv",
    "resample_mean",
    "series_to_csv",
    "series_to_json",
    "time_of_daily_max",
]
