"""Plain-text tables for bench output (the rows the paper's tables print)."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table.

    Floats print with 3 significant decimals; ``None`` prints as ``-``.
    """
    def cell(value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
