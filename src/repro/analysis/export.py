"""Data export: CSV and JSON renderings of archive series.

The project's downstream consumers (glaciologists, the paper's co-authors)
work from flat files; these helpers turn archive/series data into portable
text without any I/O of their own — callers decide where bytes go.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple


def series_to_csv(
    series: Sequence[Tuple[float, float]],
    value_name: str = "value",
    time_name: str = "time_s",
) -> str:
    """Render a (time, value) series as CSV text with a header row."""
    out = io.StringIO()
    out.write(f"{time_name},{value_name}\r\n")
    for time, value in series:
        out.write(f"{time!r},{value!r}\r\n".replace("'", ""))
    return out.getvalue()


def multi_series_to_csv(
    series_by_name: Dict[Any, Sequence[Tuple[float, float]]],
    time_name: str = "time_s",
) -> str:
    """Merge several (time, value) series into one wide CSV.

    Rows are the union of all timestamps; absent values render empty.
    """
    names = sorted(series_by_name, key=str)
    by_time: Dict[float, Dict[Any, float]] = {}
    for name in names:
        for time, value in series_by_name[name]:
            by_time.setdefault(time, {})[name] = value
    out = io.StringIO()
    out.write(",".join([time_name] + [str(n) for n in names]) + "\r\n")
    for time in sorted(by_time):
        row = [repr(time)]
        for name in names:
            value = by_time[time].get(name)
            row.append("" if value is None else repr(value))
        out.write(",".join(row) + "\r\n")
    return out.getvalue()


def series_to_json(
    series: Sequence[Tuple[float, float]],
    value_name: str = "value",
    metadata: Optional[Dict[str, Any]] = None,
) -> str:
    """Render a series as a JSON document with optional metadata."""
    document = {
        "metadata": metadata or {},
        "columns": ["time_s", value_name],
        "rows": [[time, value] for time, value in series],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def archive_snapshot_json(archive, stations: Sequence[str] = ("base", "reference")) -> str:
    """A one-call JSON dump of the archive's main products."""
    snapshot: Dict[str, Any] = {
        "differential_fraction": archive.differential_fraction(),
        "daily_velocity_m_per_day": archive.daily_velocity(),
        "stick_slip_days": archive.stick_slip_days(),
        "stations": {},
        "probes": {
            str(pid): len(values)
            for pid, values in archive.probe_series("conductivity_us").items()
        },
    }
    for station in stations:
        snapshot["stations"][station] = {
            "battery_daily_minima": archive.battery_daily_minima(station),
            "battery_declining": archive.battery_declining(station),
            "snow_burial_risk": archive.snow_burial_risk(station),
        }
    return json.dumps(snapshot, indent=2, sort_keys=True)
