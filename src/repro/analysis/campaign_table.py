"""Campaign results tables, generated straight from rollup JSON.

The offline results-table workflow (cf. the slp result tables in
PAPERS.md): a sweep writes its streaming metric rollup with
``--rollup-out``, shards from separate invocations merge with
``repro-sim rollup``, and this module renders the merged document as the
plain-text tables a campaign write-up starts from — no re-simulation, no
per-run files, just the aggregate.

The input is the canonical rollup document
(:meth:`repro.obs.rollup.RollupAggregate.to_doc`); rendering preserves
its ordering, so the table is as byte-stable as the rollup itself.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.analysis.report import format_table


def _label_text(labels: Mapping[str, str]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"


def _fmt(value: float) -> str:
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return f"{number:.6g}"


def campaign_table(doc: Mapping[str, object]) -> str:
    """Render one merged rollup document as the campaign results tables."""
    version = doc.get("version")
    if version != 1:
        raise ValueError(f"unsupported rollup version {version!r}")
    counters: List[Tuple[str, str, str]] = []
    gauges: List[Tuple[str, str, str]] = []
    histograms: List[Tuple[str, str, int, str]] = []
    for entry in doc["metrics"]:  # type: ignore[index]
        name = entry["name"]
        labels = _label_text(entry["labels"])
        if entry["kind"] == "counter":
            counters.append((name, labels, _fmt(entry["value"])))
        elif entry["kind"] == "gauge":
            gauges.append((name, labels, _fmt(entry["value"])))
        else:
            count = int(entry["count"])
            mean = float(entry["sum"]) / count if count else 0.0
            histograms.append((name, labels, count, _fmt(mean)))

    runs = doc.get("runs", 0)
    sections = [f"Campaign rollup: {runs} run(s), "
                f"{len(counters) + len(gauges) + len(histograms)} metric(s)"]
    if counters:
        sections.append(format_table(
            ["Counter", "Labels", "Total"], counters,
            title="Counters (summed across runs)"))
    if histograms:
        sections.append(format_table(
            ["Histogram", "Labels", "n", "Mean"], histograms,
            title="Histograms (merged bucket-wise)"))
    if gauges:
        sections.append(format_table(
            ["Gauge", "Labels", "Value"], gauges,
            title="Gauges (last by deterministic run key)"))
    return "\n\n".join(sections) + "\n"


def conservation_summary(doc: Mapping[str, object]) -> Dict[str, float]:
    """Provenance conservation gauges/counters pulled out of a rollup.

    Returns a name -> value mapping for the ``provenance_*`` families
    (empty when the sweep ran without provenance) — the hook the CI
    telemetry smoke greps through.
    """
    out: Dict[str, float] = {}
    for entry in doc["metrics"]:  # type: ignore[index]
        name = entry["name"]
        if name.startswith("provenance_") and "value" in entry:
            labels = _label_text(entry["labels"])
            key = name if labels == "-" else f"{name}{{{labels}}}"
            out[key] = float(entry["value"])
    return out
