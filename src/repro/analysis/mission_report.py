"""The mission report: one document summarising a deployment run.

What the Glacsweb team would want on one page after N simulated days:
station status, power history, communication economics, probe fleet
health, science products, and notable incidents — all pulled from the
deployment object and the Southampton archive.
"""

from __future__ import annotations

from typing import List

from repro.analysis.report import format_table
from repro.analysis.science import (
    diurnal_amplitude,
    diurnal_velocity_profile,
    velocity_pressure_correlation,
)
from repro.server.archive import ScienceArchive
from repro.sim.simtime import DAY


def _station_section(deployment) -> str:
    rows = []
    for station in deployment.stations:
        station.bus.sync()
        rows.append(
            (
                station.name,
                station.daily_runs,
                int(station.effective_state),
                round(station.bus.battery.soc, 2),
                round(station.gumstix.total_on_time_s / 3600.0, 1),
                station.gumstix.unclean_shutdowns,
                round(station.modem.cost_total, 2),
            )
        )
    return format_table(
        ["Station", "Runs", "State", "SoC", "Gumstix h", "Hard cuts", "GPRS cost"],
        rows,
        title="Stations",
    )


def _power_section(deployment) -> str:
    rows = []
    for station in deployment.stations:
        station.bus.sync()
        per_load = station.bus.loads.energy_report_wh()
        top = sorted(per_load.items(), key=lambda kv: -kv[1])[:3]
        rows.append(
            (
                station.name,
                round(sum(per_load.values()), 1),
                ", ".join(f"{name.split('.')[-1]}={wh:.1f}" for name, wh in top),
            )
        )
    return format_table(
        ["Station", "Total load (Wh)", "Top consumers (Wh)"], rows, title="Power",
    )


def _comms_section(deployment) -> str:
    server = deployment.server
    rows = []
    for station in deployment.stations:
        rows.append(
            (
                station.name,
                round(server.received_bytes(station=station.name) / 1e6, 2),
                station.modem.connect_failures,
                station.modem.drops,
            )
        )
    return format_table(
        ["Station", "Delivered (MB)", "Connect fails", "Mid-session drops"],
        rows,
        title="Communications",
    )


def _fleet_section(deployment) -> str:
    fleet = deployment.fleet
    rows = []
    shard_bytes = []
    for shard in fleet.shards:
        nbytes = shard.received_bytes()
        shard_bytes.append(nbytes)
        rows.append(
            (
                shard.name,
                len(shard.uploads),
                round(nbytes / 1e6, 2),
                shard.state_uploads,
                shard.retransfers,
            )
        )
    table = format_table(
        ["Shard", "Uploads", "Received (MB)", "State syncs", "Retransfers"],
        rows,
        title="Server fleet",
    )
    mean = sum(shard_bytes) / len(shard_bytes) if shard_bytes else 0.0
    hops = sum(getattr(s.server, "hops", 0) for s in deployment.stations)
    extra = (
        f"\nPolicy: {deployment.config.server_policy}; "
        f"load imbalance (max/mean bytes): "
        f"{(max(shard_bytes) / mean) if mean else 0.0:.3f}; "
        f"station hops: {hops}"
    )
    return table + extra


def _probe_section(deployment) -> str:
    rows = []
    for probe in deployment.probes:
        rows.append(
            (
                probe.probe_id,
                "alive" if probe.is_alive else "dead",
                probe.tasks_completed,
                probe.buffered_count,
                round(abs(probe.clock_error_s()), 2),
            )
        )
    extra = (
        f"\nWired probe: {'ok' if deployment.wired_probe.is_alive else 'FAILED'}; "
        f"readings collected: {deployment.base.readings_collected}"
    )
    return format_table(
        ["Probe", "Status", "Tasks done", "Buffered", "Clock err (s)"],
        rows,
        title="Probe fleet",
    ) + extra


def _science_section(deployment) -> str:
    archive = ScienceArchive(deployment.server)
    lines = [f"Differential dGPS fraction: {archive.differential_fraction():.0%}"]
    velocities = archive.daily_velocity()
    if velocities:
        mean_v = sum(v for _d, v in velocities) / len(velocities)
        lines.append(f"Mean ice velocity: {mean_v:.3f} m/day over {len(velocities)} days")
        slips = archive.stick_slip_days()
        lines.append(f"Stick-slip candidate days: {slips if slips else 'none'}")
    solutions = [s for s in archive.solutions() if s.differential]
    profile = diurnal_velocity_profile(solutions)
    if profile and len(profile) >= 6:
        lines.append(f"Diurnal velocity amplitude: {diurnal_amplitude(profile):.3f} m/day")
    pressure = [
        sample
        for series in archive.probe_series("pressure_m").values()
        for sample in series
    ]
    if pressure and velocities:
        r, days = velocity_pressure_correlation(velocities, pressure)
        lines.append(f"Velocity-pressure correlation: r={r:.2f} over {days} days")
    return "Science\n" + "\n".join(f"  {line}" for line in lines)


def _observability_section(deployment) -> str:
    obs = deployment.sim.obs
    obs.collect_kernel(deployment.sim)
    lines: List[str] = []

    counters = [
        m for m in obs.metrics.metrics()
        if obs.metrics.kind_of(m.name) == "counter" and m.value > 0
    ]
    top = sorted(counters, key=lambda m: (-m.value, m.sort_key()))[:6]
    if top:
        lines.append("Top counters:")
        for metric in top:
            labels = ",".join(f"{k}={v}" for k, v in metric.labels)
            suffix = f"{{{labels}}}" if labels else ""
            lines.append(f"  {metric.name}{suffix} = {metric.value:g}")

    histograms = [
        m for m in obs.metrics.metrics()
        if obs.metrics.kind_of(m.name) == "histogram" and m.count > 0
    ]
    if histograms:
        lines.append("Histograms:")
        for metric in histograms:
            labels = ",".join(f"{k}={v}" for k, v in metric.labels)
            suffix = f"{{{labels}}}" if labels else ""
            lines.append(
                f"  {metric.name}{suffix}: n={metric.count} mean={metric.mean():g}"
            )

    totals = obs.spans.totals_by_name()
    if totals:
        lines.append("Span totals (sim-time):")
        busiest = sorted(totals.items(), key=lambda kv: (-kv[1][1], kv[0]))[:6]
        for name, (count, seconds) in busiest:
            lines.append(f"  {name}: {count}x, {seconds / 3600.0:.2f} h")

    if not lines:
        lines = ["no metrics recorded"]
    return "Observability\n" + "\n".join(f"  {line}" for line in lines)


def _provenance_section(deployment) -> str:
    obs = deployment.sim.obs
    if obs.provenance is None:
        return "Data provenance\n  disabled"
    report = obs.provenance.finish(deployment.sim.now)
    return "Data provenance\n" + "\n".join(
        f"  {line}" for line in report.format().splitlines())


def _alerts_section(deployment) -> str:
    engine = deployment.alert_engine
    engine.finish(deployment.sim.now, metrics=deployment.sim.obs.metrics)
    return "Alerts\n" + "\n".join(
        f"  {line}" for line in engine.format().splitlines())


def _incidents_section(deployment) -> str:
    trace = deployment.sim.trace
    incidents: List[str] = []
    for kind, label in (
        ("brownout", "battery brown-out"),
        ("watchdog_cut", "watchdog power cut"),
        ("rtc_untrusted", "RTC distrust / recovery"),
        ("antenna_damaged", "antenna damaged"),
        ("probe_comms_impossible", "probe comms blocked (wired probe)"),
        ("oversized_file", "oversized file flagged"),
        ("cf_corrupted_skipping_upload", "CF card corruption"),
        ("priority_comms", "priority upload (state 0)"),
    ):
        records = trace.select(kind=kind)
        if records:
            days = sorted({int(r.time // DAY) for r in records})
            shown = ", ".join(str(d) for d in days[:8]) + ("..." if len(days) > 8 else "")
            incidents.append(f"  {label}: {len(records)}x (days {shown})")
    if not incidents:
        incidents = ["  none"]
    return "Incidents\n" + "\n".join(incidents)


def mission_report(deployment) -> str:
    """Render the full plain-text report for a deployment."""
    elapsed_days = deployment.sim.now / DAY
    header = (
        f"GLACSWEB DEPLOYMENT REPORT — {deployment.sim.utcnow():%d %b %Y} "
        f"(day {elapsed_days:.0f}, seed {deployment.config.seed})"
    )
    sections = [
        header + "\n" + "=" * len(header),
        _station_section(deployment),
        _power_section(deployment),
        _comms_section(deployment),
    ]
    if getattr(deployment, "fleet", None) is not None:
        sections.append(_fleet_section(deployment))
    sections += [
        _probe_section(deployment),
        _science_section(deployment),
        _observability_section(deployment),
        _provenance_section(deployment),
    ]
    if getattr(deployment, "alert_engine", None) is not None:
        sections.append(_alerts_section(deployment))
    sections.append(_incidents_section(deployment))
    return "\n\n".join(sections)
