"""Time-series utilities for (time, value) samples.

All functions take plain ``[(time_s, value), ...]`` lists — the format the
trace helpers return — keeping the analysis layer decoupled from the
simulation objects.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.sim.simtime import DAY, fraction_of_day

Series = Sequence[Tuple[float, float]]


def resample_mean(series: Series, bucket_s: float) -> List[Tuple[float, float]]:
    """Mean value per fixed time bucket; buckets centred on their midpoint."""
    if bucket_s <= 0:
        raise ValueError("bucket_s must be > 0")
    buckets: Dict[int, List[float]] = {}
    for time, value in series:
        buckets.setdefault(int(time // bucket_s), []).append(value)
    return [
        ((index + 0.5) * bucket_s, sum(values) / len(values))
        for index, values in sorted(buckets.items())
    ]


def moving_average(series: Series, window: int) -> List[Tuple[float, float]]:
    """Trailing moving average over ``window`` samples."""
    if window <= 0:
        raise ValueError("window must be > 0")
    out: List[Tuple[float, float]] = []
    values: List[float] = []
    for time, value in series:
        values.append(value)
        if len(values) > window:
            values.pop(0)
        out.append((time, sum(values) / len(values)))
    return out


def daily_extremes(series: Series) -> List[Tuple[int, float, float]]:
    """(day_index, min, max) per simulated day."""
    days: Dict[int, List[float]] = {}
    for time, value in series:
        days.setdefault(int(time // DAY), []).append(value)
    return [(day, min(vals), max(vals)) for day, vals in sorted(days.items())]


def time_of_daily_max(series: Series) -> List[Tuple[int, float]]:
    """(day_index, hour_of_day_of_maximum) per day.

    Fig 5's diurnal structure: battery voltage peaks near midday.
    """
    days: Dict[int, Tuple[float, float]] = {}
    for time, value in series:
        day = int(time // DAY)
        if day not in days or value > days[day][1]:
            days[day] = (time, value)
    return [(day, fraction_of_day(t) * 24.0) for day, (t, _v) in sorted(days.items())]


def detect_dips(series: Series, depth: float, baseline_window: int = 5) -> List[float]:
    """Times of local dips at least ``depth`` below the local baseline.

    Used to find the Fig 5 voltage dips the duty-cycled dGPS causes.  A dip
    is a sample more than ``depth`` below the trailing-average baseline,
    collapsed so consecutive dip samples count once.
    """
    baseline = moving_average(series, baseline_window)
    dips: List[float] = []
    in_dip = False
    for (time, value), (_bt, base) in zip(series, baseline):
        if value < base - depth:
            if not in_dip:
                dips.append(time)
                in_dip = True
        else:
            in_dip = False
    return dips


def dip_intervals(dip_times: Sequence[float]) -> List[float]:
    """Gaps between consecutive dips, in hours."""
    return [(b - a) / 3600.0 for a, b in zip(dip_times, dip_times[1:])]
