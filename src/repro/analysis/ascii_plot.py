"""Tiny dependency-free ASCII charts for the example scripts."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def ascii_series(
    series: Sequence[Tuple[float, float]],
    width: int = 72,
    height: int = 12,
    label: str = "",
) -> str:
    """Render (time, value) samples as an ASCII scatter/line chart.

    The x axis spans the series' time range, the y axis its value range;
    each column shows the mean of the samples falling in it.
    """
    if not series:
        return f"{label}: (no data)"
    times = [t for t, _v in series]
    values = [v for _t, v in series]
    t_lo, t_hi = min(times), max(times)
    v_lo, v_hi = min(values), max(values)
    if t_hi == t_lo:
        t_hi = t_lo + 1.0
    if v_hi == v_lo:
        v_hi = v_lo + 1.0

    columns: List[List[float]] = [[] for _ in range(width)]
    for time, value in series:
        col = min(width - 1, int((time - t_lo) / (t_hi - t_lo) * width))
        columns[col].append(value)

    grid = [[" "] * width for _ in range(height)]
    for col, bucket in enumerate(columns):
        if not bucket:
            continue
        mean = sum(bucket) / len(bucket)
        row = int((mean - v_lo) / (v_hi - v_lo) * (height - 1))
        grid[height - 1 - row][col] = "*"

    lines = []
    if label:
        lines.append(label)
    lines.append(f"{v_hi:10.3f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{v_lo:10.3f} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + f"{t_lo:.0f}s".ljust(width // 2) + f"{t_hi:.0f}s".rjust(width // 2))
    return "\n".join(lines)
