"""Glaciological analysis: diurnal velocity and the stick-slip/pressure link.

The project's science questions (paper §I): ice velocity "on both a
diurnal and annual scale", and "the relationship of any 'stick-slip'
motion to changes in water pressure".  These helpers answer both from the
products the system actually delivers — dGPS solutions and probe pressure
readings out of the Southampton archive.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gps.dgps import DgpsSolution, velocity_series
from repro.sim.simtime import DAY, fraction_of_day


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (0.0 for degenerate inputs)."""
    n = len(xs)
    if n != len(ys) or n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def diurnal_velocity_profile(
    solutions: Sequence[DgpsSolution], bins: int = 12
) -> List[Tuple[float, float]]:
    """Mean velocity by time of day, from sub-daily solution pairs.

    Returns ``(bin_centre_hour, mean_velocity_m_per_day)`` for every bin
    that has data.  Needs a state-3-style cadence (several solutions per
    day); averaging across many days beats down the per-interval dGPS
    noise until the melt-season diurnal cycle emerges.
    """
    binned: Dict[int, List[float]] = {}
    for time, velocity in velocity_series(solutions):
        hour = fraction_of_day(time) * 24.0
        index = min(bins - 1, int(hour / 24.0 * bins))
        binned.setdefault(index, []).append(velocity)
    return [
        ((index + 0.5) * 24.0 / bins, sum(values) / len(values))
        for index, values in sorted(binned.items())
    ]


def diurnal_amplitude(profile: Sequence[Tuple[float, float]]) -> float:
    """Peak-to-trough velocity swing of a diurnal profile, m/day."""
    if not profile:
        return 0.0
    values = [v for _h, v in profile]
    return max(values) - min(values)


def daily_means(series: Sequence[Tuple[float, float]]) -> Dict[int, float]:
    """Per-day mean of a (time, value) series."""
    byday: Dict[int, List[float]] = {}
    for time, value in series:
        byday.setdefault(int(time // DAY), []).append(value)
    return {day: sum(values) / len(values) for day, values in byday.items()}


def velocity_pressure_correlation(
    daily_velocity: Sequence[Tuple[int, float]],
    pressure_series: Sequence[Tuple[float, float]],
) -> Tuple[float, int]:
    """Correlate daily ice velocity with daily mean water pressure.

    ``daily_velocity`` is ``(day_index, m/day)`` (as from
    :meth:`~repro.server.archive.ScienceArchive.daily_velocity`);
    ``pressure_series`` is raw (time, pressure) probe readings.  Returns
    ``(pearson_r, paired_days)``.
    """
    pressure_by_day = daily_means(pressure_series)
    xs, ys = [], []
    for day, velocity in daily_velocity:
        if day in pressure_by_day:
            xs.append(pressure_by_day[day])
            ys.append(velocity)
    return pearson(xs, ys), len(xs)


def slip_day_pressure_excess(
    daily_velocity: Sequence[Tuple[int, float]],
    pressure_series: Sequence[Tuple[float, float]],
    sigma: float = 1.0,
) -> Optional[float]:
    """Mean pressure on fast days minus mean pressure on normal days.

    "Fast" days exceed the velocity mean by ``sigma`` standard deviations
    (candidate stick-slip days).  Returns ``None`` when there are no fast
    days to compare.
    """
    if len(daily_velocity) < 3:
        return None
    values = [v for _d, v in daily_velocity]
    mean = sum(values) / len(values)
    std = (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5
    threshold = mean + sigma * std
    pressure_by_day = daily_means(pressure_series)
    fast, normal = [], []
    for day, velocity in daily_velocity:
        if day not in pressure_by_day:
            continue
        (fast if velocity > threshold else normal).append(pressure_by_day[day])
    if not fast or not normal:
        return None
    return sum(fast) / len(fast) - sum(normal) / len(normal)
