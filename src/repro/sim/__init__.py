"""Discrete-event simulation kernel.

Every other subsystem in :mod:`repro` runs on top of this kernel.  It is a
small, dependency-free engine in the style of SimPy: a :class:`Simulation`
owns a priority queue of :class:`~repro.sim.events.Event` objects and a
simulated clock; :class:`~repro.sim.process.Process` objects are Python
generators that ``yield`` events to wait on.

The kernel is calendar-aware (see :mod:`repro.sim.simtime`): simulated time
is measured in seconds since a configurable epoch and converts to/from UTC
datetimes, because nearly everything in the reproduced system — the daily
midday communication window, diurnal battery voltage, Iceland's seasons —
is driven by wall-clock and calendar structure.
"""

from repro.sim.events import Event, Interrupt, Timeout
from repro.sim.kernel import Simulation, StopSimulation
from repro.sim.process import Process, ProcessKilled
from repro.sim.rng import RngRegistry, generator_from_seed
from repro.sim.simtime import (
    DAY,
    HOUR,
    MINUTE,
    SECONDS_PER_DAY,
    SimClock,
    day_of_year,
    fraction_of_day,
    from_datetime,
    to_datetime,
)
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "DAY",
    "Event",
    "HOUR",
    "Interrupt",
    "MINUTE",
    "Process",
    "ProcessKilled",
    "RngRegistry",
    "generator_from_seed",
    "SECONDS_PER_DAY",
    "SimClock",
    "Simulation",
    "StopSimulation",
    "Timeout",
    "Trace",
    "TraceRecord",
    "day_of_year",
    "fraction_of_day",
    "from_datetime",
    "to_datetime",
]
