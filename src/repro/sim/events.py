"""Events: the kernel's unit of scheduling and synchronisation.

An :class:`Event` starts *pending*, is *triggered* with a value (or an
exception), and then runs its callbacks exactly once when the kernel
processes it.  Processes wait on events by ``yield``-ing them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.kernel import Simulation

#: Sentinel for "not yet triggered".
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    sim:
        The owning simulation.
    name:
        Optional label used in traces and error messages.
    """

    def __init__(self, sim: "Simulation", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value or an exception."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once the kernel has run the event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (triggered without an exception)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The event's value.  Raises if the event is still pending."""
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise RuntimeError(f"event {self.name!r} has no value yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self._value = value
        self.sim.schedule(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is raised inside every process waiting on the event.
        If nothing is waiting when the kernel processes the event, the
        exception propagates out of :meth:`Simulation.run` — errors must not
        pass silently.
        """
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._value = None
        self.sim.schedule(self, delay=0.0)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it will not crash the kernel."""
        self._defused = True

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self)
        if self._exception is not None and not self._defused:
            raise self._exception

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {self.name!r} {state}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    def __init__(self, sim: "Simulation", delay: float, value: Any = None, name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(sim, name or f"timeout({delay:g})")
        self._value = value
        self.delay = delay
        sim.schedule(self, delay=delay)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The watchdog in :mod:`repro.core.watchdog` uses interrupts to model the
    paper's 2-hour emergency timeout killing a hung transfer.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class AllOf(Event):
    """Composite event that succeeds when all child events have succeeded."""

    def __init__(self, sim: "Simulation", events: List[Event], name: str = "all_of") -> None:
        super().__init__(sim, name)
        self._pending = 0
        self._results: dict = {}
        for event in events:
            if event.processed:
                if not event.ok:
                    self.fail(event._exception)  # type: ignore[arg-type]
                    return
                self._results[event] = event.value
            else:
                self._pending += 1
                event.callbacks.append(self._on_child)  # type: ignore[union-attr]
        if self._pending == 0 and not self.triggered:
            self.succeed(self._results)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event._exception)  # type: ignore[arg-type]
            return
        self._results[event] = event.value
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._results)


class AnyOf(Event):
    """Composite event that succeeds when the first child event succeeds."""

    def __init__(self, sim: "Simulation", events: List[Event], name: str = "any_of") -> None:
        super().__init__(sim, name)
        for event in events:
            if event.processed:
                if event.ok:
                    self.succeed({event: event.value})
                else:
                    self.fail(event._exception)  # type: ignore[arg-type]
                return
        for event in events:
            event.callbacks.append(self._on_child)  # type: ignore[union-attr]

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed({event: event.value})
        else:
            event.defuse()
            self.fail(event._exception)  # type: ignore[arg-type]
