"""Events: the kernel's unit of scheduling and synchronisation.

An :class:`Event` starts *pending*, is *triggered* with a value (or an
exception), and then runs its callbacks exactly once when the kernel
processes it.  Processes wait on events by ``yield``-ing them.

Hot-path notes (see ``docs/performance.md``): every class here carries
``__slots__``, the callback list is created lazily (a bare timeout that
nothing waits on never allocates one), and :class:`Timeout` schedules
itself on construction without going through the generic
:meth:`Event.__init__` / :meth:`Simulation.schedule` path.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.kernel import Simulation

#: Sentinel for "not yet triggered".
_PENDING = object()

#: Shared sentinel meaning "pending, but no callback list allocated yet".
#: An empty tuple iterates as cheaply as an empty list and is immutable,
#: so one instance serves every callback-free event in the system.
_NO_CALLBACKS: tuple = ()

#: Upper bound for a schedulable delay (rejects inf and, via the failed
#: comparison, NaN).
_INF = float("inf")


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    sim:
        The owning simulation.
    name:
        Optional label used in traces and error messages.
    """

    __slots__ = ("sim", "name", "_callbacks", "_value", "_exception", "_defused")

    def __init__(self, sim: "Simulation", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._callbacks: Any = _NO_CALLBACKS
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._defused = False

    @property
    def callbacks(self) -> Optional[List[Callable[["Event"], None]]]:
        """The callback list (``None`` once processed).

        Materialised on first access: events nobody waits on never pay for
        the list allocation.
        """
        cbs = self._callbacks
        if cbs.__class__ is tuple:
            cbs = []
            self._callbacks = cbs
        return cbs

    @callbacks.setter
    def callbacks(self, value: Optional[List[Callable[["Event"], None]]]) -> None:
        self._callbacks = value

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value or an exception."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once the kernel has run the event's callbacks."""
        return self._callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (triggered without an exception)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The event's value.  Raises if the event is still pending."""
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise RuntimeError(f"event {self.name!r} has no value yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING or self._exception is not None:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self._value = value
        self.sim._schedule_now(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is raised inside every process waiting on the event.
        If nothing is waiting when the kernel processes the event, the
        exception propagates out of :meth:`Simulation.run` — errors must not
        pass silently.
        """
        if self._value is not _PENDING or self._exception is not None:
            raise RuntimeError(f"event {self.name!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._value = None
        self.sim._schedule_now(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it will not crash the kernel."""
        self._defused = True

    def _run_callbacks(self) -> None:
        callbacks = self._callbacks
        assert callbacks is not None
        self._callbacks = None
        for callback in callbacks:
            callback(self)
        if self._exception is not None and not self._defused:
            raise self._exception

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {self.name!r} {state}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay.

    Construction *is* scheduling: the timeout pushes itself straight onto
    the kernel queue without an intermediate callback list, and its default
    display name (``timeout(5)``) is only formatted if something actually
    reads it.
    """

    __slots__ = ("delay", "_name")

    def __init__(self, sim: "Simulation", delay: float, value: Any = None, name: str = "") -> None:
        if not 0.0 <= delay < _INF:
            raise ValueError(f"timeout delay must be finite and >= 0, got {delay!r}")
        self.sim = sim
        self._name = name
        self._callbacks = _NO_CALLBACKS
        self._value = value
        self._exception = None
        self._defused = False
        self.delay = delay
        if sim._tie_fast:
            seq = sim._sequence
            sim._sequence = seq + 1
        else:
            seq = sim._next_key(self)
        heappush(sim._queue, (sim.clock._now + delay, seq, self))

    @property
    def name(self) -> str:  # type: ignore[override] - shadows the Event slot
        label = self._name
        if not label:
            label = self._name = f"timeout({self.delay:g})"
        return label

    @name.setter
    def name(self, value: str) -> None:
        self._name = value


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The watchdog in :mod:`repro.core.watchdog` uses interrupts to model the
    paper's 2-hour emergency timeout killing a hung transfer.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class AllOf(Event):
    """Composite event that succeeds when all child events have succeeded."""

    __slots__ = ("_pending_count", "_results")

    def __init__(self, sim: "Simulation", events: List[Event], name: str = "all_of") -> None:
        super().__init__(sim, name)
        self._pending_count = 0
        self._results: dict = {}
        for event in events:
            if event.processed:
                if not event.ok:
                    self.fail(event._exception)  # type: ignore[arg-type]
                    return
                self._results[event] = event.value
            else:
                self._pending_count += 1
                event.callbacks.append(self._on_child)  # type: ignore[union-attr]
        if self._pending_count == 0 and not self.triggered:
            self.succeed(self._results)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event._exception)  # type: ignore[arg-type]
            return
        self._results[event] = event.value
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed(self._results)


class AnyOf(Event):
    """Composite event that succeeds when the first child event succeeds."""

    __slots__ = ()

    def __init__(self, sim: "Simulation", events: List[Event], name: str = "any_of") -> None:
        super().__init__(sim, name)
        for event in events:
            if event.processed:
                if event.ok:
                    self.succeed({event: event.value})
                else:
                    self.fail(event._exception)  # type: ignore[arg-type]
                return
        for event in events:
            event.callbacks.append(self._on_child)  # type: ignore[union-attr]

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed({event: event.value})
        else:
            event.defuse()
            self.fail(event._exception)  # type: ignore[arg-type]
