"""Structured tracing: the simulated analogue of the stations' logfiles.

The paper stresses that "all messages or errors are redirected to a standard
logfile which is sent back daily with the data", and that log volume itself
became an operational problem (a reconnected probe could emit >1 MB of log).
:class:`Trace` records structured events with their simulated timestamps; the
station model measures the byte size of its trace slice to reproduce that
log-volume behaviour.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.sim.simtime import SimClock


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulated time in seconds since the epoch.
    source:
        Component that emitted the record (e.g. ``"base.gumstix"``).
    kind:
        Machine-readable record type (e.g. ``"power_state"``).
    detail:
        Free-form payload fields.
    """

    time: float
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def byte_size(self) -> int:
        """Approximate size of this record rendered as a log line."""
        rendered = f"{self.time:.1f} {self.source} {self.kind} {self.detail!r}\n"
        return len(rendered.encode())


class Trace:
    """Append-only list of :class:`TraceRecord` with query helpers.

    ``enabled`` is the cached emit gate: hot callers may read it once and
    skip building keyword payloads entirely, and :meth:`emit` itself
    short-circuits before constructing a record.  Disabling the trace
    changes simulated behaviour wherever log *volume* matters (staged log
    files measure their trace slice), so the flag defaults to on and is a
    deliberate, per-run decision.
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock
        self.records: List[TraceRecord] = []
        #: Cached emit gate — see the class docstring before turning off.
        self.enabled = True
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        #: Immutable snapshot iterated per emit; rebuilt on (un)subscribe so
        #: the hot path never copies the subscriber list.
        self._subscriber_snapshot: tuple = ()

    def emit(self, source: str, kind: str, **detail: Any) -> Optional[TraceRecord]:
        """Append a record stamped with the current simulated time.

        Returns ``None`` without recording anything when the trace is
        disabled.  A subscriber that raises does not corrupt the run: the
        exception is captured as a ``trace.subscriber_error`` record (the
        metrics layer subscribes here — a bad callback must not kill a
        mission).
        """
        if not self.enabled:
            return None
        clock = self.clock
        time = clock._now if clock is not None else 0.0
        record = TraceRecord(time, source, kind, detail)
        self.records.append(record)
        for subscriber in self._subscriber_snapshot:
            try:
                subscriber(record)
            except Exception as exc:
                # Deterministic identification only: qualnames, not reprs
                # of closures (those embed host memory addresses).
                self.records.append(
                    TraceRecord(
                        time=time,
                        source="trace",
                        kind="subscriber_error",
                        detail={
                            "subscriber": getattr(subscriber, "__qualname__",
                                                  type(subscriber).__name__),
                            "error": f"{type(exc).__name__}: {exc}",
                            "record_source": source,
                            "record_kind": kind,
                        },
                    )
                )
        return record

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Call ``callback`` for every future record."""
        self._subscribers.append(callback)
        self._subscriber_snapshot = tuple(self._subscribers)

    def unsubscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Stop calling ``callback``; unknown callbacks are ignored."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass
        self._subscriber_snapshot = tuple(self._subscribers)

    def select(
        self,
        source: Optional[str] = None,
        kind: Optional[str] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[TraceRecord]:
        """Records matching every given filter.

        ``source`` matches the exact component name or any dotted child
        (``"base"`` matches ``"base"`` and ``"base.gumstix"`` but never a
        sibling like ``"base2"``).
        """
        return list(self.iter_select(source=source, kind=kind, start=start, end=end))

    def iter_select(
        self,
        source: Optional[str] = None,
        kind: Optional[str] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Iterator[TraceRecord]:
        """Iterator variant of :meth:`select`.

        Records carry nondecreasing timestamps (the simulated clock never
        runs backwards), so a ``start`` bound is located by bisection and
        an ``end`` bound terminates the scan — windowed queries (the daily
        log-file sizing) stay O(window) as the trace grows over a year.
        """
        child_prefix = source + "." if source is not None else None
        records = self.records
        lo = 0
        if start is not None:
            lo = bisect_left(records, start, key=attrgetter("time"))
        for index in range(lo, len(records)):
            record = records[index]
            if end is not None and record.time >= end:
                break
            if source is not None and record.source != source and not (
                child_prefix is not None and record.source.startswith(child_prefix)
            ):
                continue
            if kind is not None and record.kind != kind:
                continue
            yield record

    def series(self, kind: str, key: str, source: Optional[str] = None) -> List[tuple]:
        """``(time, detail[key])`` pairs for every matching record."""
        return [
            (record.time, record.detail[key])
            for record in self.iter_select(source=source, kind=kind)
            if key in record.detail
        ]

    def byte_size(self, **filters: Any) -> int:
        """Total rendered byte size of records matching ``filters``."""
        return sum(record.byte_size() for record in self.iter_select(**filters))

    def __len__(self) -> int:
        return len(self.records)
