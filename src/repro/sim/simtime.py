"""Simulated time: seconds since an epoch, with calendar conversions.

The deployed system's behaviour is anchored to UTC wall-clock time — the
communication window opens daily at midday UTC, battery voltage peaks near
midday, melt-water arrives in April.  The kernel therefore measures time in
*seconds since a simulation epoch* (a real UTC datetime) so that any
simulated instant can be mapped back to a calendar date.

The default epoch, 1 September 2008 UTC, is the start of the deployment
season described in the paper.
"""

from __future__ import annotations

import datetime as _dt
import functools
import math

#: One simulated second (the base unit).
SECOND = 1.0
#: Seconds per minute.
MINUTE = 60.0
#: Seconds per hour.
HOUR = 3600.0
#: Seconds per day.
DAY = 86400.0
#: Alias kept for readability in rate calculations.
SECONDS_PER_DAY = DAY

#: The default simulation epoch: start of the 2008 Iceland deployment season.
DEFAULT_EPOCH = _dt.datetime(2008, 9, 1, 0, 0, 0, tzinfo=_dt.timezone.utc)

#: The value a reset hardware RTC reports: the Unix epoch.
RTC_RESET_DATETIME = _dt.datetime(1970, 1, 1, 0, 0, 0, tzinfo=_dt.timezone.utc)


#: Microsecond-integer calendar arithmetic.  ``timedelta(seconds=t)``
#: quantises a float to whole microseconds (ties to even); the fast paths
#: below reproduce that quantisation exactly with integer arithmetic, so
#: :func:`day_of_year` and :func:`fraction_of_day` — the two calls every
#: weather/season/schedule query makes — never build datetime objects.
_US_PER_SECOND = 1_000_000
_US_PER_DAY = 86_400_000_000


def _us_since_epoch(sim_seconds: float) -> int:
    """``sim_seconds`` as whole microseconds, rounded the timedelta way."""
    frac, whole = math.modf(sim_seconds)
    return int(whole) * _US_PER_SECOND + round(frac * 1e6)


@functools.lru_cache(maxsize=64)
def _epoch_anchor(epoch: _dt.datetime):
    """``(proleptic day ordinal, microsecond of day)`` of ``epoch``."""
    sod_us = (
        ((epoch.hour * 60 + epoch.minute) * 60 + epoch.second) * _US_PER_SECOND
        + epoch.microsecond
    )
    return epoch.toordinal(), sod_us


@functools.lru_cache(maxsize=8192)
def _ordinal_day_of_year(ordinal: int) -> int:
    return _dt.date.fromordinal(ordinal).timetuple().tm_yday


_DEFAULT_ANCHOR = (DEFAULT_EPOCH.toordinal(),
                   _epoch_anchor(DEFAULT_EPOCH)[1])


def to_datetime(sim_seconds: float, epoch: _dt.datetime = DEFAULT_EPOCH) -> _dt.datetime:
    """Convert simulated seconds since ``epoch`` to a UTC datetime."""
    return epoch + _dt.timedelta(seconds=sim_seconds)


def from_datetime(when: _dt.datetime, epoch: _dt.datetime = DEFAULT_EPOCH) -> float:
    """Convert a UTC datetime to simulated seconds since ``epoch``."""
    if when.tzinfo is None:
        when = when.replace(tzinfo=_dt.timezone.utc)
    return (when - epoch).total_seconds()


def day_of_year(sim_seconds: float, epoch: _dt.datetime = DEFAULT_EPOCH) -> int:
    """Day of year (1-366) at the given simulated instant."""
    if epoch is DEFAULT_EPOCH:
        ordinal0, sod_us = _DEFAULT_ANCHOR
    else:
        ordinal0, sod_us = _epoch_anchor(epoch)
    days = (sod_us + _us_since_epoch(sim_seconds)) // _US_PER_DAY
    return _ordinal_day_of_year(ordinal0 + days)


def fraction_of_day(sim_seconds: float, epoch: _dt.datetime = DEFAULT_EPOCH) -> float:
    """Fraction of the UTC day elapsed at the given instant, in [0, 1).

    0.5 is midday UTC — the scheduled communication window.
    """
    if epoch is DEFAULT_EPOCH:
        sod_us = _DEFAULT_ANCHOR[1]
    else:
        sod_us = _epoch_anchor(epoch)[1]
    day_us = (sod_us + _us_since_epoch(sim_seconds)) % _US_PER_DAY
    # Whole seconds of day stay below 2**53, so summing them as one integer
    # is bit-identical to the hour/minute/second float expansion.
    second, microsecond = divmod(day_us, _US_PER_SECOND)
    return (second + microsecond / 1e6) / DAY


def next_time_of_day(sim_seconds: float, hour: float, epoch: _dt.datetime = DEFAULT_EPOCH) -> float:
    """The next simulated instant at which UTC time-of-day equals ``hour``.

    Returns a value strictly greater than ``sim_seconds``: if the current
    instant is exactly ``hour``, the result is the same time tomorrow.
    """
    target_fraction = hour / 24.0
    current_fraction = fraction_of_day(sim_seconds, epoch)
    delta_fraction = target_fraction - current_fraction
    if delta_fraction <= 0:
        delta_fraction += 1.0
    return sim_seconds + delta_fraction * DAY


class SimClock:
    """The simulation's monotonically advancing clock.

    ``SimClock`` is the *true* simulated time, owned by the kernel.  Device
    real-time clocks (which can drift or reset) are modelled separately in
    :mod:`repro.hardware.rtc` against this reference.
    """

    def __init__(self, epoch: _dt.datetime = DEFAULT_EPOCH, start: float = 0.0) -> None:
        self.epoch = epoch
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time, in seconds since the epoch."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.  Refuses to move backwards."""
        if when < self._now:
            raise ValueError(f"clock cannot move backwards: {when} < {self._now}")
        self._now = when

    def utcnow(self) -> _dt.datetime:
        """Current simulated instant as a UTC datetime."""
        return to_datetime(self._now, self.epoch)

    def day_of_year(self) -> int:
        """Day of year at the current instant."""
        return day_of_year(self._now, self.epoch)

    def fraction_of_day(self) -> float:
        """Fraction of the current UTC day elapsed, in [0, 1)."""
        return fraction_of_day(self._now, self.epoch)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock({self.utcnow().isoformat()})"
