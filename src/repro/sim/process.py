"""Processes: generators driven by the kernel.

A process function is a generator that ``yield``s :class:`Event` objects.
When a yielded event triggers, the process resumes with the event's value
(or the event's exception raised at the ``yield``).  A process is itself an
event: it triggers with the generator's return value when the generator
finishes, so processes can wait on each other.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import _NO_CALLBACKS, _PENDING, Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulation


class ProcessKilled(Exception):
    """Raised inside a process that has been killed via :meth:`Process.kill`."""


class Process(Event):
    """A running generator, schedulable and waitable like any event."""

    __slots__ = ("_generator", "_waiting_on", "_resume_cb")

    def __init__(self, sim: "Simulation", generator: Generator, name: str = "") -> None:
        # Inlined Event.__init__: process churn (spawn/finish) is a hot
        # path, so the bootstrap avoids every avoidable call and format.
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._callbacks: object = _NO_CALLBACKS
        self._value: object = _PENDING
        self._exception = None
        self._defused = False
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        #: The bound resume method, created once — appending/removing it
        #: from event callback lists is the kernel's hottest wait path.
        resume = self._resume_cb = self._resume
        # Bootstrap: resume the generator at time now.
        initial = Event.__new__(Event)
        initial.sim = sim
        initial.name = self.name
        initial._callbacks = [resume]
        initial._value = None
        initial._exception = None
        initial._defused = False
        if sim._tie_fast:
            seq = sim._sequence
            sim._sequence = seq + 1
        else:
            seq = sim._next_key(initial)
        heappush(sim._queue, (sim.clock._now, seq, initial))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its current yield.

        Used to model the emergency watchdog cutting power mid-task.  A
        process that is not currently waiting (already finished) cannot be
        interrupted.
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        self._detach_from_waiting()
        wakeup = Event(self.sim, name=f"{self.name}.interrupt")
        wakeup._exception = Interrupt(cause)
        wakeup._value = None
        wakeup._defused = True
        wakeup._callbacks = [self._resume_cb]
        self.sim._schedule_now(wakeup)

    def kill(self) -> None:
        """Terminate the process immediately without running more of its body.

        The process event triggers with value ``None``.  Models hard power
        removal (the MSP430 cutting the Gumstix's rail).  The kill cascades
        into any child *process* this one is currently waiting on —
        structured concurrency: a powered-off job cannot leave its transfer
        running.  Generator ``finally`` blocks run, so hardware helpers
        (e.g. the GPS reading) release their power rails.
        """
        if self.triggered:
            return
        child = self._waiting_on
        self._detach_from_waiting()
        self._generator.close()
        self._value = None
        self.sim._schedule_now(self)
        if isinstance(child, Process) and child.is_alive:
            child.kill()

    def _detach_from_waiting(self) -> None:
        waiting = self._waiting_on
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._waiting_on = None

    def _resume(self, event: Event) -> None:
        if self._value is not _PENDING or self._exception is not None:
            return  # already triggered (killed/finished)
        self._waiting_on = None
        try:
            if event._exception is not None:
                event.defuse()
                target = self._generator.throw(event._exception)
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self._value = stop.value
            sim = self.sim
            if sim._tie_fast:
                seq = sim._sequence
                sim._sequence = seq + 1
            else:
                seq = sim._next_key(self)
            heappush(sim._queue, (sim.clock._now, seq, self))
            return
        except ProcessKilled:
            self._value = None
            self.sim._schedule_now(self)
            return
        except BaseException as exc:
            # The process body raised: propagate through the process event so
            # waiters see it; if nobody waits, the kernel surfaces it.
            self._exception = exc
            self._value = None
            self.sim._schedule_now(self)
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
        target_callbacks = target._callbacks
        if target_callbacks is None:
            # The event already happened (e.g. succeeded in an earlier run):
            # resume immediately with its recorded outcome.
            immediate = Event(self.sim, name=f"{self.name}.immediate")
            immediate._value = target._value
            immediate._exception = target._exception
            if target._exception is not None:
                immediate._defused = True
            immediate._callbacks = [self._resume_cb]
            self.sim._schedule_now(immediate)
        else:
            self._waiting_on = target
            if target_callbacks is _NO_CALLBACKS:
                target._callbacks = [self._resume_cb]
            else:
                target_callbacks.append(self._resume_cb)
