"""Per-component random number streams.

Each subsystem (weather, probe radio, GPRS link, ...) draws from its own
named stream, derived deterministically from the master seed.  This keeps
experiments reproducible and — crucially for ablations — means changing how
often one component draws randomness does not perturb any other component.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def generator_from_seed(seed: int) -> np.random.Generator:
    """The one sanctioned way to build a standalone generator from a seed.

    Library code that cannot reach a :class:`RngRegistry` (pure analysis
    helpers, Monte-Carlo utilities) must route seed-to-generator conversion
    through here rather than calling ``np.random.default_rng`` directly —
    the ``rng-discipline`` lint rule enforces exactly that.
    """
    return np.random.default_rng(seed)


class RngRegistry:
    """Deterministic registry of named :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream's seed is a stable hash of ``(master_seed, name)`` so the
        same name always yields the same sequence for a given master seed.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.master_seed}:{name}".encode()).digest()
            seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = np.random.default_rng(seed)
        return self._streams[name]

    def __contains__(self, name: str) -> bool:
        return name in self._streams
