"""The simulation kernel: clock + event queue + run loop."""

from __future__ import annotations

import datetime as _dt
import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.obs.observability import Observability
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.simtime import DEFAULT_EPOCH, SimClock
from repro.sim.trace import Trace


class StopSimulation(Exception):
    """Raised (or triggered) to end :meth:`Simulation.run` early."""


class Simulation:
    """Owns the simulated clock, the event queue and all processes.

    Typical use::

        sim = Simulation(seed=42)

        def worker(sim):
            yield sim.timeout(10.0)
            ...

        sim.process(worker(sim))
        sim.run(until=3600.0)

    Parameters
    ----------
    epoch:
        UTC datetime corresponding to simulated time 0.
    seed:
        Master seed for the per-component RNG registry.
    trace:
        Optional pre-built :class:`Trace`; a fresh one is created otherwise.
    obs:
        Optional pre-built :class:`~repro.obs.Observability`; a fresh one
        (metrics + trace bridge on, kernel spans and profiling off) is
        created otherwise.
    """

    def __init__(
        self,
        epoch: _dt.datetime = DEFAULT_EPOCH,
        seed: int = 0,
        trace: Optional[Trace] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.clock = SimClock(epoch=epoch)
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else Trace(clock=self.clock)
        self.obs = obs if obs is not None else Observability(clock=self.clock)
        self.obs.attach_trace(self.trace)
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = 0
        self._stopped = False
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds since the epoch."""
        return self.clock.now

    def utcnow(self) -> _dt.datetime:
        """Current simulated instant as a UTC datetime."""
        return self.clock.utcnow()

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue ``event`` to be processed ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self.now + delay, self._sequence, event))
        self._sequence += 1

    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: List[Event]) -> AllOf:
        """Event that succeeds once every event in ``events`` has succeeded."""
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Event that succeeds when the first of ``events`` succeeds."""
        return AnyOf(self, events)

    def call_at(self, when: float, func: Callable[[], None]) -> Event:
        """Run ``func()`` at absolute simulated time ``when``."""
        if when < self.now:
            raise ValueError(f"call_at target {when} is in the past (now={self.now})")
        event = Timeout(self, when - self.now, name=f"call_at({when:g})")
        event.callbacks.append(lambda _evt: func())  # type: ignore[union-attr]
        return event

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event from the queue."""
        when, _seq, event = heapq.heappop(self._queue)
        self.clock.advance_to(when)
        self.events_processed += 1
        obs = self.obs
        if obs is not None and obs.kernel_active:
            obs.kernel_step(event, when, len(self._queue), event._run_callbacks)
        else:
            event._run_callbacks()

    def peek(self) -> float:
        """Time of the next queued event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue empties, ``until`` is reached, or stop() is called.

        ``until`` is an *absolute* simulated time.  When the run ends because
        of ``until``, the clock is left exactly at ``until``.
        """
        self._stopped = False
        try:
            while self._queue and not self._stopped:
                if until is not None and self.peek() > until:
                    break
                self.step()
        except StopSimulation:
            return
        if until is not None and not self._stopped and self.clock.now < until:
            self.clock.advance_to(until)

    def run_days(self, days: float) -> None:
        """Convenience: run for ``days`` simulated days from the current time."""
        self.run(until=self.now + days * 86400.0)
