"""The simulation kernel: clock + event queue + run loop.

This module is the hottest code in the repository: every experiment,
benchmark and fleet sweep funnels through :meth:`Simulation.run`.  The
hot-path rules it follows (no per-event allocations, bound-method dispatch
cached outside the loop, batch scheduling) are written down in
``docs/performance.md`` and enforced by the ``no-hot-path-alloc`` lint
rule.
"""

from __future__ import annotations

import datetime as _dt
import random as _random
import sys as _sys
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.obs.observability import Observability
from repro.sim.events import _INF, _NO_CALLBACKS, AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.simtime import DEFAULT_EPOCH, SimClock
from repro.sim.trace import Trace


class StopSimulation(Exception):
    """Raised (or triggered) to end :meth:`Simulation.run` early."""


class Simulation:
    """Owns the simulated clock, the event queue and all processes.

    Typical use::

        sim = Simulation(seed=42)

        def worker(sim):
            yield sim.timeout(10.0)
            ...

        sim.process(worker(sim))
        sim.run(until=3600.0)

    Parameters
    ----------
    epoch:
        UTC datetime corresponding to simulated time 0.
    seed:
        Master seed for the per-component RNG registry.
    trace:
        Optional pre-built :class:`Trace`; a fresh one is created otherwise.
    obs:
        Optional pre-built :class:`~repro.obs.Observability`; a fresh one
        (metrics + trace bridge on, kernel spans and profiling off) is
        created otherwise.
    tie_break:
        How same-timestamp events are ordered.  ``"fifo"`` (default) is
        insertion order, ``"lifo"`` is reverse insertion order, and
        ``"shuffle:<seed>"`` is a deterministic pseudo-random permutation
        of each equal-timestamp group keyed by ``<seed>``.  Every policy
        is fully deterministic: same policy + same mission seed replays
        byte-identically.  The perturbed policies exist so the races
        harness (:mod:`repro.lint.tie_replay`) can prove that no schedule
        silently relies on heap-insertion order — the prerequisite for
        batched same-timestamp dispatch.  Only the tie key among events
        with *equal* timestamps is permuted; cross-timestamp order is
        untouched, and ``_sequence`` keeps counting scheduled events
        under every policy.
    """

    def __init__(
        self,
        epoch: _dt.datetime = DEFAULT_EPOCH,
        seed: int = 0,
        trace: Optional[Trace] = None,
        obs: Optional[Observability] = None,
        tie_break: str = "fifo",
    ) -> None:
        self.clock = SimClock(epoch=epoch)
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else Trace(clock=self.clock)
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = 0
        self._stopped = False
        self.events_processed = 0
        #: Equal-timestamp groups dispatched so far.  The run loop drains
        #: each group in one pass (one clock write, one hook check), so
        #: ``events_processed / dispatch_batches`` is the mean group size —
        #: exported as the ``dispatch_batches_total`` kernel gauge.
        self.dispatch_batches = 0
        #: Diagnostic state for the races harness (None = off, zero cost
        #: beyond the ``_tie_fast`` flag check at each enqueue site).
        self._site_log: Optional[dict] = None
        self._dispatch_log: Optional[list] = None
        kind, _, policy_seed = tie_break.partition(":")
        if kind == "shuffle":
            if not policy_seed.lstrip("-").isdigit():
                raise ValueError(
                    f"tie_break 'shuffle' needs an integer seed, e.g. "
                    f"'shuffle:0' (got {tie_break!r})"
                )
            # The tie stream is replay *control*, not simulation randomness:
            # it is keyed by the policy spec alone — deliberately outside
            # the RngRegistry — so arming it can never perturb any
            # component stream (that independence is exactly what the
            # races harness measures).
            self._tie_bits = _random.Random(int(policy_seed)).getrandbits
        elif kind not in ("fifo", "lifo") or policy_seed:
            raise ValueError(
                f"tie_break must be 'fifo', 'lifo' or 'shuffle:<seed>' "
                f"(got {tie_break!r})"
            )
        else:
            self._tie_bits = None
        self.tie_break = tie_break
        self._tie_kind = kind
        #: True on the default fast path: fifo policy, no diagnostics.
        #: Enqueue sites then keep their inlined ``_sequence`` increment;
        #: otherwise they route through :meth:`_next_key`.
        self._tie_fast = kind == "fifo"
        #: Cached per-step instrumentation hook: ``None`` on the fast path,
        #: the bound ``Observability.kernel_step`` method otherwise.  Selected
        #: once whenever the hub or its flags change — the run loop never
        #: chases ``obs.kernel_active`` attribute chains per event.
        self._kernel_hook: Optional[Callable] = None
        self._obs: Optional[Observability] = None
        self.obs = obs if obs is not None else Observability(clock=self.clock)
        self.obs.attach_trace(self.trace)

    # ------------------------------------------------------------------
    # Observability dispatch
    # ------------------------------------------------------------------
    @property
    def obs(self) -> Optional[Observability]:
        """The observability hub (``None`` disables all instrumentation)."""
        return self._obs

    @obs.setter
    def obs(self, hub: Optional[Observability]) -> None:
        old = self._obs
        if old is not None:
            old._remove_dispatch_listener(self._refresh_dispatch)
        self._obs = hub
        if hub is not None:
            hub._add_dispatch_listener(self._refresh_dispatch)
        self._refresh_dispatch()

    def _refresh_dispatch(self) -> None:
        """Re-select the per-step dispatch after an observability change."""
        hub = self._obs
        if self._dispatch_log is not None:
            # Tie diagnostics own the per-step hook for the whole run;
            # diagnosis missions are dedicated, so obs kernel spans and
            # diagnostics are never wanted at once.
            self._kernel_hook = self._diag_step
        elif hub is not None and hub.kernel_active:
            self._kernel_hook = hub.kernel_step
        else:
            self._kernel_hook = None

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds since the epoch."""
        return self.clock._now

    def utcnow(self) -> _dt.datetime:
        """Current simulated instant as a UTC datetime."""
        return self.clock.utcnow()

    # ------------------------------------------------------------------
    # Kernel health accessors (the supported way to observe queue state —
    # reading _queue/_sequence from outside the kernel trips the
    # tie-break-assumption lint rule, because raw seq values are
    # policy-dependent heap keys, not a contract)
    # ------------------------------------------------------------------
    @property
    def events_scheduled(self) -> int:
        """How many events have been enqueued so far (any policy)."""
        return self._sequence

    @property
    def queue_depth(self) -> int:
        """How many events are currently waiting in the queue."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Tie-break policy and race diagnostics
    # ------------------------------------------------------------------
    def _next_key(self, event: Event) -> int:
        """Heap tie key for ``event`` under the active policy.

        Only reached off the fast path (non-fifo policy or diagnostics
        on).  The key orders *equal-timestamp* events only: ``lifo``
        negates the insertion counter, ``shuffle`` prefixes it with a
        deterministic 64-bit draw from the policy stream (the counter in
        the low bits keeps keys unique, so heap comparisons never fall
        through to the events themselves).  ``_sequence`` stays a plain
        scheduled-events counter under every policy.
        """
        seq = self._sequence
        self._sequence = seq + 1
        kind = self._tie_kind
        if kind == "lifo":
            key = -seq
        elif kind == "shuffle":
            key = (self._tie_bits(64) << 64) | seq
        else:
            key = seq
        site_log = self._site_log
        if site_log is not None:
            site_log[id(event)] = _schedule_site()
        return key

    def enable_tie_diagnostics(self) -> list:
        """Record schedule callsites and dispatch order for every event.

        Switches every enqueue onto the slow path, captures the first
        non-kernel stack frame of each enqueue, and logs
        ``(time, (file, line), event_type, event_name)`` per dispatched
        event.  The races harness (:mod:`repro.lint.tie_replay`) uses two
        such runs under different tie policies to bisect a digest
        divergence back to the offending schedule callsites.  Returns the
        live dispatch log.
        """
        if self._dispatch_log is None:
            self._site_log = {}
            self._dispatch_log = []
            self._tie_fast = False
            self._refresh_dispatch()
        return self._dispatch_log

    def _diag_step(self, event: Event, when: float, queue_len: int,
                   run_callbacks: Callable[[], None]) -> None:
        """Per-event hook while tie diagnostics are on."""
        site = self._site_log.pop(id(event), None)
        self._dispatch_log.append(
            (when, site, type(event).__name__, getattr(event, "name", ""))
        )
        run_callbacks()

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue ``event`` to be processed ``delay`` seconds from now.

        ``delay`` must be finite and non-negative: a NaN or infinite delay
        would silently corrupt the heap order (every later comparison
        against it is False), so both are rejected up front.
        """
        if not 0.0 <= delay < _INF:
            raise ValueError(
                f"schedule() delay must be finite and >= 0, got {delay!r}"
            )
        if self._tie_fast:
            seq = self._sequence
            self._sequence = seq + 1
        else:
            seq = self._next_key(event)
        heappush(self._queue, (self.clock._now + delay, seq, event))

    def _schedule_now(self, event: Event) -> None:
        """Internal zero-delay enqueue (succeed/fail/process resume path)."""
        if self._tie_fast:
            seq = self._sequence
            self._sequence = seq + 1
        else:
            seq = self._next_key(event)
        heappush(self._queue, (self.clock._now, seq, event))

    def schedule_many(self, delays: Iterable[float]) -> List[Timeout]:
        """Create and enqueue one bare timeout per delay, as a single batch.

        Equivalent to ``[sim.timeout(d) for d in delays]`` but the whole
        batch shares one clock read and one validation pass, so daily
        planners (the MSP430 schedule, fleet warm-up) can arm a day's worth
        of slots without per-event scheduling overhead.  The batch is
        validated before anything is enqueued: a bad delay leaves the queue
        untouched.

        **Sequence-number contract** (pinned by
        ``tests/sim/test_tie_break.py::TestScheduleManyContract``): the
        batch consumes consecutive sequence numbers *in list order*,
        exactly as if each delay had been passed to an individual
        :meth:`timeout` call at the same instant.  Two delays that land on
        the same timestamp therefore dispatch in list order under
        ``fifo``, reverse list order under ``lifo``, and a seeded
        permutation under ``shuffle:<seed>`` — byte-identically to the
        equivalent interleaved single calls under the same policy.
        """
        batch = list(delays)
        for delay in batch:
            if not 0.0 <= delay < _INF:
                raise ValueError(
                    f"schedule_many() delays must be finite and >= 0, got {delay!r}"
                )
        queue = self._queue
        now = self.clock._now
        out: List[Timeout] = []
        append = out.append
        if self._tie_fast:
            seq = self._sequence
            for delay in batch:
                timeout = Timeout.__new__(Timeout)
                timeout.sim = self
                timeout._name = ""
                timeout._callbacks = _NO_CALLBACKS
                timeout._value = None
                timeout._exception = None
                timeout._defused = False
                timeout.delay = delay
                heappush(queue, (now + delay, seq, timeout))
                seq += 1
                append(timeout)
            self._sequence = seq
        else:
            for delay in batch:
                timeout = Timeout.__new__(Timeout)
                timeout.sim = self
                timeout._name = ""
                timeout._callbacks = _NO_CALLBACKS
                timeout._value = None
                timeout._exception = None
                timeout._defused = False
                timeout.delay = delay
                heappush(queue, (now + delay, self._next_key(timeout), timeout))
                append(timeout)
        return out

    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: List[Event]) -> AllOf:
        """Event that succeeds once every event in ``events`` has succeeded."""
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Event that succeeds when the first of ``events`` succeeds."""
        return AnyOf(self, events)

    def call_at(self, when: float, func: Callable[[], None]) -> Event:
        """Run ``func()`` at absolute simulated time ``when``.

        Mirrors :meth:`schedule`'s validation: ``when`` must be finite and
        not in the past.
        """
        if not self.clock._now <= when < _INF:
            raise ValueError(
                f"call_at() target must be finite and >= now "
                f"(got {when!r}, now={self.clock._now})"
            )
        event = Timeout(self, when - self.clock._now, name=f"call_at({when:g})")
        event.callbacks.append(lambda _evt: func())  # type: ignore[union-attr]
        return event

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event from the queue (a single-event batch)."""
        when, _seq, event = heappop(self._queue)
        self.clock.advance_to(when)
        self.events_processed += 1
        self.dispatch_batches += 1
        hook = self._kernel_hook
        if hook is None:
            event._run_callbacks()
        else:
            hook(event, when, len(self._queue), event._run_callbacks)

    def peek(self) -> float:
        """Time of the next queued event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else _INF

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue empties, ``until`` is reached, or stop() is called.

        ``until`` is an *absolute* simulated time.  An event scheduled
        exactly at ``until`` still fires; when the run ends because of
        ``until``, the clock is left exactly at ``until``.

        **Batched same-timestamp dispatch**: the loop drains each group of
        equal-``when`` events in one pass, peek-comparing the heap root
        instead of re-entering the outer loop per event, so the clock
        write, the ``until`` comparison and the ``_kernel_hook`` read are
        paid once per *group*.  Pop order inside a group is exactly the
        heap order the active tie-break policy dictates, ``stop()`` is
        honoured between any two events, and a zero-delay event scheduled
        from inside a group joins the same group — so batched dispatch is
        observationally identical to the one-event-at-a-time loop (the
        races harness proves it under fifo/lifo/shuffle).  The one
        documented coarsening: an observability flag flipped mid-group
        takes effect from the next group, not the next event.
        """
        self._stopped = False
        queue = self._queue
        clock = self.clock
        pop = heappop
        processed = 0
        batches = 0
        try:
            if until is None:
                while queue and not self._stopped:
                    when, _seq, event = pop(queue)
                    clock._now = when  # heap order keeps this monotonic
                    batches += 1
                    hook = self._kernel_hook
                    if hook is None:
                        while True:
                            processed += 1
                            # Event._run_callbacks, inlined: one Python call
                            # per event is the difference between the fast
                            # path and a ~15% slower kernel.
                            callbacks = event._callbacks
                            event._callbacks = None
                            for callback in callbacks:
                                callback(event)
                            exc = event._exception
                            if exc is not None and not event._defused:
                                raise exc
                            if self._stopped or not queue or queue[0][0] != when:
                                break
                            _when, _seq, event = pop(queue)
                    else:
                        processed += 1
                        hook(event, when, len(queue), event._run_callbacks)
                        while not self._stopped and queue and queue[0][0] == when:
                            _when, _seq, event = pop(queue)
                            processed += 1
                            hook(event, when, len(queue), event._run_callbacks)
            else:
                while queue and not self._stopped:
                    if queue[0][0] > until:
                        break
                    when, _seq, event = pop(queue)
                    clock._now = when
                    batches += 1
                    hook = self._kernel_hook
                    if hook is None:
                        # Group members share `when`, so one until-check at
                        # the head covers the whole drain.
                        while True:
                            processed += 1
                            callbacks = event._callbacks
                            event._callbacks = None
                            for callback in callbacks:
                                callback(event)
                            exc = event._exception
                            if exc is not None and not event._defused:
                                raise exc
                            if self._stopped or not queue or queue[0][0] != when:
                                break
                            _when, _seq, event = pop(queue)
                    else:
                        processed += 1
                        hook(event, when, len(queue), event._run_callbacks)
                        while not self._stopped and queue and queue[0][0] == when:
                            _when, _seq, event = pop(queue)
                            processed += 1
                            hook(event, when, len(queue), event._run_callbacks)
        except StopSimulation:
            return
        finally:
            self.events_processed += processed
            self.dispatch_batches += batches
        if until is not None and not self._stopped and clock._now < until:
            clock._now = until
    # repro-lint note: the loop above is the system's innermost hot path —
    # keep it free of per-event allocations (no-hot-path-alloc rule).

    def run_days(self, days: float) -> None:
        """Convenience: run for ``days`` simulated days from the current time."""
        self.run(until=self.clock._now + days * 86400.0)


#: Source files whose frames are skipped when attributing an enqueue to a
#: callsite: the kernel's own plumbing (schedule → Timeout.__init__ →
#: _next_key) is never the interesting frame.
import repro.sim.events as _events_mod
import repro.sim.process as _process_mod

_KERNEL_FILES = frozenset(
    {__file__, _events_mod.__file__, _process_mod.__file__}
)


def _schedule_site() -> Tuple[str, int]:
    """(file, line) of the first non-kernel frame above the enqueue."""
    frame = _sys._getframe(2)
    while frame is not None and frame.f_code.co_filename in _KERNEL_FILES:
        frame = frame.f_back
    if frame is None:
        return ("<kernel>", 0)
    return (frame.f_code.co_filename, frame.f_lineno)
