"""Compact-flash storage with the paper's corruption failure mode.

Each station has a 4 GB CF card for data buffering, and the dGPS has its own
internal card.  Section VI records that one card "had become corrupted" —
the cause unknown, the data ultimately recoverable.  The model exposes that
life-cycle: a corruption flag (probabilistically raised on unclean power
removal), failing reads while corrupted, and a recovery operation that
restores the files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


class StorageCorruption(Exception):
    """Raised when reading a corrupted card."""


@dataclass
class StoredFile:
    """One file on a card.

    ``payload`` carries arbitrary structured content (sensor readings, GPS
    observations); ``size_bytes`` is what transfer-time and capacity
    calculations use.
    """

    name: str
    size_bytes: int
    created: float
    payload: Any = None


class CompactFlashCard:
    """A fixed-capacity file store with corruption and recovery."""

    def __init__(
        self,
        capacity_bytes: int = 4_000_000_000,
        name: str = "cf",
        corruption_probability: float = 0.0,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.name = name
        #: Probability that one unclean power removal corrupts the card.
        self.corruption_probability = corruption_probability
        self.corrupted = False
        self._files: Dict[str, StoredFile] = {}

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        """Total size of stored files."""
        return sum(f.size_bytes for f in self._files.values())

    @property
    def free_bytes(self) -> int:
        """Remaining capacity."""
        return self.capacity_bytes - self.used_bytes

    # ------------------------------------------------------------------
    # File operations
    # ------------------------------------------------------------------
    def write(self, name: str, size_bytes: int, created: float, payload: Any = None) -> StoredFile:
        """Store a file; replaces any existing file of the same name."""
        if size_bytes < 0:
            raise ValueError("size must be >= 0")
        existing = self._files.get(name)
        freed = existing.size_bytes if existing else 0
        if size_bytes - freed > self.free_bytes:
            raise IOError(f"{self.name}: card full ({self.free_bytes} B free, need {size_bytes})")
        stored = StoredFile(name=name, size_bytes=size_bytes, created=created, payload=payload)
        self._files[name] = stored
        return stored

    def read(self, name: str) -> StoredFile:
        """Read a file.  Raises :class:`StorageCorruption` while corrupted."""
        if self.corrupted:
            raise StorageCorruption(f"{self.name}: filesystem corrupted")
        if name not in self._files:
            raise FileNotFoundError(f"{self.name}: no file {name!r}")
        return self._files[name]

    def exists(self, name: str) -> bool:
        """Whether a file of this name is present (ignores corruption)."""
        return name in self._files

    def delete(self, name: str) -> None:
        """Remove a file."""
        if name not in self._files:
            raise FileNotFoundError(f"{self.name}: no file {name!r}")
        del self._files[name]

    def list_files(self, prefix: str = "") -> List[StoredFile]:
        """Files whose names start with ``prefix``, oldest first.

        Raises :class:`StorageCorruption` while corrupted — a corrupted card
        cannot be enumerated any more than it can be read.
        """
        if self.corrupted:
            raise StorageCorruption(f"{self.name}: filesystem corrupted")
        matches = [f for f in self._files.values() if f.name.startswith(prefix)]
        return sorted(matches, key=lambda f: (f.created, f.name))

    # ------------------------------------------------------------------
    # Corruption life-cycle
    # ------------------------------------------------------------------
    def unclean_power_removal(self, roll: float) -> bool:
        """Called on unexpected power loss; corrupts the card if
        ``roll < corruption_probability``.  Returns whether corruption
        occurred.  ``roll`` is supplied by the caller's RNG stream so the
        card itself stays deterministic."""
        if roll < self.corruption_probability:
            self.corrupted = True
        return self.corrupted

    def recover(self) -> List[StoredFile]:
        """Off-line recovery (the field-trip procedure): clears the
        corruption flag and returns the recovered files."""
        self.corrupted = False
        return list(self._files.values())
