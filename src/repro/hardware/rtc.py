"""Real-time clock with drift and power-loss reset.

Section IV of the paper: after total battery exhaustion "the real time
clock will have reset to 0 which is 01/01/1970 00:00".  The stations detect
this by comparing the RTC against the last time the system successfully ran,
then restore the clock from a GPS time fix.

The model keeps the *believed* time as an affine function of true simulated
time: a sync point plus elapsed-time scaled by a drift rate.  Drift matters
because dGPS readings on the two stations must stay synchronised without any
direct link between them.
"""

from __future__ import annotations

import datetime as _dt
from typing import Optional

from repro.sim.kernel import Simulation
from repro.sim.simtime import RTC_RESET_DATETIME


class RealTimeClock:
    """A settable, drifting clock derived from the simulation's true clock.

    Parameters
    ----------
    sim:
        Kernel (supplies true time and the epoch).
    drift_ppm:
        Clock drift in parts per million.  Positive runs fast.
    """

    def __init__(self, sim: Simulation, drift_ppm: float = 0.0, name: str = "rtc") -> None:
        self.sim = sim
        self.name = name
        self.drift_ppm = drift_ppm
        # Starts correct: synced to true time at construction.
        self._sync_true_time = sim.now
        self._believed_at_sync = sim.utcnow()

    def now(self) -> _dt.datetime:
        """The believed current UTC time."""
        elapsed = self.sim.now - self._sync_true_time
        believed_elapsed = elapsed * (1.0 + self.drift_ppm * 1e-6)
        return self._believed_at_sync + _dt.timedelta(seconds=believed_elapsed)

    def error_seconds(self) -> float:
        """Believed minus true time, in seconds (positive = clock fast)."""
        return (self.now() - self.sim.utcnow()).total_seconds()

    def set_to(self, when: _dt.datetime) -> None:
        """Set the clock (e.g. from a GPS time fix)."""
        if when.tzinfo is None:
            when = when.replace(tzinfo=_dt.timezone.utc)
        self._sync_true_time = self.sim.now
        self._believed_at_sync = when
        self.sim.trace.emit(self.name, "rtc_set", believed=when.isoformat())

    def set_from_true_time(self, offset_s: float = 0.0) -> None:
        """Sync to the true simulated time, optionally offset (clock skew)."""
        self.set_to(self.sim.utcnow() + _dt.timedelta(seconds=offset_s))

    def reset(self) -> None:
        """Power-loss reset: the clock restarts at the Unix epoch, 1/1/1970."""
        self._sync_true_time = self.sim.now
        self._believed_at_sync = RTC_RESET_DATETIME
        self.sim.trace.emit(self.name, "rtc_reset")

    @property
    def is_pre_deployment(self) -> bool:
        """True if the believed time is before the simulation epoch.

        A clock reporting 1970 is obviously untrusted; the *robust* check the
        paper uses (believed time earlier than the recorded last run) lives
        in :mod:`repro.core.recovery`.
        """
        return self.now() < self.sim.clock.epoch
