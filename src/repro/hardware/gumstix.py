"""The Gumstix ARM/Linux computer.

400-600 MHz, ~900 mW while running and "no useful sleep mode" — so the
platform's whole power story is that this board is only powered when there
is work for it (Section II).  The model tracks the power rail, a boot
delay, the main job generator launched on boot, and unclean-shutdown
effects on the CF card.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.energy.bus import PowerBus
from repro.energy.components import GUMSTIX
from repro.hardware.storage import CompactFlashCard
from repro.sim.kernel import Simulation
from repro.sim.process import Process


class Gumstix:
    """A power-switched Linux computer running one job per power cycle.

    Parameters
    ----------
    sim:
        Kernel.
    bus:
        The station's power bus; a ``power_w``-sized load is registered.
    name:
        Trace prefix, e.g. ``"base.gumstix"``.
    boot_s:
        Boot time from power-on to the job starting.
    cf_card:
        Data storage card (for the corruption-on-unclean-shutdown roll).
    """

    def __init__(
        self,
        sim: Simulation,
        bus: PowerBus,
        name: str = "gumstix",
        boot_s: float = 60.0,
        power_w: float = GUMSTIX.power_w,
        cf_card: Optional[CompactFlashCard] = None,
    ) -> None:
        self.sim = sim
        self.bus = bus
        self.name = name
        self.boot_s = boot_s
        self.cf_card = cf_card if cf_card is not None else CompactFlashCard(name=f"{name}.cf")
        self.load = bus.add_load(name, power_w)
        #: The main program, set by the station: a zero-argument callable
        #: returning a generator (the daily run sequence).
        self.on_boot: Optional[Callable[[], Generator]] = None
        self._session: Optional[Process] = None
        self._powered_since: Optional[float] = None
        self.power_cycles = 0
        self.unclean_shutdowns = 0
        self.total_on_time_s = 0.0
        #: Called as ``callback(clean)`` after every power-off; stations use
        #: this to drop peripheral rails (modem, GPS) with the computer.
        self.on_power_off: list = []

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def is_on(self) -> bool:
        """Whether the board is currently powered."""
        return self._powered_since is not None

    def uptime_s(self) -> float:
        """Seconds since power-on (0 if off)."""
        if self._powered_since is None:
            return 0.0
        return self.sim.now - self._powered_since

    # ------------------------------------------------------------------
    # Power control (driven by the MSP430)
    # ------------------------------------------------------------------
    def power_on(self) -> Optional[Process]:
        """Apply power: boot, then run ``on_boot``.  Returns the session process."""
        if self.is_on:
            return self._session
        self._powered_since = self.sim.now
        self.power_cycles += 1
        self.bus.loads.switch_on(self.name)
        self.sim.trace.emit(self.name, "power_on")
        self._session = self.sim.process(self._boot_and_run(), name=f"{self.name}.session")
        return self._session

    def power_off(self, clean: bool = True) -> None:
        """Remove power.

        ``clean=False`` models the MSP430 cutting the rail mid-task (the
        2-hour watchdog, or a brown-out): the running job is killed and the
        CF card takes a corruption roll.
        """
        if not self.is_on:
            return
        self.total_on_time_s += self.uptime_s()
        self._powered_since = None
        self.bus.loads.switch_off(self.name)
        if self._session is not None and self._session.is_alive:
            self._session.kill()
        self._session = None
        if clean:
            self.sim.trace.emit(self.name, "power_off_clean")
        else:
            self.unclean_shutdowns += 1
            roll = float(self.sim.rng.stream(f"{self.name}.cf").random())
            corrupted = self.cf_card.unclean_power_removal(roll)
            self.sim.trace.emit(self.name, "power_off_unclean", cf_corrupted=corrupted)
        for callback in list(self.on_power_off):
            callback(clean)

    def _boot_and_run(self):
        yield self.sim.timeout(self.boot_s)
        self.sim.trace.emit(self.name, "booted")
        if self.on_boot is not None:
            yield self.sim.process(self.on_boot(), name=f"{self.name}.job")
        # Job finished normally: the software halts the board and the MSP430
        # removes power.
        self.sim.trace.emit(self.name, "job_complete", uptime_s=self.uptime_s())
        self._session = None  # avoid self-kill in power_off
        self.power_off(clean=True)
