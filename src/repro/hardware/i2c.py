"""The I2C command channel between the Gumstix and the MSP430.

Fig 2 of the paper shows the two processors joined by I2C: the Gumstix uses
it to download the buffered voltage/sensor logs, rewrite the wake schedule
and read/set the RTC.  The bus model is a thin, synchronous wrapper that
records every transaction (useful both for tests and for reproducing the
Fig 2 division of I/O) and charges a small per-byte time cost to the caller
when used from a process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.hardware.msp430 import Msp430, ScheduleEntry
from repro.sim.kernel import Simulation


@dataclass(frozen=True)
class I2CTransaction:
    """One logged bus transaction."""

    time: float
    command: str
    nbytes: int


class I2CBus:
    """Synchronous command interface from the Gumstix to the MSP430."""

    #: Effective payload rate (100 kHz I2C less protocol overhead).
    BYTES_PER_SECOND = 8000.0

    def __init__(self, sim: Simulation, msp: Msp430, name: str = "i2c") -> None:
        self.sim = sim
        self.msp = msp
        self.name = name
        self.transactions: List[I2CTransaction] = []

    def _log(self, command: str, nbytes: int) -> None:
        self.transactions.append(I2CTransaction(self.sim.now, command, nbytes))

    def transfer_time_s(self, nbytes: int) -> float:
        """Bus time to move ``nbytes`` (callers may yield a timeout of this)."""
        return nbytes / self.BYTES_PER_SECOND

    # ------------------------------------------------------------------
    # Commands (mirroring the Fig 2 I/O split)
    # ------------------------------------------------------------------
    def read_voltage_log(self, consume: bool = True) -> List[Tuple[float, float]]:
        """Download the MSP430's buffered battery-voltage samples."""
        log = self.msp.read_voltage_log(consume=consume)
        self._log("read_voltage_log", nbytes=8 * len(log))
        return log

    def read_sensor_log(self, consume: bool = True) -> List[Tuple[float, str, float]]:
        """Download the MSP430's buffered sensor samples."""
        log = self.msp.read_sensor_log(consume=consume)
        self._log("read_sensor_log", nbytes=12 * len(log))
        return log

    def set_schedule(self, entries: List[ScheduleEntry]) -> None:
        """Rewrite the MSP430's RAM wake schedule."""
        self.msp.set_schedule(entries)
        self._log("set_schedule", nbytes=4 * len(entries))

    def read_rtc(self):
        """Read the MSP430's believed time."""
        self._log("read_rtc", nbytes=8)
        return self.msp.rtc.now()

    def set_rtc(self, when) -> None:
        """Set the MSP430's RTC (after a GPS time fix)."""
        self.msp.rtc.set_to(when)
        self._log("set_rtc", nbytes=8)

    def read_battery_voltage(self) -> float:
        """Immediate ADC reading of the battery terminal voltage."""
        self._log("read_battery_voltage", nbytes=2)
        return self.msp.battery_voltage_now()
