"""The MSP430 supervisor: sensing, power control and the wake schedule.

The MSP430 is the only always-on part of a Gumsense station.  It:

- samples the battery voltage every 30 minutes into a RAM buffer
  (Section III) along with the station's local sensors;
- holds the wake schedule **in RAM** — scheduled times-of-day at which it
  powers the Gumstix or the dGPS receiver.  RAM (and the RTC) are lost on
  total battery exhaustion, which is exactly the failure Section IV's
  automatic schedule-resetting recovers from;
- enforces the safety maximum runtime: the Gumstix is never allowed to run
  longer than two hours, so a hung transfer cannot flatten the battery
  (Section VI);
- schedules dGPS readings directly, so Gumstix-side software timing cannot
  drift the dGPS synchronisation between stations (Section II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.energy.bus import PowerBus
from repro.hardware.rtc import RealTimeClock
from repro.sim.kernel import Simulation
from repro.sim.simtime import DAY, HOUR, MINUTE


@dataclass(frozen=True)
class ScheduleEntry:
    """One RAM schedule slot: run ``action`` daily at ``hour`` (RTC time)."""

    hour: float
    action: str

    def __post_init__(self) -> None:
        if not 0.0 <= self.hour < 24.0:
            raise ValueError(f"hour must be in [0, 24), got {self.hour}")


class Msp430:
    """The always-on supervisor microcontroller.

    Parameters
    ----------
    sim, bus:
        Kernel and the station power bus.
    name:
        Trace prefix, e.g. ``"base.msp430"``.
    sample_interval_s:
        Battery/sensor sampling period (paper: 30 minutes).
    max_gumstix_runtime_s:
        The emergency cut-off (paper: 2 hours).
    flash_default_schedule:
        The schedule restored from flash after a brown-out reboot.  The RAM
        schedule is gone; this minimal default only wakes the Gumstix so the
        recovery logic (:mod:`repro.core.recovery`) can run.
    """

    #: RAM voltage/sensor buffer capacity (samples).
    BUFFER_CAPACITY = 8192

    def __init__(
        self,
        sim: Simulation,
        bus: PowerBus,
        name: str = "msp430",
        sample_interval_s: float = 30.0 * MINUTE,
        max_gumstix_runtime_s: float = 2.0 * HOUR,
        rtc_drift_ppm: float = 0.0,
        flash_default_schedule: Optional[List[ScheduleEntry]] = None,
    ) -> None:
        self.sim = sim
        self.bus = bus
        self.name = name
        self.sample_interval_s = sample_interval_s
        self.max_gumstix_runtime_s = max_gumstix_runtime_s
        self.rtc = RealTimeClock(sim, drift_ppm=rtc_drift_ppm, name=f"{name}.rtc")
        self.flash_default_schedule = flash_default_schedule or [
            ScheduleEntry(hour=12.0, action="wake_gumstix")
        ]
        # --- RAM state (lost on brown-out) ---
        self.schedule: List[ScheduleEntry] = list(self.flash_default_schedule)
        self.voltage_log: List[Tuple[float, float]] = []  # (rtc_hours, volts)
        self.sensor_log: List[Tuple[float, str, float]] = []  # (rtc_hours, sensor, value)
        # --- wiring ---
        self.actions: Dict[str, Callable[[], None]] = {}
        self.sensors: List = []  # objects with .name and .sample(time)->float
        self.halted = False
        self.watchdog_cuts = 0
        self._schedule_generation = 0
        self._scheduler_wait = None
        self._resume = sim.event(f"{name}.resume")
        bus.on_brownout.append(self._on_brownout)
        bus.on_recovery.append(self._on_recovery)
        sim.process(self._sampler(), name=f"{name}.sampler")
        sim.process(self._scheduler(), name=f"{name}.scheduler")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register_action(self, name: str, callback: Callable[[], None]) -> None:
        """Bind a schedule action name to a callback (e.g. power the Gumstix)."""
        self.actions[name] = callback

    def attach_sensor(self, sensor) -> None:
        """Attach a station sensor; it will be sampled each interval."""
        self.sensors.append(sensor)

    # ------------------------------------------------------------------
    # RAM schedule management (the Gumstix calls these over I2C)
    # ------------------------------------------------------------------
    def set_schedule(self, entries: List[ScheduleEntry]) -> None:
        """Replace the RAM schedule."""
        self.schedule = list(entries)
        self._schedule_generation += 1
        self._kick_scheduler()
        self.sim.trace.emit(
            self.name, "schedule_set", entries=[(e.hour, e.action) for e in entries]
        )

    def read_voltage_log(self, consume: bool = True) -> List[Tuple[float, float]]:
        """The buffered (rtc_hours, volts) samples; cleared if ``consume``."""
        log = list(self.voltage_log)
        if consume:
            self.voltage_log.clear()
        return log

    def read_sensor_log(self, consume: bool = True) -> List[Tuple[float, str, float]]:
        """The buffered sensor samples; cleared if ``consume``."""
        log = list(self.sensor_log)
        if consume:
            self.sensor_log.clear()
        return log

    def battery_voltage_now(self) -> float:
        """An immediate ADC reading of the battery terminal voltage."""
        return self.bus.terminal_voltage()

    # ------------------------------------------------------------------
    # Brown-out life-cycle
    # ------------------------------------------------------------------
    def _on_brownout(self) -> None:
        self.halted = True
        self.schedule = []
        self.voltage_log.clear()
        self.sensor_log.clear()
        self.rtc.reset()
        self.sim.trace.emit(self.name, "halted")

    def _on_recovery(self) -> None:
        if not self.halted:
            return
        self.halted = False
        # Reboot: RAM schedule restored from the flash default; the RTC stays
        # wrong (1970 + elapsed) until recovery logic fixes it.
        self.schedule = list(self.flash_default_schedule)
        self._schedule_generation += 1
        self.sim.trace.emit(self.name, "rebooted")
        resume, self._resume = self._resume, self.sim.event(f"{self.name}.resume")
        resume.succeed()

    def _wait_if_halted(self):
        while self.halted:
            yield self._resume

    # ------------------------------------------------------------------
    # Background processes
    # ------------------------------------------------------------------
    def _sampler(self):
        """Battery/sensor sampling, armed a day of wakes at a time.

        The cadence is fixed, so a whole day of wake instants is known up
        front and can be armed as one
        :meth:`~repro.sim.kernel.Simulation.schedule_many` batch — one heap
        transaction per day instead of one per sample (at the 30-minute
        default: 1 instead of 48).  A brown-out abandons the rest of the
        plan: the first sample after recovery happens at the resume
        instant and the plan restarts from there, which is exactly what
        the old timeout-per-sample loop did (its armed wake fired into
        ``_wait_if_halted`` and sampled on resume).  Abandoned wakes pop
        later as empty no-callback events.  Wake instants are
        ``plan_start + interval * (i + 1)`` — identical to the old loop's
        repeated addition for the dyadic defaults (1800 s, 21600 s).
        """
        sim = self.sim
        interval = self.sample_interval_s
        slots = max(1, int(DAY / interval))
        while True:
            timeouts = sim.schedule_many([interval * (i + 1) for i in range(slots)])
            for timeout in timeouts:
                yield timeout
                if self.halted:
                    yield from self._wait_if_halted()
                    self._take_sample()
                    break  # the RAM plan died with the brown-out: replan
                self._take_sample()

    def _take_sample(self) -> None:
        rtc_hours = self.rtc.now().timestamp() / 3600.0
        # Settled read: the periodic ADC conversion reports the steady
        # state that held up to this instant, so a schedule slot firing
        # at the same timestamp (e.g. the noon GPS toggle) cannot leak
        # into the sample via dispatch order.
        volts = self.bus.terminal_voltage(settled=True)
        self.voltage_log.append((rtc_hours, volts))
        self.sim.trace.emit(self.name, "voltage_sample", volts=round(volts, 4))
        for sensor in self.sensors:
            value = sensor.sample(self.sim.now)
            self.sensor_log.append((rtc_hours, sensor.name, value))
        excess = len(self.voltage_log) - self.BUFFER_CAPACITY
        if excess > 0:
            del self.voltage_log[:excess]
        excess = len(self.sensor_log) - self.BUFFER_CAPACITY
        if excess > 0:
            del self.sensor_log[:excess]

    def _kick_scheduler(self) -> None:
        if self._scheduler_wait is not None and not self._scheduler_wait.triggered:
            self._scheduler_wait.succeed("schedule_changed")

    def _plan_day(self) -> List[Tuple[float, ScheduleEntry]]:
        """All upcoming schedule slots as ``(delay_seconds, entry)``, ascending.

        A slot already past (or due within a tick) rolls over to tomorrow,
        matching the paper's daily wake cycle.  The whole day is planned from
        a single RTC read, so the plan can be armed as one
        :meth:`~repro.sim.kernel.Simulation.schedule_many` batch.
        """
        believed = self.rtc.now()
        now_hours = believed.hour + believed.minute / 60.0 + believed.second / 3600.0
        plan: List[Tuple[float, ScheduleEntry]] = []
        for entry in self.schedule:
            delta_hours = entry.hour - now_hours
            if delta_hours <= 1e-9:
                delta_hours += 24.0
            plan.append((delta_hours * HOUR, entry))
        plan.sort(key=lambda slot: slot[0])
        return plan

    def _scheduler(self):
        sim = self.sim
        while True:
            yield from self._wait_if_halted()
            if not self.schedule:
                # No schedule: wait for a change.
                self._scheduler_wait = sim.event(f"{self.name}.sched_wait")
                yield self._scheduler_wait
                continue
            generation = self._schedule_generation
            plan = self._plan_day()
            # Arm the whole day in one batch: one clock read and one
            # validation pass instead of per-slot scheduling.
            timeouts = sim.schedule_many([delay for delay, _ in plan])
            for timeout, (_, entry) in zip(timeouts, plan):
                self._scheduler_wait = sim.event(f"{self.name}.sched_wait")
                yield sim.any_of([timeout, self._scheduler_wait])
                if self.halted or self._schedule_generation != generation:
                    break  # rewritten or browned-out mid-day: replan
                if not timeout.processed:
                    break  # woken without the slot firing: replan
                sim.trace.emit(self.name, "schedule_fire", action=entry.action, hour=entry.hour)
                callback = self.actions.get(entry.action)
                if callback is None:
                    sim.trace.emit(self.name, "schedule_action_missing", action=entry.action)
                else:
                    callback()
            # Day exhausted (or plan abandoned): loop around and replan.

    # ------------------------------------------------------------------
    # Gumstix supervision
    # ------------------------------------------------------------------
    def supervise_gumstix(self, gumstix) -> None:
        """Power the Gumstix and enforce the 2-hour emergency cut-off."""
        if self.halted or gumstix.is_on:
            return
        gumstix.power_on()
        self.sim.process(self._watchdog(gumstix), name=f"{self.name}.watchdog")

    def _watchdog(self, gumstix):
        started = self.sim.now
        yield self.sim.timeout(self.max_gumstix_runtime_s)
        if gumstix.is_on and gumstix.uptime_s() >= self.max_gumstix_runtime_s - 1e-6:
            self.watchdog_cuts += 1
            self.sim.trace.emit(
                self.name, "watchdog_cut", after_s=self.sim.now - started
            )
            gumstix.power_off(clean=False)
