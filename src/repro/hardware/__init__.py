"""Hardware models of the Gumsense platform.

The Gumsense board (ref [8] of the paper) pairs two processors:

- an **MSP430** microcontroller that is always powered, samples the battery
  and local sensors, keeps the real-time clock and the wake schedule (in
  RAM — lost on total battery exhaustion), and switches the power rails of
  everything else;
- a **Gumstix** ARM/Linux computer (~900 mW, no useful sleep mode) that is
  only powered for the daily heavy work: probe communications, dGPS file
  handling and GPRS transfers.

This package models both processors, the I2C command channel between them,
the real-time clock (including its reset-to-1970 behaviour), and the
compact-flash card with its corruption failure mode (Section VI).
"""

from repro.hardware.gumstix import Gumstix
from repro.hardware.i2c import I2CBus, I2CTransaction
from repro.hardware.msp430 import Msp430, ScheduleEntry
from repro.hardware.rtc import RealTimeClock
from repro.hardware.storage import CompactFlashCard, StorageCorruption, StoredFile

__all__ = [
    "CompactFlashCard",
    "Gumstix",
    "I2CBus",
    "I2CTransaction",
    "Msp430",
    "RealTimeClock",
    "ScheduleEntry",
    "StorageCorruption",
    "StoredFile",
]
