"""Determinism & simulation-correctness static analysis.

The reproduction's claims (Table II schedules, Fig. 4/5 traces, state-sync
convergence) are only checkable because a given seed replays bit-for-bit.
This package enforces the invariants that make that true:

- **static rules** (:mod:`repro.lint.rules`) — AST checks banning wall-clock
  reads, ad-hoc RNG construction, float equality on physical quantities,
  mutable defaults, swallowed exceptions, and literal yields in process
  generators;
- **an engine** (:mod:`repro.lint.engine`) — file walking, inline
  ``# repro-lint: disable=<rule>`` suppression, structured findings;
- **a CLI gate** (:mod:`repro.lint.cli`, installed as ``repro-lint``) —
  text/JSON output, exit 0/1 for CI;
- **a runtime harness** (:mod:`repro.lint.determinism`) — replays a short
  mission twice with one seed and diffs trace digests.

See ``docs/determinism.md`` for the invariant catalogue and how to add rules.
"""

from repro.lint.engine import lint_paths, lint_source
from repro.lint.findings import Finding, Severity
from repro.lint.rules import RULE_REGISTRY, Rule, default_rules, register

#: Harness symbols resolved lazily so ``python -m repro.lint.determinism``
#: does not trigger the found-in-sys.modules RuntimeWarning.
_DETERMINISM_EXPORTS = ("DeterminismReport", "check_determinism", "trace_digest")


def __getattr__(name: str):
    """Lazy access to the determinism harness exports."""
    if name in _DETERMINISM_EXPORTS:
        from repro.lint import determinism

        return getattr(determinism, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DeterminismReport",
    "check_determinism",
    "trace_digest",
    "lint_paths",
    "lint_source",
    "Finding",
    "Severity",
    "RULE_REGISTRY",
    "Rule",
    "default_rules",
    "register",
]
