"""The lint engine: file discovery, parsing, suppression, rule dispatch.

The engine is deliberately dumb: collect ``.py`` files, parse each once,
hand the tree to every enabled rule, drop findings the source suppresses
inline, and return the rest sorted.  All cleverness lives in the rules.

Inline suppression::

    rng = np.random.default_rng(seed)  # repro-lint: disable=rng-discipline

``disable=all`` silences every rule on that line.  Suppressions are
line-scoped by default — file-wide opt-outs hide new violations.

File-level suppression is the narrow exception, for modules that *are*
the pattern (rule fixtures, golden race reproductions)::

    # repro-lint: disable-file=same-time-schedule

The directive must be a comment in the first five lines and must name
explicit rule ids — ``disable-file=all`` is deliberately rejected, so a
file can opt out of the rules it exists to violate without silencing
everything else.
"""

from __future__ import annotations

import ast
import io
import tokenize
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileContext, Rule, default_rules

# Importing the module registers the event-ordering race rules; every
# entry point (CLI, tests, tie_replay) reaches the registry through the
# engine, so this is the one place that has to know they exist.
import repro.lint.races  # noqa: E402,F401  (registration side effect)

#: Marker introducing an inline suppression comment.
SUPPRESS_MARKER = "repro-lint:"

#: How many leading lines may carry a ``disable-file=`` directive.
FILE_SUPPRESS_WINDOW = 5


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through as-is)."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed on that line.

    Uses the tokenizer (not a regex) so the marker inside string literals
    does not suppress anything.  ``{"all"}`` means every rule.
    """
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            text = token.string.lstrip("#").strip()
            if not text.startswith(SUPPRESS_MARKER):
                continue
            directive = text[len(SUPPRESS_MARKER):].strip()
            if not directive.startswith("disable="):
                continue
            rules = {r.strip() for r in directive[len("disable="):].split(",") if r.strip()}
            if rules:
                suppressions.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass
    return suppressions


def parse_file_suppressions(source: str) -> Set[str]:
    """Rule ids suppressed for the whole file.

    A ``# repro-lint: disable-file=<rule>[,<rule>...]`` comment within the
    first :data:`FILE_SUPPRESS_WINDOW` lines suppresses those rules
    everywhere in the file — the escape hatch for fixture-heavy modules
    whose *purpose* is to contain violations.  Uses the tokenizer, so the
    marker inside a docstring never suppresses anything, and ``all`` is
    rejected: a file may only opt out of named rules.
    """
    suppressed: Set[str] = set()
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.start[0] > FILE_SUPPRESS_WINDOW:
                break
            if token.type != tokenize.COMMENT:
                continue
            text = token.string.lstrip("#").strip()
            if not text.startswith(SUPPRESS_MARKER):
                continue
            directive = text[len(SUPPRESS_MARKER):].strip()
            if not directive.startswith("disable-file="):
                continue
            rules = {r.strip() for r in
                     directive[len("disable-file="):].split(",") if r.strip()}
            suppressed.update(rules - {"all"})
    except tokenize.TokenError:
        pass
    return suppressed


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[Rule]] = None,
) -> List[Finding]:
    """Lint one source string; the unit the tests drive directly."""
    if rules is None:
        rules = default_rules()
    posix_path = path.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="parse-error",
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"cannot parse: {exc.msg}",
                severity=Severity.ERROR,
            )
        ]
    ctx = FileContext(path=path, posix_path=posix_path, source=source, tree=tree)
    suppressions = parse_suppressions(source)
    file_suppressions = parse_file_suppressions(source)
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if finding.rule in file_suppressions:
                continue
            suppressed = suppressions.get(finding.line, set())
            if "all" in suppressed or finding.rule in suppressed:
                continue
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Iterable[Rule]] = None,
) -> List[Finding]:
    """Lint every python file under ``paths`` and return sorted findings."""
    if rules is None:
        rules = default_rules()
    else:
        rules = list(rules)
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(
                Finding(
                    rule="read-error",
                    path=str(path),
                    line=0,
                    col=0,
                    message=f"cannot read: {exc}",
                    severity=Severity.ERROR,
                )
            )
            continue
        findings.extend(lint_source(source, path=str(path), rules=rules))
    findings.sort(key=Finding.sort_key)
    return findings
