# repro-lint: disable-file=yield-discipline
#   (the analysis generators below yield plain tuples; they are AST
#   plumbing, not simulation processes)
"""Event-ordering race rules: the static prong of the race detector.

Same-timestamp events dispatch in heap-insertion order under the default
``fifo`` tie-break policy — an *accident of implementation*, not a
contract.  Code that works only because of that accident breaks the
moment the kernel batches same-timestamp dispatch or a replay runs under
a perturbed policy (``Simulation(tie_break="shuffle:<seed>")``).  These
rules catch the three static shapes of that dependence:

- ``same-time-schedule`` — two schedule-family calls in one function that
  can land on the same timestamp, whose callbacks both *write* shared
  state (the final value depends on dispatch order);
- ``order-dependent-callback`` — a same-timestamp sibling pair where one
  callback *reads* state the other writes (the read observes a
  tie-order-dependent snapshot);
- ``tie-break-assumption`` — code outside the kernel touching ``_queue``
  or ``_sequence`` directly (raw heap tie keys are policy-dependent
  integers, not a contract; use ``events_scheduled`` / ``queue_depth`` /
  ``peek()``).

The dynamic prong (:mod:`repro.lint.tie_replay`) replays whole missions
under perturbed policies and bisects digest divergences back to schedule
callsites; these rules are its cheap, always-on complement.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, Rule, dotted_parts, register

#: Method names whose call mutates the receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "appendleft", "extendleft",
})

#: Attribute names that enqueue an event when called.
_SCHEDULE_ATTRS = frozenset(
    {"schedule", "call_at", "timeout", "schedule_many", "_schedule_now"}
)


def _norm_time(node: ast.AST) -> str:
    """Canonical text for a time expression, so ``0`` and ``0.0`` match."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return repr(float(node.value))
    if (isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.UAdd)
            and isinstance(node.operand, ast.Constant)):
        return _norm_time(node.operand)
    return ast.dump(node)


def _symbol(node: ast.AST) -> Optional[str]:
    """The shared-state symbol an expression denotes (``self.x``, ``buf``)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    parts = dotted_parts(node)
    if parts is None:
        return None
    return ".".join(parts)


class _CallbackState:
    """Read/write sets of symbols a callback body touches.

    Symbols are dotted names (``self.backlog``, ``counter``); names local
    to the callback (parameters, plain local assignments) are excluded —
    only state visible to a sibling callback can race.
    """

    def __init__(self, reads: Set[str], writes: Set[str]) -> None:
        self.reads = reads
        self.writes = writes


def _analyze_callback(args: ast.arguments, body: List[ast.stmt]) -> _CallbackState:
    reads: Set[str] = set()
    writes: Set[str] = set()
    local: Set[str] = set()
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        local.add(arg.arg)
    if args.vararg is not None:
        local.add(args.vararg.arg)
    if args.kwarg is not None:
        local.add(args.kwarg.arg)
    # ``self``/``cls`` are parameters syntactically, but they denote the
    # *shared receiver* both sibling callbacks run against — attribute
    # state hanging off them races exactly like closure state.
    local.discard("self")
    local.discard("cls")

    nonlocals: Set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Nonlocal, ast.Global)):
                nonlocals.update(node.names)

    def note_write(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            # A plain local rebind is private to the callback unless the
            # name was hoisted out with nonlocal/global.
            if target.id in nonlocals:
                writes.add(target.id)
            else:
                local.add(target.id)
            return
        sym = _symbol(target)
        if sym is not None and sym.split(".", 1)[0] not in local:
            writes.add(sym)

    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, (ast.Name, ast.Attribute, ast.Subscript)) \
                                and isinstance(getattr(leaf, "ctx", None), ast.Store):
                            note_write(leaf)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                note_write(node.target)
                if isinstance(node, ast.AugAssign):
                    # ``x += 1`` reads the prior value too.
                    sym = _symbol(node.target)
                    if sym is not None and sym.split(".", 1)[0] not in local:
                        reads.add(sym)
            elif isinstance(node, ast.NamedExpr):
                note_write(node.target)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                sym = _symbol(node.func.value)
                if sym is not None and sym.split(".", 1)[0] not in local:
                    if node.func.attr in _MUTATOR_METHODS:
                        writes.add(sym)
                    else:
                        reads.add(sym)
            elif isinstance(node, (ast.Name, ast.Attribute)) \
                    and isinstance(node.ctx, ast.Load):
                sym = _symbol(node)
                if sym is not None and sym.split(".", 1)[0] not in local:
                    reads.add(sym)
    # A symbol both read and written stays in both sets; prefixes of a
    # written symbol do not count as reads of it (handled by exact match).
    return _CallbackState(reads=reads, writes=writes)


class _ScheduleCall:
    """One schedule-family call with its timing key and callback state."""

    __slots__ = ("node", "time_key", "state", "label")

    def __init__(self, node: ast.Call, time_key: str,
                 state: Optional[_CallbackState], label: str) -> None:
        self.node = node
        self.time_key = time_key
        self.state = state
        self.label = label


class _SameTimeAnalysis:
    """Per-function same-timestamp schedule groups for one module."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        #: (function node, [calls]) per analyzed function.
        self.functions: List[Tuple[ast.AST, List[_ScheduleCall]]] = []
        self._module_defs: Dict[str, ast.AST] = {}
        self._class_methods: Dict[ast.ClassDef, Dict[str, ast.AST]] = {}
        tree = ctx.tree
        for node in getattr(tree, "body", []):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._module_defs[node.name] = node
            elif isinstance(node, ast.ClassDef):
                methods = {}
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        methods[item.name] = item
                self._class_methods[node] = methods
        for func, cls in self._iter_functions(tree):
            calls = self._collect_calls(func, cls)
            if len(calls) >= 2:
                self.functions.append((func, calls))

    @staticmethod
    def _iter_functions(tree: ast.AST):
        """Every function/method with its enclosing class (or None)."""
        stack: List[Tuple[ast.AST, Optional[ast.ClassDef]]] = [(tree, None)]
        while stack:
            node, cls = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    stack.append((child, child))
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield child, cls
                    stack.append((child, cls))

    def _collect_calls(self, func: ast.AST, cls: Optional[ast.ClassDef]
                       ) -> List[_ScheduleCall]:
        calls: List[_ScheduleCall] = []
        by_name: Dict[str, _ScheduleCall] = {}
        local_defs: Dict[str, ast.AST] = {}
        for stmt in func.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local_defs[stmt.name] = stmt

        def resolve(expr: ast.AST) -> Optional[_CallbackState]:
            if isinstance(expr, ast.Lambda):
                return _analyze_callback(expr.args, [ast.Expr(expr.body)])
            if (isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self" and cls is not None):
                target = self._class_methods.get(cls, {}).get(expr.attr)
                if target is not None:
                    return _analyze_callback(target.args, target.body)
                return None
            if isinstance(expr, ast.Name):
                target = local_defs.get(expr.id) or self._module_defs.get(expr.id)
                if target is not None:
                    return _analyze_callback(target.args, target.body)
            return None

        def walk_skipping_defs(node: ast.AST):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    continue
                yield child
                yield from walk_skipping_defs(child)

        for node in walk_skipping_defs(func):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            attr = node.func.attr
            if attr not in _SCHEDULE_ATTRS:
                continue
            entry: Optional[_ScheduleCall] = None
            if attr == "timeout" and node.args:
                entry = _ScheduleCall(
                    node, "delay:" + _norm_time(node.args[0]), None, "timeout")
            elif attr == "call_at" and len(node.args) >= 2:
                entry = _ScheduleCall(
                    node, "at:" + _norm_time(node.args[0]),
                    resolve(node.args[1]), "call_at")
            elif attr == "schedule" and node.args:
                delay: ast.AST = ast.Constant(0)
                if len(node.args) >= 2:
                    delay = node.args[1]
                else:
                    for kw in node.keywords:
                        if kw.arg == "delay":
                            delay = kw.value
                entry = _ScheduleCall(
                    node, "delay:" + _norm_time(delay), None, "schedule")
            elif attr == "_schedule_now" and node.args:
                entry = _ScheduleCall(node, "delay:0.0", None, "_schedule_now")
            elif attr == "schedule_many" and node.args \
                    and isinstance(node.args[0], (ast.List, ast.Tuple)):
                for elt in node.args[0].elts:
                    calls.append(_ScheduleCall(
                        node, "delay:" + _norm_time(elt), None, "schedule_many"))
                continue
            if entry is not None:
                calls.append(entry)

        # Second pass: ``t = sim.timeout(0)`` followed by
        # ``t.callbacks.append(cb)`` attaches cb as t's callback.
        for stmt in func.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                for entry in calls:
                    if entry.node is stmt.value:
                        by_name[stmt.targets[0].id] = entry
        for node in walk_skipping_defs(func):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "append" and node.args):
                chain = dotted_parts(node.func.value)
                if chain and len(chain) == 2 and chain[1] == "callbacks" \
                        and chain[0] in by_name:
                    entry = by_name[chain[0]]
                    state = resolve(node.args[0])
                    if state is not None:
                        if entry.state is None:
                            entry.state = state
                        else:
                            entry.state.reads |= state.reads
                            entry.state.writes |= state.writes
        return calls

    def groups(self) -> Iterator[List[_ScheduleCall]]:
        """Same-timestamp groups (≥2 calls sharing a time key)."""
        for _func, calls in self.functions:
            buckets: Dict[str, List[_ScheduleCall]] = {}
            for call in calls:
                buckets.setdefault(call.time_key, []).append(call)
            for key in sorted(buckets):
                if len(buckets[key]) >= 2:
                    yield buckets[key]


def _conflicts(group: List[_ScheduleCall]):
    """Yield (kind, anchor, other, symbols) for conflicting pairs.

    ``kind`` is ``"ww"`` (both write) or ``"rw"`` (anchor reads what the
    other writes); the anchor is the call the finding is reported on.
    """
    for i in range(len(group)):
        for j in range(i + 1, len(group)):
            a, b = group[i], group[j]
            if a.state is None or b.state is None:
                continue
            shared_writes = a.state.writes & b.state.writes
            if shared_writes:
                yield "ww", b, a, sorted(shared_writes)
            rw_b = (a.state.writes & b.state.reads) - shared_writes
            if rw_b:
                yield "rw", b, a, sorted(rw_b)
            rw_a = (b.state.writes & a.state.reads) - shared_writes
            if rw_a:
                yield "rw", a, b, sorted(rw_a)


# ----------------------------------------------------------------------
# Rule 11: same-time writes to shared state
# ----------------------------------------------------------------------
@register
class SameTimeScheduleRule(Rule):
    """Same-timestamp callbacks that both write shared state race.

    When two schedule-family calls in one function land on the same
    timestamp and their callbacks both mutate the same attribute or
    closure, the final value depends on dispatch order within the tie
    group — which is heap-insertion order today and anything else the day
    the kernel batches same-timestamp dispatch.  Either stagger the
    schedules, merge the callbacks, or make the writes commutative.
    """

    id = "same-time-schedule"
    description = ("same-timestamp schedule calls whose callbacks write "
                   "shared state — dispatch-order race")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        analysis = _SameTimeAnalysis(ctx)
        for group in analysis.groups():
            for kind, anchor, other, symbols in _conflicts(group):
                if kind != "ww":
                    continue
                yield self.finding(
                    ctx, anchor.node,
                    f"{anchor.label}() lands on the same timestamp as the "
                    f"{other.label}() on line {other.node.lineno} and both "
                    f"callbacks write {', '.join(symbols)}; the surviving "
                    "value depends on tie-break order",
                )


# ----------------------------------------------------------------------
# Rule 12: same-time read-after-write
# ----------------------------------------------------------------------
@register
class OrderDependentCallbackRule(Rule):
    """A callback reading state a same-timestamp sibling writes races.

    The reader observes either the old or the new value depending purely
    on which same-timestamp event dispatches first.  Make the dependency
    explicit (chain the callbacks, or schedule the reader strictly
    later) instead of relying on insertion order.
    """

    id = "order-dependent-callback"
    description = ("callback reads state written by a same-timestamp "
                   "sibling callback — result depends on tie order")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        analysis = _SameTimeAnalysis(ctx)
        for group in analysis.groups():
            for kind, anchor, other, symbols in _conflicts(group):
                if kind != "rw":
                    continue
                yield self.finding(
                    ctx, anchor.node,
                    f"{anchor.label}() callback reads {', '.join(symbols)} "
                    f"which the same-timestamp {other.label}() on line "
                    f"{other.node.lineno} writes; the value it sees depends "
                    "on tie-break order",
                )


# ----------------------------------------------------------------------
# Rule 13: direct queue/sequence access
# ----------------------------------------------------------------------
@register
class TieBreakAssumptionRule(Rule):
    """Code outside the kernel must not touch ``_queue`` / ``_sequence``.

    The heap's tie component is a policy-dependent key (a counter under
    fifo, its negation under lifo, a 128-bit composite under shuffle),
    not a stable contract.  Comparing, indexing or counting via
    ``sim._queue`` / ``sim._sequence`` bakes the fifo accident into the
    caller.  Use ``Simulation.events_scheduled`` / ``queue_depth`` /
    ``peek()``, or the ``tie_break`` policy hook.
    """

    id = "tie-break-assumption"
    description = ("direct _queue/_sequence access outside the kernel — "
                   "tie keys are policy-dependent, use the public accessors")
    #: The kernel triple implements the queue; it is the only sanctioned
    #: toucher of its own internals.
    exempt_path_suffixes = ("sim/kernel.py", "sim/events.py", "sim/process.py")

    _INTERNALS = frozenset({"_queue", "_sequence"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in self._INTERNALS:
                continue
            yield self.finding(
                ctx, node,
                f"direct access to {node.attr} couples this code to "
                "policy-dependent heap tie keys; use "
                "Simulation.events_scheduled / queue_depth / peek() "
                "instead",
            )


#: The static prong's rule ids, in registry order — ``repro-sim races``
#: and the CI race gate select exactly these.
RACE_RULE_IDS = (
    SameTimeScheduleRule.id,
    OrderDependentCallbackRule.id,
    TieBreakAssumptionRule.id,
)
