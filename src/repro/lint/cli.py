"""``repro-lint``: the command-line front end and CI gate.

Usage::

    repro-lint src/repro                       # text findings, exit 0/1
    repro-lint src/repro --format json         # machine-readable
    repro-lint --list-rules                    # what is enforced
    repro-lint src/repro --disable float-equality
    repro-lint --check-determinism --days 0.5  # also replay a mission twice

Exit code is 0 iff no blocking findings (and, when requested, the
determinism replay matched).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.engine import lint_paths
from repro.lint.findings import Finding, Severity
from repro.lint.rules import RULE_REGISTRY, default_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism & simulation-correctness static analysis "
                    "for the repro codebase.",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint (default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run exclusively")
    parser.add_argument("--disable", default=None, metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    parser.add_argument("--warnings-ok", action="store_true",
                        help="exit 0 when only warning-severity findings remain")
    parser.add_argument("--check-determinism", action="store_true",
                        help="also run a short mission twice and diff trace digests")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for --check-determinism")
    parser.add_argument("--days", type=float, default=0.5,
                        help="mission length for --check-determinism")
    return parser


def _csv(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def _render_text(findings: List[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    if findings:
        lines.append("")
    lines.append(f"{len(findings)} finding(s): {errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


def _render_json(findings: List[Finding], determinism_summary: Optional[dict]) -> str:
    payload = {
        "version": 1,
        "findings": [finding.to_dict() for finding in findings],
        "counts": {
            "total": len(findings),
            "error": sum(1 for f in findings if f.severity is Severity.ERROR),
            "warning": sum(1 for f in findings if f.severity is Severity.WARNING),
        },
    }
    if determinism_summary is not None:
        payload["determinism"] = determinism_summary
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, rule_cls in sorted(RULE_REGISTRY.items()):
            print(f"{rule_id:<16} [{rule_cls.severity.value}] {rule_cls.description}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        # A typo'd path must not report "0 findings" and pass the CI gate.
        print(f"repro-lint: no such file or directory: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    try:
        rules = default_rules(select=_csv(args.select), disable=_csv(args.disable))
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2

    findings = lint_paths(args.paths, rules=rules)

    determinism_summary = None
    determinism_ok = True
    if args.check_determinism:
        from repro.lint.determinism import check_determinism

        report = check_determinism(seed=args.seed, days=args.days)
        determinism_ok = report.identical
        determinism_summary = {
            "seed": report.seed,
            "days": report.days,
            "digest_a": report.digest_a,
            "digest_b": report.digest_b,
            "identical": report.identical,
        }

    if args.format == "json":
        print(_render_json(findings, determinism_summary))
    else:
        print(_render_text(findings))
        if determinism_summary is not None:
            status = "identical" if determinism_ok else "DIVERGED"
            print(f"determinism replay (seed={args.seed}, {args.days:g} d): {status}")

    blocking = [
        f for f in findings
        if f.severity is Severity.ERROR or not args.warnings_ok
    ]
    return 0 if not blocking and determinism_ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
