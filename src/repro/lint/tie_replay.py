"""Perturbed-tie replay: the dynamic prong of the race detector.

The static rules in :mod:`repro.lint.races` catch code *shaped* like an
event-ordering race; this module checks the *effect*: a mission replayed
under perturbed same-timestamp tie-break policies must tell the same
story.  Same-timestamp events have no defined order — the kernel's seq
counter is an implementation detail — so any trace difference that
appears when only the tie order changes is a real race.

Within one instant the *set* of trace records is the contract but their
relative order is presentation (it necessarily permutes with the tie
policy), so traces are compared after :func:`normalize_tie_order`: sort
the canonical lines within each equal-timestamp group, then digest.

On divergence the harness bisects to the first diverging normalized
record, re-runs the two policies with kernel tie diagnostics switched on
(:meth:`repro.sim.kernel.Simulation.enable_tie_diagnostics`), and diffs
the dispatch order at the diverging instant to name the pair of schedule
callsites whose relative order flipped — reported as structured
:class:`~repro.lint.findings.Finding` objects under the
``tie-order-divergence`` rule id.

Run directly::

    python -m repro.lint.tie_replay --seed 0 --days 10

or via ``repro-sim races`` (which also runs the static prong).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.lint.determinism import (
    build_mission,
    lines_digest,
    record_canonical,
    trace_digest,
)
from repro.lint.findings import Finding, Severity

#: Rule id carried by dynamic-prong findings.
DIVERGENCE_RULE = "tie-order-divergence"

#: Default policy set: the kernel default plus one deterministic shuffle.
DEFAULT_POLICIES = ("fifo", "shuffle:1")


def normalize_tie_order(lines: Sequence[str]) -> List[str]:
    """Canonical trace lines with same-timestamp groups internally sorted.

    The time prefix (everything before the first ``|``) is rendered with
    fixed precision by :func:`record_canonical`, so string equality of the
    prefix is instant equality.  Cross-instant order is preserved — only
    within-instant order, which legitimately varies with the tie-break
    policy, is normalised away.
    """
    normalized: List[str] = []
    group: List[str] = []
    open_key: Optional[str] = None
    for line in lines:
        time_key = line.split("|", 1)[0]
        if time_key != open_key:
            normalized.extend(sorted(group))
            group = []
            open_key = time_key
        group.append(line)
    normalized.extend(sorted(group))
    return normalized


@dataclass(frozen=True)
class PolicyRun:
    """One mission replay under one tie-break policy."""

    policy: str
    digest: str
    normalized_digest: str
    records: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "digest": self.digest,
            "normalized_digest": self.normalized_digest,
            "records": self.records,
        }


@dataclass(frozen=True)
class TieDivergence:
    """First normalized-trace divergence between baseline and one policy."""

    policy: str
    #: Index into the normalized line sequence.
    index: int
    #: Simulated time of the diverging record (seconds).
    time: float
    baseline_line: str
    perturbed_line: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "index": self.index,
            "time": self.time,
            "baseline_line": self.baseline_line,
            "perturbed_line": self.perturbed_line,
        }


@dataclass(frozen=True)
class TieReplayReport:
    """Outcome of a perturbed-tie replay comparison."""

    seed: int
    days: float
    policies: Tuple[str, ...]
    runs: Tuple[PolicyRun, ...]
    divergences: Tuple[TieDivergence, ...]
    findings: Tuple[Finding, ...] = field(default=())

    @property
    def robust(self) -> bool:
        """True when every policy reproduced the baseline's normalized digest."""
        return not self.divergences

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "days": self.days,
            "policies": list(self.policies),
            "robust": self.robust,
            "runs": [run.to_dict() for run in self.runs],
            "divergences": [div.to_dict() for div in self.divergences],
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def format(self) -> str:
        """Human-readable verdict, including bisection results on failure."""
        lines = [
            f"tie replay: seed={self.seed} days={self.days:g} "
            f"policies={','.join(self.policies)}"
        ]
        for run in self.runs:
            lines.append(
                f"  {run.policy}: {run.records} records, "
                f"normalized digest {run.normalized_digest[:16]}…"
            )
        if self.robust:
            lines.append("tie replay OK: all policies agree")
            return "\n".join(lines)
        lines.append("tie replay FAILED: trace depends on same-timestamp order")
        for div in self.divergences:
            lines.append(
                f"  {div.policy}: first divergence at normalized record "
                f"{div.index} (t={div.time:.9f})"
            )
            lines.append(f"    baseline:  {div.baseline_line}")
            lines.append(f"    perturbed: {div.perturbed_line}")
        for finding in self.findings:
            lines.append("  " + finding.render())
        return "\n".join(lines)


#: Builds a runnable mission for one tie-break policy.  Must return an
#: object with ``.sim`` (the :class:`~repro.sim.kernel.Simulation`) and
#: ``.run_days(days)`` — :class:`~repro.core.deployment.Deployment`
#: satisfies this, and tests substitute toy missions.
MissionFactory = Callable[[str], Any]


def _run_policy(factory: MissionFactory, policy: str,
                days: float) -> Tuple[PolicyRun, List[str]]:
    mission = factory(policy)
    mission.run_days(days)
    records = mission.sim.trace.records
    lines = [record_canonical(record) for record in records]
    return PolicyRun(
        policy=policy,
        digest=trace_digest(records),
        normalized_digest=lines_digest(normalize_tie_order(lines)),
        records=len(lines),
    ), lines


def _first_divergence(policy: str, base_lines: List[str],
                      other_lines: List[str]) -> TieDivergence:
    base_norm = normalize_tie_order(base_lines)
    other_norm = normalize_tie_order(other_lines)
    for index, (a, b) in enumerate(zip(base_norm, other_norm)):
        if a != b:
            return TieDivergence(
                policy=policy, index=index,
                time=float(a.split("|", 1)[0]),
                baseline_line=a, perturbed_line=b,
            )
    index = min(len(base_norm), len(other_norm))
    longer = base_norm if len(base_norm) > len(other_norm) else other_norm
    return TieDivergence(
        policy=policy, index=index,
        time=float(longer[index].split("|", 1)[0]),
        baseline_line=base_norm[index] if index < len(base_norm) else "<end of trace>",
        perturbed_line=other_norm[index] if index < len(other_norm) else "<end of trace>",
    )


def _dispatch_sites_at(factory: MissionFactory, policy: str, days: float,
                       time_key: str) -> List[Tuple[str, int]]:
    """Dispatch-ordered schedule callsites at the instant rendered ``time_key``.

    Re-runs the mission with kernel tie diagnostics enabled and keeps the
    enqueue callsite of every event dispatched at that instant, in
    dispatch order.  The instant is matched on the canonical ``%.9f``
    rendering, the same key the normalized trace groups by.
    """
    mission = factory(policy)
    log = mission.sim.enable_tie_diagnostics()
    mission.run_days(days)
    # String equality of the fixed-precision renderings is deliberate:
    # the ``%.9f`` key *is* the grouping key the normalized trace uses,
    # so matching on it reproduces the exact group membership.
    return [site for when, site, _type, _name in log
            if f"{when:.9f}" == time_key]  # repro-lint: disable=float-equality


def _order_flips(base_sites: List[Tuple[str, int]],
                 other_sites: List[Tuple[str, int]]) -> List[
                     Tuple[Tuple[str, int], Tuple[str, int]]]:
    """Callsite pairs whose relative dispatch order differs between runs.

    Compares first occurrences of each distinct site, so a site firing
    repeatedly within the instant (a self-rescheduling process) counts
    once.  Pairs come out ordered by baseline dispatch position — the
    first flip is the natural suspect.
    """
    base_rank: Dict[Tuple[str, int], int] = {}
    for position, site in enumerate(base_sites):
        base_rank.setdefault(site, position)
    other_rank: Dict[Tuple[str, int], int] = {}
    for position, site in enumerate(other_sites):
        other_rank.setdefault(site, position)
    common = [site for site in base_rank if site in other_rank]
    common.sort(key=base_rank.__getitem__)
    flips = []
    for i, early in enumerate(common):
        for late in common[i + 1:]:
            if other_rank[early] > other_rank[late]:
                flips.append((early, late))
    return flips


def _divergence_findings(divergence: TieDivergence,
                         factory: MissionFactory,
                         days: float,
                         baseline: str) -> List[Finding]:
    """Findings naming the callsite pair(s) behind one divergence.

    Two diagnostic re-runs (baseline and perturbed policy) reconstruct the
    dispatch order at the diverging instant; every order flip among the
    callsites active there becomes a pair of findings, one per callsite,
    each pointing at its partner.
    """
    time_key = f"{divergence.time:.9f}"
    base_sites = _dispatch_sites_at(factory, baseline, days, time_key)
    other_sites = _dispatch_sites_at(factory, divergence.policy, days, time_key)
    flips = _order_flips(base_sites, other_sites)
    findings: List[Finding] = []
    context = (
        f"trace diverges at t={time_key} "
        f"({baseline} vs {divergence.policy}): "
        f"{divergence.baseline_line!r} != {divergence.perturbed_line!r}"
    )
    if not flips:
        # Different event *sets* at the instant (an earlier flip cascaded)
        # or no common sites: report the instant itself at the first
        # baseline site so the finding still lands somewhere actionable.
        path, line = base_sites[0] if base_sites else ("<unknown>", 0)
        findings.append(Finding(
            rule=DIVERGENCE_RULE, path=path, line=line, col=0,
            severity=Severity.ERROR,
            message=f"{context}; dispatched event sets differ at this instant",
        ))
        return findings
    for early, late in flips:
        findings.append(Finding(
            rule=DIVERGENCE_RULE, path=early[0], line=early[1], col=0,
            severity=Severity.ERROR,
            message=(
                f"{context}; this schedule callsite races "
                f"{late[0]}:{late[1]} — their same-timestamp dispatch "
                f"order flipped between policies"
            ),
        ))
        findings.append(Finding(
            rule=DIVERGENCE_RULE, path=late[0], line=late[1], col=0,
            severity=Severity.ERROR,
            message=(
                f"{context}; this schedule callsite races "
                f"{early[0]}:{early[1]} — their same-timestamp dispatch "
                f"order flipped between policies"
            ),
        ))
    return findings


def check_tie_robustness(
    seed: int = 0,
    days: float = 45.0,
    policies: Sequence[str] = DEFAULT_POLICIES,
    fault_plan: Optional[dict] = None,
    mission_factory: Optional[MissionFactory] = None,
    overrides: Optional[dict] = None,
) -> TieReplayReport:
    """Replay one mission under each policy and diff normalized digests.

    ``policies[0]`` is the baseline; every other policy is compared
    against it.  On divergence the report carries the bisected first
    diverging record and ``tie-order-divergence`` findings at the
    offending schedule callsites (diagnosed from two further runs with
    kernel tie diagnostics enabled).
    """
    if len(policies) < 2:
        raise ValueError("need at least two policies (baseline + perturbed)")
    if mission_factory is None:
        def mission_factory(policy: str):
            return build_mission(seed, fault_plan=fault_plan, tie_break=policy,
                                 overrides=overrides)
    baseline_policy = policies[0]
    baseline_run, baseline_lines = _run_policy(mission_factory, baseline_policy, days)
    runs: List[PolicyRun] = [baseline_run]
    divergences: List[TieDivergence] = []
    findings: List[Finding] = []
    for policy in policies[1:]:
        run, lines = _run_policy(mission_factory, policy, days)
        runs.append(run)
        if run.normalized_digest == baseline_run.normalized_digest:
            continue
        divergence = _first_divergence(policy, baseline_lines, lines)
        divergences.append(divergence)
        findings.extend(_divergence_findings(
            divergence, mission_factory, days, baseline_policy))
    findings.sort(key=Finding.sort_key)
    return TieReplayReport(
        seed=seed, days=days, policies=tuple(policies),
        runs=tuple(runs), divergences=tuple(divergences),
        findings=tuple(findings),
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: exit 0 iff the mission is tie-order robust."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.tie_replay",
        description="Replay a mission under perturbed tie-break policies "
                    "and diff normalized trace digests.",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument("--days", type=float, default=10.0,
                        help="mission length in simulated days")
    parser.add_argument("--policies", default=",".join(DEFAULT_POLICIES),
                        metavar="P1,P2,...",
                        help="tie-break policies; the first is the baseline "
                             "(default: %(default)s)")
    parser.add_argument("--faults", metavar="PLAN.json", default=None,
                        help="fault plan to arm in every replay (JSON file)")
    parser.add_argument("--stations", type=int, default=None, metavar="N",
                        help="total station count (>= 2)")
    parser.add_argument("--servers", type=int, default=None, metavar="N",
                        help="server fleet size")
    parser.add_argument("--server-policy", default=None,
                        choices=("static", "round-robin", "hop"),
                        help="station upload-target policy")
    args = parser.parse_args(argv)
    fault_plan = None
    if args.faults is not None:
        import json

        with open(args.faults, "r", encoding="utf-8") as fh:
            fault_plan = json.load(fh)
    overrides = {}
    if args.stations is not None:
        overrides["extra_stations"] = max(0, args.stations - 2)
    if args.servers is not None:
        overrides["servers"] = args.servers
    if args.server_policy is not None:
        overrides["server_policy"] = args.server_policy
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    report = check_tie_robustness(seed=args.seed, days=args.days,
                                  policies=policies, fault_plan=fault_plan,
                                  overrides=overrides or None)
    # This module doubles as a CLI entry point; stdout is its interface.
    print(report.format())  # repro-lint: disable=no-print
    return 0 if report.robust else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
