"""Runtime determinism harness: the dynamic half of the lint gate.

The static rules catch the *causes* of nondeterminism; this module checks
the *effect*: two missions built from the same seed must produce
byte-identical traces.  It runs a short deployment twice, digests every
trace record, and reports the first divergence if the digests differ.

Run directly::

    python -m repro.lint.determinism --seed 0 --days 0.5

or via ``repro-lint --check-determinism``.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.sim.trace import TraceRecord


def record_canonical(record: TraceRecord) -> str:
    """A stable one-line rendering of a trace record for digesting.

    Detail dicts are rendered with sorted keys so digest equality never
    depends on insertion order.
    """
    detail = ",".join(f"{k}={record.detail[k]!r}" for k in sorted(record.detail))
    return f"{record.time:.9f}|{record.source}|{record.kind}|{detail}"


def trace_digest(records: Iterable[TraceRecord]) -> str:
    """SHA-256 over the canonical rendering of every record, in order."""
    digest = hashlib.sha256()
    for record in records:
        digest.update(record_canonical(record).encode())
        digest.update(b"\n")
    return digest.hexdigest()


def lines_digest(lines: Iterable[str]) -> str:
    """SHA-256 over pre-rendered canonical lines (tie_replay feeds these
    after normalising same-timestamp groups)."""
    digest = hashlib.sha256()
    for line in lines:
        digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()


def build_mission(seed: int, fault_plan: Optional[dict] = None,
                  tie_break: str = "fifo",
                  overrides: Optional[dict] = None):
    """A ready-to-run canonical mission (fault plan armed, policy set).

    Shared by the same-seed replay check here and the perturbed-tie
    replay harness (:mod:`repro.lint.tie_replay`), which needs the
    deployment *before* the run to switch on kernel tie diagnostics.
    ``overrides`` holds extra :class:`DeploymentConfig` kwargs (fleet
    shape, upload policy, tenancy) so the replay gates cover fleet
    missions too.
    """
    from repro.core import Deployment, DeploymentConfig

    deployment = Deployment(DeploymentConfig(seed=seed, tie_break=tie_break,
                                             **(overrides or {})))
    if fault_plan is not None:
        from repro.faults import apply_fault_plan

        apply_fault_plan(deployment, fault_plan, check_invariants=False)
    return deployment


def run_mission(seed: int, days: float,
                fault_plan: Optional[dict] = None,
                tie_break: str = "fifo",
                overrides: Optional[dict] = None) -> Tuple[str, List[str]]:
    """Run one short deployment; return (trace digest, canonical lines).

    ``fault_plan`` (a :class:`repro.faults.FaultPlan` dict form) is armed
    before the run, so the replay comparison covers fault scheduling,
    injection edges and every recovery path the plan provokes.
    ``tie_break`` selects the kernel's same-timestamp ordering policy.
    """
    deployment = build_mission(seed, fault_plan=fault_plan, tie_break=tie_break,
                               overrides=overrides)
    deployment.run_days(days)
    lines = [record_canonical(r) for r in deployment.sim.trace.records]
    return trace_digest(deployment.sim.trace.records), lines


@dataclass(frozen=True)
class DeterminismReport:
    """Outcome of a same-seed replay comparison."""

    seed: int
    days: float
    digest_a: str
    digest_b: str
    #: First (line number, run-A line, run-B line) divergence, if any.
    first_divergence: Optional[Tuple[int, str, str]]

    @property
    def identical(self) -> bool:
        return self.digest_a == self.digest_b

    def summary(self) -> str:
        """Human-readable verdict, including the first divergence on failure."""
        if self.identical:
            return (
                f"determinism OK: seed={self.seed} days={self.days:g} "
                f"digest={self.digest_a[:16]}…"
            )
        lines = [
            f"determinism FAILED: seed={self.seed} days={self.days:g}",
            f"  run A digest: {self.digest_a}",
            f"  run B digest: {self.digest_b}",
        ]
        if self.first_divergence is not None:
            index, a, b = self.first_divergence
            lines.append(f"  first divergence at trace record {index}:")
            lines.append(f"    A: {a}")
            lines.append(f"    B: {b}")
        return "\n".join(lines)


def check_determinism(seed: int = 0, days: float = 0.5,
                      fault_plan: Optional[dict] = None,
                      overrides: Optional[dict] = None) -> DeterminismReport:
    """Run the same mission twice and diff the trace digests."""
    digest_a, lines_a = run_mission(seed, days, fault_plan=fault_plan,
                                    overrides=overrides)
    digest_b, lines_b = run_mission(seed, days, fault_plan=fault_plan,
                                    overrides=overrides)
    divergence: Optional[Tuple[int, str, str]] = None
    if digest_a != digest_b:
        for index, (a, b) in enumerate(zip(lines_a, lines_b)):
            if a != b:
                divergence = (index, a, b)
                break
        else:
            index = min(len(lines_a), len(lines_b))
            next_a = lines_a[index] if index < len(lines_a) else "<end of trace>"
            next_b = lines_b[index] if index < len(lines_b) else "<end of trace>"
            divergence = (index, next_a, next_b)
    return DeterminismReport(
        seed=seed, days=days, digest_a=digest_a, digest_b=digest_b,
        first_divergence=divergence,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: exit 0 iff the replay is bit-identical."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.determinism",
        description="Replay a short mission twice and diff trace digests.",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument("--days", type=float, default=0.5,
                        help="mission length in simulated days")
    parser.add_argument("--faults", metavar="PLAN.json", default=None,
                        help="fault plan to arm in both runs (JSON file)")
    parser.add_argument("--stations", type=int, default=None, metavar="N",
                        help="total station count (>= 2)")
    parser.add_argument("--servers", type=int, default=None, metavar="N",
                        help="server fleet size")
    parser.add_argument("--server-policy", default=None,
                        choices=("static", "round-robin", "hop"),
                        help="station upload-target policy")
    args = parser.parse_args(argv)
    fault_plan = None
    if args.faults is not None:
        import json

        with open(args.faults, "r", encoding="utf-8") as fh:
            fault_plan = json.load(fh)
    overrides = {}
    if args.stations is not None:
        overrides["extra_stations"] = max(0, args.stations - 2)
    if args.servers is not None:
        overrides["servers"] = args.servers
    if args.server_policy is not None:
        overrides["server_policy"] = args.server_policy
    report = check_determinism(seed=args.seed, days=args.days,
                               fault_plan=fault_plan,
                               overrides=overrides or None)
    # This module doubles as a CLI entry point; stdout is its interface.
    print(report.summary())  # repro-lint: disable=no-print
    return 0 if report.identical else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
