"""Structured lint findings.

A :class:`Finding` is one violation of a simulation invariant: which rule
fired, where, and why.  Findings are plain data so the engine can sort,
filter, and render them as text or JSON without the rules knowing about
output formats.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the CI gate; ``WARNING`` findings are reported
    but (with ``--warnings-ok``) do not affect the exit code.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR

    def sort_key(self):
        """Stable ordering: by file, then position, then rule id."""
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the ``--format json`` record schema)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line human-readable form, ``path:line:col: [rule] message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.severity.value}: [{self.rule}] {self.message}"
