"""The lint rules: one class per simulation invariant.

Each rule is an AST inspector registered in :data:`RULE_REGISTRY` under a
stable id.  Rules receive a parsed module plus file metadata and yield
:class:`~repro.lint.findings.Finding` objects; they never read the
filesystem themselves, so they are trivially unit-testable on snippets.

To add a rule: subclass :class:`Rule`, set ``id``/``description``, implement
:meth:`Rule.check`, and decorate with :func:`register`.  See
``docs/determinism.md`` for the contract each shipped rule protects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Type

from repro.lint.findings import Finding, Severity


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may look at for one file."""

    path: str
    #: ``path`` normalised to forward slashes, for exemption suffix matching.
    posix_path: str
    source: str
    tree: ast.AST


class Rule:
    """Base class for lint rules."""

    id: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    #: Posix path suffixes this rule never applies to (e.g. the rng module
    #: itself is allowed to call ``np.random.default_rng``).
    exempt_path_suffixes: Tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx``'s file at all."""
        return not any(ctx.posix_path.endswith(sfx) for sfx in self.exempt_path_suffixes)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield a :class:`Finding` for every violation in the file."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``'s source position."""
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=self.severity,
        )


#: All registered rule classes, keyed by rule id.
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    RULE_REGISTRY[cls.id] = cls
    return cls


def default_rules(
    select: Optional[List[str]] = None, disable: Optional[List[str]] = None
) -> List[Rule]:
    """Instantiate the registered rules, honouring select/disable lists."""
    ids = list(RULE_REGISTRY)
    if select:
        unknown = set(select) - set(ids)
        if unknown:
            raise KeyError(f"unknown rule id(s): {sorted(unknown)}")
        ids = [rid for rid in ids if rid in set(select)]
    if disable:
        unknown = set(disable) - set(RULE_REGISTRY)
        if unknown:
            raise KeyError(f"unknown rule id(s): {sorted(unknown)}")
        ids = [rid for rid in ids if rid not in set(disable)]
    return [RULE_REGISTRY[rid]() for rid in ids]


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``, or None if not a pure name chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


# ----------------------------------------------------------------------
# Rule 1: wall-clock ban
# ----------------------------------------------------------------------
@register
class WallClockRule(Rule):
    """Sim-facing code must read time from ``SimClock``, never the host.

    A single ``datetime.now()`` makes two same-seed runs diverge (trace
    timestamps, schedule decisions), silently breaking replayability.
    """

    id = "wall-clock"
    description = "host wall-clock reads (datetime.now/time.time) — use SimClock"

    _DATETIME_ATTRS = {"now", "today", "utcnow"}
    _TIME_CALLS = {
        ("time", "time"),
        ("time", "monotonic"),
        ("time", "perf_counter"),
        ("time", "time_ns"),
        ("time", "monotonic_ns"),
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            parts = dotted_parts(node.func)
            if not parts or len(parts) < 2:
                continue
            tail = tuple(parts[-2:])
            if tail in self._TIME_CALLS:
                yield self.finding(
                    ctx, node,
                    f"call to {'.'.join(parts)}() reads the host clock; "
                    "use SimClock/Simulation.now instead",
                )
            elif parts[-1] in self._DATETIME_ATTRS and parts[-2] in ("datetime", "date"):
                yield self.finding(
                    ctx, node,
                    f"call to {'.'.join(parts)}() reads the host clock; "
                    "use SimClock.utcnow()/simtime.to_datetime instead",
                )


# ----------------------------------------------------------------------
# Rule 2: RNG discipline
# ----------------------------------------------------------------------
@register
class RngDisciplineRule(Rule):
    """All randomness must flow through ``RngRegistry`` named streams.

    Direct ``np.random.default_rng``/``random.*`` calls create generators
    whose sequences are not derived from the master seed, so changing one
    component's draw count perturbs others and ablations stop being
    comparable (see ``repro.sim.rng``'s module docstring).
    """

    id = "rng-discipline"
    description = "ad-hoc RNG construction — use RngRegistry.stream / generator_from_seed"
    exempt_path_suffixes = ("sim/rng.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            parts = dotted_parts(node.func)
            if not parts:
                continue
            if len(parts) == 2 and parts[0] == "random":
                yield self.finding(
                    ctx, node,
                    f"stdlib random.{parts[1]}() bypasses the seeded registry; "
                    "draw from RngRegistry.stream(name) instead",
                )
            elif len(parts) >= 2 and tuple(parts[-2:]) in (
                ("random", "default_rng"),
                ("random", "seed"),
                ("random", "RandomState"),
            ):
                yield self.finding(
                    ctx, node,
                    f"direct {'.'.join(parts)}() constructs an unregistered stream; "
                    "use RngRegistry.stream(name) or repro.sim.rng.generator_from_seed",
                )


# ----------------------------------------------------------------------
# Rule 3: float equality
# ----------------------------------------------------------------------
@register
class FloatEqualityRule(Rule):
    """``==``/``!=`` between float quantities (volts, SoC, energy) is a bug.

    Voltages and energies are accumulated floats; exact comparison makes
    behaviour depend on summation order, which event-queue refactors change.
    Compare against thresholds or use ``math.isclose``.
    """

    id = "float-equality"
    description = "==/!= between float expressions — compare with tolerance/thresholds"

    #: Substrings anywhere in a name that mark it as a float quantity.
    _FLOATY_NAME_HINTS = (
        "volt", "soc", "energy", "power", "watt", "joule", "charge",
        "current", "amp",
    )
    #: Suffixes (units) that mark a name as a float quantity.
    _FLOATY_NAME_SUFFIXES = ("_w", "_v", "_j", "_wh", "_kwh")

    def _is_floatish(self, node: ast.AST) -> bool:
        if _is_float_literal(node):
            return True
        if isinstance(node, ast.BinOp):
            return self._is_floatish(node.left) or self._is_floatish(node.right)
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None:
            lowered = name.lower()
            return any(hint in lowered for hint in self._FLOATY_NAME_HINTS) or any(
                lowered.endswith(sfx) for sfx in self._FLOATY_NAME_SUFFIXES
            )
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_floatish(left) or self._is_floatish(right):
                    yield self.finding(
                        ctx, node,
                        "exact ==/!= on a float quantity; use a threshold "
                        "or math.isclose",
                    )


# ----------------------------------------------------------------------
# Rule 4: mutable default arguments
# ----------------------------------------------------------------------
@register
class MutableDefaultRule(Rule):
    """Mutable default arguments leak state between calls.

    In a simulator that is rebuilt per seed, a shared default list carries
    draws/records from one run into the next — a classic determinism leak.
    """

    id = "mutable-default"
    description = "mutable default argument (list/dict/set) — use None sentinel"

    _MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter"}

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            parts = dotted_parts(node.func)
            return bool(parts) and parts[-1] in self._MUTABLE_CALLS
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx, default,
                        f"mutable default in {node.name}(); default to None and "
                        "construct inside the function",
                    )


# ----------------------------------------------------------------------
# Rule 5: bare / swallowed exceptions
# ----------------------------------------------------------------------
@register
class SilentExceptRule(Rule):
    """Errors must not pass silently — the kernel's core contract.

    A swallowed exception in a process generator turns a crashed station
    model into one that silently stops emitting trace records, which looks
    exactly like the paper's dead-station failure mode but is a bug.
    """

    id = "silent-except"
    description = "bare except / except-pass swallows errors — handle or re-raise"

    _BROAD = {"Exception", "BaseException"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt and "
                    "hides kernel errors; name the exception",
                )
                continue
            parts = dotted_parts(node.type)
            broad = bool(parts) and parts[-1] in self._BROAD
            swallows = all(isinstance(stmt, ast.Pass) for stmt in node.body)
            if broad and swallows:
                yield self.finding(
                    ctx, node,
                    "'except Exception: pass' swallows every error; log to the "
                    "Trace or re-raise",
                )


# ----------------------------------------------------------------------
# Rule 6: yield discipline
# ----------------------------------------------------------------------
@register
class YieldDisciplineRule(Rule):
    """Process generators must yield events, not raw values.

    ``yield 5`` inside a process raises at runtime ("processes must yield
    Event objects") — but only when that branch executes, which for rare
    recovery paths can be deep into a long mission.  Catch it statically.
    """

    id = "yield-discipline"
    description = "yield of a literal/number in a generator — processes yield Events"

    def _is_literal_yield(self, value: ast.AST) -> bool:
        if isinstance(value, ast.Constant):
            # Bare ``yield`` (value None) is the make-this-a-generator idiom;
            # only concrete literals are certainly wrong.
            return value.value is not None
        if isinstance(value, ast.UnaryOp) and isinstance(value.operand, ast.Constant):
            return True
        if isinstance(value, (ast.List, ast.Tuple, ast.Dict, ast.Set)):
            return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Yield):
                continue
            if node.value is not None and self._is_literal_yield(node.value):
                yield self.finding(
                    ctx, node,
                    "yields a plain literal; process generators must yield "
                    "Event objects (timeout(), event(), process())",
                )


# ----------------------------------------------------------------------
# Rule 7: no print in library code
# ----------------------------------------------------------------------
@register
class NoPrintRule(Rule):
    """Library code must report through the Trace or metrics, not stdout.

    A stray ``print()`` in a subsystem bypasses the observability layer:
    it cannot be selected, counted, exported, or digest-checked, and it
    corrupts machine-readable CLI output (CSV/JSON/Prometheus dumps).
    CLI entry points and the analysis/report formatters are the only
    places whose *job* is writing to stdout.
    """

    id = "no-print"
    description = "print() in library code — emit to Trace/metrics, not stdout"
    exempt_path_suffixes = ("/cli.py",)

    def applies_to(self, ctx: FileContext) -> bool:
        """Also skip the analysis/ package — its output *is* text."""
        if "/analysis/" in ctx.posix_path:
            return False
        return super().applies_to(ctx)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "print":
                yield self.finding(
                    ctx, node,
                    "print() in library code; emit a Trace record or metric "
                    "(or move the output into a CLI/analysis module)",
                )


# ----------------------------------------------------------------------
# Rule 8: energy conservation
# ----------------------------------------------------------------------
@register
class EnergyConservationRule(Rule):
    """Battery mutation belongs to the PowerBus sync bracket, nowhere else.

    The adaptive integrator's whole contract is that the battery's stored
    state is only advanced inside ``PowerBus.sync()`` (and the bus's own
    ``drain_j`` helper, which syncs around the withdrawal).  A subsystem
    that calls ``battery.apply(...)`` or ``battery.drain_j(...)`` directly
    injects or removes energy the bus never integrated: the books stop
    balancing, crossing predictions are computed from a state the planner
    never saw, and fixed-vs-adaptive A/B runs diverge.  Route every
    withdrawal through ``PowerBus.drain_j`` and every flow through a
    registered source or load.
    """

    id = "energy-conservation"
    description = "direct battery.apply()/battery.drain_j() — only PowerBus.sync() may move energy"
    #: The bus implements the bracket; the battery's own module and tests
    #: exercising the model directly are the sanctioned callers.
    exempt_path_suffixes = ("energy/bus.py", "energy/battery.py")

    _MUTATORS = {"apply", "drain_j"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in self._MUTATORS:
                continue
            parts = dotted_parts(func)
            if not parts:
                continue
            # Only battery receivers: ``bus.drain_j(...)`` is the sanctioned
            # API and must stay clean, so the receiver chain has to name a
            # battery (``battery.apply``, ``self.battery.drain_j``, ...).
            receiver = parts[:-1]
            if not any("battery" in part.lower() for part in receiver):
                continue
            yield self.finding(
                ctx, node,
                f"direct {'.'.join(parts)}() mutates battery state outside "
                "the PowerBus sync bracket; go through PowerBus.drain_j or "
                "a registered source/load",
            )


# ----------------------------------------------------------------------
# Rule 9: no allocations in the kernel hot path
# ----------------------------------------------------------------------
@register
class NoHotPathAllocRule(Rule):
    """The kernel's per-event code must not allocate containers or closures.

    ``Simulation.run``/``step``/``schedule`` execute once per event —
    millions of times per sweep.  A dict/list/set literal, a comprehension
    or a ``lambda`` there costs an allocation per event and silently undoes
    the batched fast path (docs/performance.md).  Batch APIs such as
    ``schedule_many`` amortise one allocation over many events, so they are
    outside the hot set.
    """

    id = "no-hot-path-alloc"
    description = "container literal/comprehension/lambda in a kernel hot-path function"

    #: Functions that run per processed/scheduled event.
    _HOT_FUNCTIONS = frozenset(
        {"run", "step", "schedule", "_schedule_now", "peek", "_run_callbacks"}
    )
    _ALLOC_NODES = (
        ast.Dict, ast.List, ast.Set,
        ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
        ast.Lambda,
    )
    _ALLOC_LABEL = {
        ast.Dict: "dict literal",
        ast.List: "list literal",
        ast.Set: "set literal",
        ast.ListComp: "list comprehension",
        ast.SetComp: "set comprehension",
        ast.DictComp: "dict comprehension",
        ast.GeneratorExp: "generator expression",
        ast.Lambda: "lambda",
    }

    def applies_to(self, ctx: FileContext) -> bool:
        """Only the kernel module has per-event functions to police."""
        return ctx.posix_path.endswith("sim/kernel.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in self._HOT_FUNCTIONS:
                continue
            for inner in ast.walk(node):
                if isinstance(inner, self._ALLOC_NODES):
                    label = self._ALLOC_LABEL[type(inner)]
                    yield self.finding(
                        ctx, inner,
                        f"{label} inside hot-path function {node.name}(); "
                        "hoist it out of the per-event path or move the work "
                        "to a batch API (docs/performance.md)",
                    )


# ----------------------------------------------------------------------
# Rule 10: no per-chunk polling loops
# ----------------------------------------------------------------------
@register
class NoPollingLoopRule(Rule):
    """Fixed-cadence polling with a per-iteration RNG draw must be inverted.

    A ``while`` loop that yields a fixed-delay ``timeout(...)`` and draws
    from an RNG each iteration is sampling a survival process one chunk at
    a time: thousands of kernel events to answer "when does the first
    failure land?".  The drop instant can be drawn *once* up front by
    inverse-CDF (see ``Modem._sample_drop_delay`` and
    docs/performance.md) and the loop replaced with a single timeout.
    Two sanctioned exceptions: the chunked engine in ``comms/link.py`` is
    the A/B oracle the exact engine is validated against, and the antenna
    damage check in ``environment/damage.py`` runs at day cadence (365
    events/year — not a hot path) with mutable repair state folded into
    the loop.
    """

    id = "no-polling-loop"
    description = "while loop yielding a fixed timeout() with a per-iteration RNG draw — draw the event time once by inverse-CDF"
    exempt_path_suffixes = ("comms/link.py", "environment/damage.py")

    #: RNG draw methods whose presence marks the loop as a sampler.
    _DRAW_METHODS = frozenset(
        {"random", "uniform", "normal", "integers", "choice",
         "exponential", "poisson", "weibull"}
    )

    def _is_fixed_delay(self, node: ast.AST) -> bool:
        """A delay the loop does not recompute: a literal, name or attribute."""
        return isinstance(node, (ast.Constant, ast.Name, ast.Attribute))

    def _yields_fixed_timeout(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Yield) or not isinstance(node.value, ast.Call):
            return False
        call = node.value
        parts = dotted_parts(call.func)
        if not parts or parts[-1] != "timeout":
            return False
        return bool(call.args) and self._is_fixed_delay(call.args[0])

    def _is_rng_draw(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            return False
        if node.func.attr not in self._DRAW_METHODS:
            return False
        parts = dotted_parts(node.func)
        # The receiver must name an rng (``rng.random()``,
        # ``self._drop_rng.uniform()``); ``random.random()`` is rule 2's.
        return bool(parts) and any("rng" in part.lower() for part in parts[:-1])

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While):
                continue
            body = [inner for stmt in node.body for inner in ast.walk(stmt)]
            if any(self._yields_fixed_timeout(inner) for inner in body) and any(
                self._is_rng_draw(inner) for inner in body
            ):
                yield self.finding(
                    ctx, node,
                    "polling loop: yields a fixed timeout and draws from an "
                    "RNG every iteration; sample the event time once by "
                    "inverse-CDF and schedule a single timeout "
                    "(docs/performance.md)",
                )


# ----------------------------------------------------------------------
# Rule 11: imports point strictly downwards (architecture.md §7)
# ----------------------------------------------------------------------
@register
class LayeringRule(Rule):
    """Package imports must follow the §7 layer diagram, strictly downwards.

    The reproduction is a tower: sim at the bottom, energy/environment on
    it, then hardware and the comms stack, core tying the paper together,
    and the tooling layers (faults, analysis, fleet, lint, cli) on top.
    An upward import — ``core`` reaching into ``faults``, a hardware
    module importing ``core`` — couples a lower layer to its consumers,
    makes the lower layer untestable in isolation, and (for the fault
    layer specifically) would let production code depend on its own chaos
    harness.  ``TYPE_CHECKING``-guarded imports are exempt: they express
    a type-level reference, not a runtime dependency (the obs↔sim cycle
    is broken exactly that way).  ``repro.obs`` is additionally
    reachable only from the kernel and the CLI — every other subsystem
    must use its ``sim.obs`` handle.
    """

    id = "layering"
    description = "upward cross-package import (architecture.md §7: imports point strictly downwards)"

    #: architecture.md §7, as numbers: an import is legal iff the imported
    #: package's layer is strictly below the importer's (same package is
    #: always fine).  Equal-layer packages are siblings and must not
    #: import each other either (energy/environment talk through the
    #: structural WeatherProvider protocol, not imports).
    LAYERS = {
        "obs": 0,
        "sim": 1,
        "energy": 2,
        "environment": 2,
        "hardware": 3,
        "sensors": 3,
        "comms": 4,
        "gps": 4,
        "protocol": 5,
        "probes": 6,
        "server": 6,
        "core": 7,
        "faults": 8,
        "analysis": 9,
        "fleet": 9,
        "lint": 9,
        "cli": 10,
    }

    #: Packages with an explicit import allow-list overriding the layer
    #: numbers: ``repro.obs`` sits below everything so that the kernel can
    #: build the hub, but only the kernel (and the CLI's exporter calls,
    #: the fleet runner's rollup fold, and the analysis layer's report
    #: rendering) may *import* it — subsystems go through their
    #: ``sim.obs`` handle.
    RESTRICTED_IMPORTERS = {"obs": frozenset({"sim", "cli", "fleet", "analysis"})}

    def _importer_package(self, ctx: FileContext) -> Optional[str]:
        """The repro sub-package ``ctx``'s file belongs to, or None."""
        parts = ctx.posix_path.split("/")
        try:
            idx = len(parts) - 1 - parts[::-1].index("repro")
        except ValueError:
            return None
        if idx + 1 >= len(parts):
            return None
        head = parts[idx + 1]
        if head.endswith(".py"):
            head = head[:-3]  # top-level module, e.g. repro/cli.py
        return head if head in self.LAYERS else None

    @staticmethod
    def _type_checking_lines(tree: ast.AST) -> set:
        """Line numbers inside ``if TYPE_CHECKING:`` bodies."""
        lines: set = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            name = test.id if isinstance(test, ast.Name) else (
                test.attr if isinstance(test, ast.Attribute) else None)
            if name != "TYPE_CHECKING":
                continue
            for stmt in node.body:
                lines.update(range(stmt.lineno, (stmt.end_lineno or stmt.lineno) + 1))
        return lines

    def _imported_packages(self, node: ast.AST) -> List[str]:
        """repro sub-packages named by one import statement."""
        modules: List[str] = []
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            modules = [node.module]
        out: List[str] = []
        for module in modules:
            parts = module.split(".")
            if len(parts) >= 2 and parts[0] == "repro" and parts[1] in self.LAYERS:
                out.append(parts[1])
        return out

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        importer = self._importer_package(ctx)
        if importer is None:
            return
        importer_layer = self.LAYERS[importer]
        guarded = self._type_checking_lines(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if node.lineno in guarded:
                continue
            for imported in self._imported_packages(node):
                if imported == importer:
                    continue
                allowed = self.RESTRICTED_IMPORTERS.get(imported)
                if allowed is not None:
                    if importer not in allowed:
                        yield self.finding(
                            ctx, node,
                            f"repro.{imported} may only be imported by "
                            f"{sorted(allowed)} (use the sim.{imported} "
                            "handle instead); see architecture.md §7",
                        )
                    continue
                if self.LAYERS[imported] >= importer_layer:
                    yield self.finding(
                        ctx, node,
                        f"repro.{importer} (layer {importer_layer}) must not "
                        f"import repro.{imported} (layer "
                        f"{self.LAYERS[imported]}): imports point strictly "
                        "downwards (architecture.md §7)",
                    )
