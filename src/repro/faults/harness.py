"""The fault engine: arm a :class:`FaultPlan` against a live deployment.

``apply_fault_plan(deployment, plan)`` is the one call every entry point
(CLI ``--faults``, ``repro-sim inject``, fleet sweeps, the determinism
replay harness) makes after constructing a ``Deployment`` and before
``run_days``.  It resolves the plan's schedule (seeded stochastic windows
included), groups window faults per target, installs the injectors from
:mod:`repro.faults.injectors`, and optionally attaches an
:class:`~repro.faults.invariants.InvariantChecker`.

Layering note: ``repro.faults`` sits *above* ``repro.core`` — the engine
imports the deployment, never the reverse.  ``DeploymentConfig.fault_plan``
holds plain dict data only; turning that data into injectors is this
module's job, called from the layers above core (cli, fleet, lint).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.core.deployment import Deployment

from repro.faults.injectors import (
    GprsOutageInjector,
    ProbeLossInjector,
    ServerOutageInjector,
    inject_battery_drain,
    inject_rtc_fault,
    inject_storage_corruption,
)
from repro.faults.invariants import InvariantChecker, InvariantReport
from repro.faults.plan import FaultPlan, ResolvedFault


class FaultEngine:
    """A plan armed against one deployment.

    Holds the installed injectors (keeping their wrapped originals alive)
    and the optional invariant checker; :meth:`finish` returns the
    checker's report after the run.
    """

    def __init__(self, deployment: Deployment, plan: FaultPlan,
                 check_invariants: bool = True) -> None:
        self.deployment = deployment
        self.plan = plan
        self.resolved: List[ResolvedFault] = plan.resolve(deployment.sim.rng)
        self.injectors: List[object] = []
        self.checker: Optional[InvariantChecker] = (
            InvariantChecker(deployment.sim) if check_invariants else None
        )
        self._arm()

    # ------------------------------------------------------------------
    def _station(self, name: str):
        for station in self.deployment.stations:
            if station.name == name:
                return station
        raise ValueError(
            f"fault plan {self.plan.name!r} targets unknown station {name!r}"
        )

    def _arm(self) -> None:
        sim = self.deployment.sim

        gprs_windows: Dict[str, List[Tuple[float, float]]] = {}
        probe_windows: Dict[str, List[Tuple[float, float, float]]] = {}
        #: shard index (None = whole server side) -> windows
        server_windows: Dict[Optional[int], List[Tuple[float, float]]] = {}

        for fault in self.resolved:
            if fault.kind == "gprs-outage":
                self._station(fault.station)  # validate early
                gprs_windows.setdefault(fault.station, []).append(
                    (fault.start_s, fault.end_s))
            elif fault.kind == "probe-loss-spike":
                station = self._station(fault.station)
                if not getattr(station, "probe_links", None):
                    raise ValueError(
                        f"probe-loss-spike targets {fault.station!r},"
                        f" which has no probe links")
                probe_windows.setdefault(fault.station, []).append(
                    (fault.start_s, fault.end_s, fault.spec.loss))
            elif fault.kind == "server-outage":
                shard = fault.spec.server
                if shard is not None:
                    fleet = getattr(self.deployment, "fleet", None)
                    if fleet is None or shard >= len(fleet.shards):
                        raise ValueError(
                            f"fault plan {self.plan.name!r} targets server"
                            f" shard {shard}, but the deployment has"
                            f" {len(fleet.shards) if fleet else 1} server(s)")
                server_windows.setdefault(shard, []).append(
                    (fault.start_s, fault.end_s))
            elif fault.kind == "rtc-reset":
                station = self._station(fault.station)
                inject_rtc_fault(sim, fault.station, station.msp.rtc,
                                 fault.start_s, skew_s=fault.spec.skew_s)
            elif fault.kind == "battery-drain":
                station = self._station(fault.station)
                inject_battery_drain(sim, fault.station, station.bus,
                                     fault.start_s, fault.spec.energy_j)
            elif fault.kind == "storage-corruption":
                station = self._station(fault.station)
                inject_storage_corruption(
                    sim, fault.station, station.card, fault.start_s,
                    files=fault.spec.files,
                    recover_after_s=fault.spec.recover_after_s)

        for name, windows in sorted(gprs_windows.items()):
            station = self._station(name)
            self.injectors.append(
                GprsOutageInjector(sim, name, station.modem, windows))
        for name, windows in sorted(probe_windows.items()):
            station = self._station(name)
            self.injectors.append(
                ProbeLossInjector(sim, name, station.probe_links.values(),
                                  windows))
        fleet = getattr(self.deployment, "fleet", None)
        for shard, windows in sorted(
            server_windows.items(), key=lambda item: (item[0] is not None, item[0] or 0)
        ):
            if shard is not None:
                # Per-shard outage: wrap that shard only, labelled by name.
                target = fleet.shards[shard]
                self.injectors.append(
                    ServerOutageInjector(sim, target, windows,
                                         station=target.name))
            elif fleet is not None:
                # Whole-server-side outage against a fleet: every shard
                # goes dark on the shared windows, announced once.
                self.injectors.append(
                    ServerOutageInjector(sim, fleet.shards, windows))
            else:
                self.injectors.append(
                    ServerOutageInjector(sim, self.deployment.server, windows))

    # ------------------------------------------------------------------
    def finish(self) -> Optional[InvariantReport]:
        """Detach and report the invariant checker (None if disabled)."""
        if self.checker is None:
            return None
        return self.checker.finish()


def apply_fault_plan(
    deployment: Deployment,
    plan: Union[FaultPlan, dict, None] = None,
    check_invariants: bool = True,
) -> Optional[FaultEngine]:
    """Arm a fault plan against a deployment; the standard entry point.

    ``plan`` may be a :class:`FaultPlan`, its dict form, or ``None`` — in
    which case the deployment config's ``fault_plan`` dict is used, and if
    that is also empty, nothing is armed and ``None`` is returned.  Call
    this *before* ``run_days`` so scheduled faults land inside the run.
    """
    if plan is None:
        plan = getattr(deployment.config, "fault_plan", None)
    if plan is None:
        return None
    if isinstance(plan, dict):
        plan = FaultPlan.from_dict(plan)
    return FaultEngine(deployment, plan, check_invariants=check_invariants)
