"""Deterministic fault injection for the deployment's field-failure paths.

The paper is a deployment-experience report: its contributions exist
because things broke on the glacier.  This package makes those breakages
*schedulable* — a declarative, seeded :class:`FaultPlan` injects GPRS
outages, probe-radio loss spikes, CF-card corruption, RTC resets/skews,
battery drain shocks and server outages into a live deployment, while an
:class:`InvariantChecker` asserts the recovery properties the paper
claims.  Same seed + same plan reproduces byte-identical traces.

Typical use::

    from repro.core import Deployment, DeploymentConfig
    from repro.faults import apply_fault_plan, canonical_chaos_plan

    deployment = Deployment(DeploymentConfig(seed=42))
    engine = apply_fault_plan(deployment, canonical_chaos_plan())
    deployment.run_days(45)
    report = engine.finish()
    assert report.ok, report.format()
"""

from repro.faults.harness import FaultEngine, apply_fault_plan
from repro.faults.invariants import (
    FaultOutcome,
    InvariantChecker,
    InvariantReport,
    Violation,
)
from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    ResolvedFault,
    canonical_chaos_plan,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEngine",
    "FaultOutcome",
    "FaultPlan",
    "FaultSpec",
    "InvariantChecker",
    "InvariantReport",
    "ResolvedFault",
    "Violation",
    "apply_fault_plan",
    "canonical_chaos_plan",
]
