"""Fault injectors: small wrappers that make existing components fail.

Every injector follows the same discipline:

- it **wraps or hooks** the live component (swaps a callable attribute,
  schedules a method call) rather than subclassing or forking it, so the
  component under fault is byte-for-byte the production code;
- window faults are **pure functions of time** — the wrapper consults its
  window list on every call, so installing it never mutates component
  state and the component behaves normally outside every window;
- each occurrence announces itself on the trace (``fault_injected`` /
  ``fault_cleared`` from source ``"faults"``) and bumps
  ``faults_injected_total{station,kind}``, which makes fault activity
  part of the deterministic trace digest the replay harness compares.

Injectors are armed by :class:`repro.faults.harness.FaultEngine`; nothing
here imports ``repro.core`` — injectors receive the concrete components
they wrap.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Tuple

from repro.comms.link import LinkDown, Modem
from repro.comms.probe_radio import ProbeRadioLink
from repro.energy.bus import PowerBus
from repro.hardware.rtc import RealTimeClock
from repro.hardware.storage import CompactFlashCard
from repro.server.server import SouthamptonServer
from repro.sim.kernel import Simulation

TRACE_SOURCE = "faults"

#: ``SouthamptonServer`` entry points that stop answering during an outage.
#: Everything a station calls mid-session is covered, so an outage window
#: looks exactly like the uplink dying at the far end.
SERVER_OUTAGE_METHODS = (
    "upload_power_state",
    "get_override_state",
    "sync_session",
    "upload_data",
    "get_special",
    "get_release",
    "report_checksum",
)

Window = Tuple[float, float]


def _announce(sim: Simulation, station: str, kind: str, window: Window) -> None:
    """Emit the injection edge records/metrics for one occurrence."""
    start, end = window

    def _inject() -> None:
        sim.trace.emit(TRACE_SOURCE, "fault_injected", station=station,
                       fault=kind, until=end if end > start else None)
        sim.obs.metrics.inc("faults_injected_total", station=station, kind=kind)

    sim.call_at(start, _inject)
    if end > start:
        sim.call_at(end, lambda: sim.trace.emit(
            TRACE_SOURCE, "fault_cleared", station=station, fault=kind))


class GprsOutageInjector:
    """Blackhole a station's GPRS uplink during the given windows.

    Wraps ``modem.available`` (connects fail with :class:`LinkDown`) and
    ``modem.drop_hazard_per_s`` (hazard 1.0 guarantees any transfer already
    in flight drops at its next chunk boundary) — the same failure surface
    the weather-driven outages use, so every station-side handler is
    exercised unmodified.
    """

    kind = "gprs-outage"

    def __init__(self, sim: Simulation, station: str, modem: Modem,
                 windows: Sequence[Window]) -> None:
        self.sim = sim
        self.station = station
        self.modem = modem
        self.windows = sorted(windows)
        self._orig_available = modem.available
        self._orig_hazard = modem.drop_hazard_per_s
        modem.available = self._available  # type: ignore[method-assign]
        modem.drop_hazard_per_s = self._hazard  # type: ignore[method-assign]
        for window in self.windows:
            _announce(sim, station, self.kind, window)

    def _in_window(self, time: float) -> bool:
        return any(start <= time < end for start, end in self.windows)

    def _available(self, time: float) -> bool:
        if self._in_window(time):
            return False
        return self._orig_available(time)

    def _hazard(self, time: float) -> float:
        if self._in_window(time):
            return 1.0
        return self._orig_hazard(time)


class ProbeLossInjector:
    """Raise probe-radio packet loss during the given windows.

    Wraps each link's ``loss_fn`` with an additive spike (clamped at 1.0),
    modelling the paper's wet-ice degradation at scripted severity.  The
    link's own RNG stream still decides each packet's fate, so the spike
    changes probabilities, never draw order.
    """

    kind = "probe-loss-spike"

    def __init__(self, sim: Simulation, station: str,
                 links: Iterable[ProbeRadioLink],
                 windows: Sequence[Tuple[float, float, float]]) -> None:
        self.sim = sim
        self.station = station
        self.windows = sorted(windows)  # (start, end, extra_loss)
        self._originals: List[Tuple[ProbeRadioLink, Callable[[float], float]]] = []
        for link in links:
            original = link.loss_fn
            self._originals.append((link, original))
            link.loss_fn = self._wrap(original)
        for start, end, _extra in self.windows:
            _announce(sim, station, self.kind, (start, end))

    def _extra(self, time: float) -> float:
        extra = 0.0
        for start, end, spike in self.windows:
            if start <= time < end:
                extra = max(extra, spike)
        return extra

    def _wrap(self, original: Callable[[float], float]) -> Callable[[float], float]:
        def lossy(time: float) -> float:
            return min(1.0, original(time) + self._extra(time))

        return lossy


class ServerOutageInjector:
    """Make the Southampton server unreachable during the given windows.

    Wraps every station-facing entry point to raise :class:`LinkDown`
    inside a window — indistinguishable, from the station's side, from
    the session dropping mid-call, which is exactly the failure the Fig 4
    handlers (``comms_dropped``, ``override_fetch_failed``) are for.

    Against a fleet, one injector targets one *shard*; ``station`` then
    carries the shard's name (``"server0"``) on the announcement records
    so the invariant checker can track each shard's outage separately.  A
    fleet-wide outage passes every shard as ``server`` (a sequence) with
    the classic ``"*"`` label — one announcement, all shards dark.
    """

    kind = "server-outage"

    def __init__(self, sim: Simulation, server,
                 windows: Sequence[Window], station: str = "*") -> None:
        self.sim = sim
        targets: Sequence[SouthamptonServer] = (
            server if isinstance(server, (list, tuple)) else (server,)
        )
        self.servers = list(targets)
        self.windows = sorted(windows)
        for target in self.servers:
            for method_name in SERVER_OUTAGE_METHODS:
                setattr(target, method_name, self._wrap(getattr(target, method_name)))
        for window in self.windows:
            _announce(sim, station, self.kind, window)

    def _in_window(self, time: float) -> bool:
        return any(start <= time < end for start, end in self.windows)

    def _wrap(self, original: Callable) -> Callable:
        def unreachable(*args, **kwargs):
            if self._in_window(self.sim.now):
                raise LinkDown("server unreachable (injected outage)")
            return original(*args, **kwargs)

        return unreachable


# ----------------------------------------------------------------------
# Event faults: one-shot mutations scheduled on the kernel.
# ----------------------------------------------------------------------
def inject_rtc_fault(sim: Simulation, station: str, rtc: RealTimeClock,
                     at_s: float, skew_s=None) -> None:
    """Schedule an RTC reset (1970) or skew at ``at_s``."""

    def fire() -> None:
        if skew_s is None:
            rtc.reset()
        else:
            rtc.set_from_true_time(offset_s=skew_s)
        sim.trace.emit(TRACE_SOURCE, "fault_injected", station=station,
                       fault="rtc-reset", skew_s=skew_s)
        sim.obs.metrics.inc("faults_injected_total", station=station,
                            kind="rtc-reset")

    sim.call_at(at_s, fire)


def inject_battery_drain(sim: Simulation, station: str, bus: PowerBus,
                         at_s: float, energy_j: float) -> None:
    """Schedule a lump external drain (rodent-chewed insulation, shorted
    rail, a thief with a kettle) through the sync-bracketed bus path."""

    def fire() -> None:
        bus.drain_j(energy_j)
        sim.trace.emit(TRACE_SOURCE, "fault_injected", station=station,
                       fault="battery-drain", energy_j=energy_j)
        sim.obs.metrics.inc("faults_injected_total", station=station,
                            kind="battery-drain")

    sim.call_at(at_s, fire)


def inject_storage_corruption(sim: Simulation, station: str,
                              card: CompactFlashCard, at_s: float,
                              files: Sequence[str] = (),
                              recover_after_s=None) -> None:
    """Schedule CF-card damage at ``at_s``.

    With ``files``: the named files are destroyed outright (missing-file
    errors downstream).  Without: the card's corruption flag is raised —
    reads and listings fail until :meth:`CompactFlashCard.recover`, which
    ``recover_after_s`` can schedule (the paper's field-trip repair).
    """

    def fire() -> None:
        destroyed = []
        if files:
            for name in files:
                if card.exists(name):
                    card.delete(name)
                    destroyed.append(name)
        else:
            card.corrupted = True
        sim.trace.emit(TRACE_SOURCE, "fault_injected", station=station,
                       fault="storage-corruption",
                       files=list(destroyed) if files else None)
        sim.obs.metrics.inc("faults_injected_total", station=station,
                            kind="storage-corruption")

    sim.call_at(at_s, fire)
    if recover_after_s is not None and not files:
        def repair() -> None:
            card.recover()
            sim.trace.emit(TRACE_SOURCE, "fault_cleared", station=station,
                           fault="storage-corruption")

        sim.call_at(at_s + recover_after_s, repair)
