"""Declarative fault plans: *what* breaks, *where*, and *when*.

A :class:`FaultPlan` is a list of typed :class:`FaultSpec` entries, each
naming a fault kind, a target station and a schedule.  Schedules come in
two shapes:

- **fixed**: ``at_s`` (plus ``duration_s`` for window faults) pins the
  fault to an exact simulated time;
- **stochastic**: ``count`` occurrences drawn uniformly from ``window``
  (a ``[start_s, end_s]`` range) using a dedicated named RNG stream, so
  the draws are a pure function of the master seed and the plan — the
  same seed and plan always produce the same fault times, and drawing
  them never perturbs any other subsystem's stream.

Plans load from plain dicts or JSON files (:meth:`FaultPlan.from_dict`,
:meth:`FaultPlan.from_json_file`) and round-trip back out
(:meth:`FaultPlan.to_dict`), so a plan can live in
``DeploymentConfig.fault_plan``, a ``--faults plan.json`` CLI flag, or a
fleet sweep grid interchangeably.

The *application* of a plan to a live deployment lives one module up in
:mod:`repro.faults.harness`; this module is pure data + resolution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Every fault kind the harness knows how to inject.
FAULT_KINDS = (
    "gprs-outage",
    "probe-loss-spike",
    "storage-corruption",
    "rtc-reset",
    "battery-drain",
    "server-outage",
)

#: Kinds that occupy a time *window* (everything else is an instant event).
WINDOW_KINDS = frozenset({"gprs-outage", "probe-loss-spike", "server-outage"})

#: Kinds that target one station (``server-outage`` hits everyone at once).
STATION_KINDS = frozenset(FAULT_KINDS) - {"server-outage"}


@dataclass
class FaultSpec:
    """One fault entry in a plan.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    station:
        Target station name (``"base"`` or ``"reference"``); ignored for
        ``server-outage``.
    at_s:
        Fixed start time in simulated seconds.  Mutually exclusive with
        ``window``.
    duration_s:
        Window length for :data:`WINDOW_KINDS`; ignored for event kinds.
    count:
        Number of stochastic occurrences drawn from ``window``.
    window:
        ``(start_s, end_s)`` sampling range for stochastic scheduling.
    loss:
        ``probe-loss-spike``: additive packet-loss probability during the
        window (clamped so the effective loss never exceeds 1).
    files:
        ``storage-corruption``: named files destroyed outright.  Empty
        means the whole card's corruption flag is raised instead.
    recover_after_s:
        ``storage-corruption`` (whole-card only): schedule the off-line
        recovery procedure this long after corruption.
    skew_s:
        ``rtc-reset``: if set, skew the clock by this many seconds instead
        of resetting it to 1970.
    energy_j:
        ``battery-drain``: joules withdrawn through the power bus.
    server:
        ``server-outage`` only: the index of the fleet shard to take down
        (``"server<N>"``).  ``None`` keeps the classic behaviour — the
        whole server side (every shard) goes dark at once.
    """

    kind: str
    station: str = "base"
    at_s: Optional[float] = None
    duration_s: float = 0.0
    count: int = 1
    window: Optional[Tuple[float, float]] = None
    loss: float = 0.5
    files: Tuple[str, ...] = ()
    recover_after_s: Optional[float] = None
    skew_s: Optional[float] = None
    energy_j: float = 0.0
    server: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if (self.at_s is None) == (self.window is None):
            raise ValueError(
                f"{self.kind}: exactly one of at_s / window must be given"
            )
        if self.at_s is not None and self.at_s < 0:
            raise ValueError(f"{self.kind}: at_s must be >= 0, got {self.at_s}")
        if self.window is not None:
            self.window = (float(self.window[0]), float(self.window[1]))
            if not 0 <= self.window[0] < self.window[1]:
                raise ValueError(f"{self.kind}: window must satisfy 0 <= start < end")
            if self.count < 1:
                raise ValueError(f"{self.kind}: count must be >= 1")
        if self.kind in WINDOW_KINDS and self.duration_s <= 0:
            raise ValueError(f"{self.kind}: duration_s must be > 0")
        if self.kind == "probe-loss-spike" and not 0.0 < self.loss <= 1.0:
            raise ValueError(f"probe-loss-spike: loss must be in (0, 1], got {self.loss}")
        if self.kind == "battery-drain" and self.energy_j <= 0:
            raise ValueError("battery-drain: energy_j must be > 0")
        if self.server is not None:
            if self.kind != "server-outage":
                raise ValueError(f"{self.kind}: server targets only apply to server-outage")
            if self.server < 0:
                raise ValueError(f"server-outage: server must be >= 0, got {self.server}")
        self.files = tuple(self.files)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (the JSON wire format)."""
        out: Dict[str, Any] = {"kind": self.kind}
        if self.kind in STATION_KINDS:
            out["station"] = self.station
        if self.at_s is not None:
            out["at_s"] = self.at_s
        else:
            out["window"] = list(self.window)  # type: ignore[arg-type]
            out["count"] = self.count
        if self.kind in WINDOW_KINDS:
            out["duration_s"] = self.duration_s
        if self.kind == "probe-loss-spike":
            out["loss"] = self.loss
        if self.kind == "storage-corruption":
            if self.files:
                out["files"] = list(self.files)
            if self.recover_after_s is not None:
                out["recover_after_s"] = self.recover_after_s
        if self.kind == "rtc-reset" and self.skew_s is not None:
            out["skew_s"] = self.skew_s
        if self.kind == "battery-drain":
            out["energy_j"] = self.energy_j
        if self.kind == "server-outage" and self.server is not None:
            out["server"] = self.server
        return out

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultSpec":
        """Build a spec from its dict form, rejecting unknown keys."""
        known = {
            "kind", "station", "at_s", "duration_s", "count", "window",
            "loss", "files", "recover_after_s", "skew_s", "energy_j", "server",
        }
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"unknown FaultSpec key(s): {sorted(unknown)}")
        kwargs = dict(raw)
        if "window" in kwargs and kwargs["window"] is not None:
            kwargs["window"] = tuple(kwargs["window"])
        if "files" in kwargs:
            kwargs["files"] = tuple(kwargs["files"])
        return cls(**kwargs)


@dataclass(frozen=True)
class ResolvedFault:
    """One concrete occurrence of a spec: fixed times, ready to inject."""

    kind: str
    station: str
    start_s: float
    end_s: float  # == start_s for event faults
    spec: FaultSpec

    @property
    def is_window(self) -> bool:
        return self.kind in WINDOW_KINDS


@dataclass
class FaultPlan:
    """An ordered collection of fault specs plus a stream name for draws."""

    specs: List[FaultSpec] = field(default_factory=list)
    name: str = "plan"

    def to_dict(self) -> Dict[str, Any]:
        """The canonical dict form (JSON-serialisable, round-trips)."""
        return {"name": self.name, "faults": [spec.to_dict() for spec in self.specs]}

    def to_json(self) -> str:
        """Canonical JSON (sorted keys) — the digestable wire form."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultPlan":
        """Parse the dict form; accepts the output of :meth:`to_dict`."""
        unknown = set(raw) - {"name", "faults"}
        if unknown:
            raise ValueError(f"unknown FaultPlan key(s): {sorted(unknown)}")
        specs = [FaultSpec.from_dict(entry) for entry in raw.get("faults", [])]
        return cls(specs=specs, name=str(raw.get("name", "plan")))

    @classmethod
    def from_json_file(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON file (the ``--faults plan.json`` format)."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(self, rng_registry) -> List[ResolvedFault]:
        """Expand every spec into concrete occurrences, sorted by start time.

        Stochastic entries draw from the registry stream
        ``faults.<plan name>`` — one stream for the whole plan, consumed
        in spec order, so resolution is deterministic in (seed, plan) and
        independent of every other subsystem stream.
        """
        stream = rng_registry.stream(f"faults.{self.name}")
        resolved: List[ResolvedFault] = []
        for spec in self.specs:
            if spec.at_s is not None:
                starts: Sequence[float] = (spec.at_s,)
            else:
                lo, hi = spec.window  # type: ignore[misc]
                starts = sorted(
                    float(lo + stream.random() * (hi - lo)) for _ in range(spec.count)
                )
            duration = spec.duration_s if spec.kind in WINDOW_KINDS else 0.0
            for start in starts:
                resolved.append(
                    ResolvedFault(
                        kind=spec.kind,
                        station=(
                            spec.station if spec.kind in STATION_KINDS
                            else f"server{spec.server}" if spec.server is not None
                            else "*"
                        ),
                        start_s=start,
                        end_s=start + duration,
                        spec=spec,
                    )
                )
        resolved.sort(key=lambda f: (f.start_s, f.kind, f.station))
        return resolved


def canonical_chaos_plan() -> FaultPlan:
    """The CI chaos-smoke scenario: every fault kind over a 45-day mission.

    Times are fixed (the seed still drives the weather/link stochastics),
    so the scenario exercises each recovery path at a known point: a GPRS
    outage burst across two comms windows, a summer-grade probe loss
    spike, loss of the persisted last-run marker, a full RTC reset, an RTC
    skew on the reference station, a battery shock deep enough to matter
    and a day-long server outage.
    """
    day = 86400.0
    return FaultPlan(
        name="canonical-chaos",
        specs=[
            FaultSpec(kind="gprs-outage", station="base", at_s=2.0 * day,
                      duration_s=2.2 * day),
            FaultSpec(kind="probe-loss-spike", station="base", at_s=6.0 * day,
                      duration_s=3.0 * day, loss=0.75),
            FaultSpec(kind="storage-corruption", station="base", at_s=10.3 * day,
                      files=("state/last_run",)),
            FaultSpec(kind="rtc-reset", station="base", at_s=14.2 * day),
            FaultSpec(kind="rtc-reset", station="reference", at_s=18.6 * day,
                      skew_s=180.0),
            FaultSpec(kind="battery-drain", station="base", at_s=22.4 * day,
                      energy_j=6.0e6),
            FaultSpec(kind="server-outage", at_s=26.0 * day, duration_s=1.5 * day),
            FaultSpec(kind="gprs-outage", station="reference", count=2,
                      window=(30.0 * day, 40.0 * day), duration_s=0.8 * day),
        ],
    )
