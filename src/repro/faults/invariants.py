"""Recovery invariants, checked live against the trace stream.

The paper's robustness story is a set of *properties*, not features: a
server override can never force a station dark, a reset clock is always
either restored or retried, a browned-out station comes back by itself.
:class:`InvariantChecker` subscribes to the simulation trace and checks
those properties record-by-record while any fault plan runs:

- **override floor** — every ``override_applied`` must satisfy the
  Section III clamps: effective ≤ local, and a station whose local state
  allows comms (≥ 1) is never overridden to 0;
- **state monotonicity** — ``state_applied`` never exceeds the local
  (battery-allowed) state, and state 0 is only applied when the local
  decision was 0 or a clock recovery just parked the station deliberately;
- **clock custody** — every ``rtc_untrusted`` is followed, before the
  station does any science, by ``clock_recovered`` or
  ``clock_recovery_failed`` (a failed attempt is retried on the next wake
  because the clock stays distrusted);
- **power custody** — a browned-out station emits nothing until the bus
  raises its ``recovery`` edge.

Alongside the hard invariants, the checker tracks each injected fault to
its observed outcome (the station reconnecting after an outage window, a
drain shock absorbed or ridden out through brown-out, a reset clock
restored) and counts ``fault_recoveries_total{kind,result}``.  Faults
still open when the run ends are reported as *pending*, never as
violations — a 2-day sim that ends mid-outage proved nothing either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.kernel import Simulation
from repro.sim.trace import TraceRecord

from repro.faults.injectors import TRACE_SOURCE


@dataclass
class Violation:
    """One hard invariant breach."""

    time: float
    station: str
    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[t={self.time:.0f}s] {self.station}: {self.invariant}: {self.message}"


@dataclass
class FaultOutcome:
    """One injected fault occurrence tracked to its observed outcome."""

    kind: str
    station: str
    injected_at: float
    until: Optional[float] = None
    result: Optional[str] = None  # None while pending
    resolved_at: Optional[float] = None


@dataclass
class InvariantReport:
    """What the checker saw: violations, per-fault outcomes, leftovers."""

    violations: List[Violation] = field(default_factory=list)
    outcomes: List[FaultOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def pending(self) -> List[FaultOutcome]:
        return [o for o in self.outcomes if o.result is None]

    @property
    def resolved(self) -> List[FaultOutcome]:
        return [o for o in self.outcomes if o.result is not None]

    def format(self) -> str:
        lines = [
            f"invariants: {'OK' if self.ok else 'VIOLATED'}"
            f" ({len(self.violations)} violation(s),"
            f" {len(self.resolved)} fault(s) resolved,"
            f" {len(self.pending)} pending)"
        ]
        for violation in self.violations:
            lines.append(f"  VIOLATION {violation}")
        for outcome in self.outcomes:
            status = outcome.result or "pending"
            lines.append(
                f"  fault {outcome.kind} @ {outcome.station}"
                f" t={outcome.injected_at:.0f}s -> {status}"
            )
        return "\n".join(lines)


class _StationState:
    """Per-station bookkeeping for the clock/state/power invariants."""

    __slots__ = ("last_local", "clock_pending", "untrusted_this_run",
                 "powered_down")

    def __init__(self) -> None:
        self.last_local: Optional[int] = None
        # None | "awaiting_outcome" | "awaiting_retry"
        self.clock_pending: Optional[str] = None
        self.untrusted_this_run = False
        self.powered_down = False


class InvariantChecker:
    """Subscribe to a simulation's trace and check recovery invariants.

    Construct it before ``run`` (it must see every record), then call
    :meth:`finish` afterwards for the :class:`InvariantReport`.  The
    checker only *observes* — it draws no randomness and emits no trace
    records, so enabling it cannot perturb the run it is checking.  Its
    only write path is the ``fault_recoveries_total{kind,result}`` counter
    it keeps as outcomes resolve.
    """

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self._stations: Dict[str, _StationState] = {}
        self._outcomes: List[FaultOutcome] = []
        self._violations: List[Violation] = []
        self._finished = False
        sim.trace.subscribe(self._on_record)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finish(self) -> InvariantReport:
        """Stop observing and return the report (idempotent)."""
        if not self._finished:
            self._finished = True
            self.sim.trace.unsubscribe(self._on_record)
        return InvariantReport(violations=list(self._violations),
                               outcomes=list(self._outcomes))

    # ------------------------------------------------------------------
    # Record dispatch
    # ------------------------------------------------------------------
    def _station(self, name: str) -> _StationState:
        state = self._stations.get(name)
        if state is None:
            state = self._stations[name] = _StationState()
        return state

    def _violate(self, time: float, station: str, invariant: str,
                 message: str) -> None:
        self._violations.append(Violation(time, station, invariant, message))

    def _on_record(self, record: TraceRecord) -> None:
        source = record.source
        kind = record.kind
        if source == TRACE_SOURCE:
            if kind == "fault_injected":
                self._outcomes.append(FaultOutcome(
                    kind=record.detail.get("fault", "?"),
                    station=record.detail.get("station", "?"),
                    injected_at=record.time,
                    until=record.detail.get("until"),
                ))
            return

        if kind in ("override_served", "sync_session"):
            # A server (shard) answering a station after its outage window
            # proves that shard is back; ``source`` is its name ("server"
            # standalone, "server0"... in a fleet), which the per-shard
            # announcements use as their station label.
            self._resolve("server-outage", source, record.time, "reconnected")
            return

        station_name = source.split(".")[0]
        if "." not in source:
            self._on_station_record(station_name, record)
        elif source.endswith(".power"):
            self._on_power_record(station_name, record)
        elif source.endswith(".gprs") and kind == "connected":
            self._resolve("gprs-outage", station_name, record.time, "reconnected")

    # ------------------------------------------------------------------
    # Station-level invariants
    # ------------------------------------------------------------------
    def _on_station_record(self, station_name: str, record: TraceRecord) -> None:
        state = self._station(station_name)
        kind = record.kind
        time = record.time

        if kind == "run_start":
            if state.clock_pending == "awaiting_outcome":
                # Previous recovery attempt was cut (brown-out / watchdog
                # kill before an outcome record): the reboot retries
                # detection, which is exactly the "scheduled retry" the
                # invariant demands.
                state.clock_pending = "awaiting_retry"
            state.untrusted_this_run = False
            if state.powered_down:
                self._violate(time, station_name, "power-custody",
                              "daily run started while browned out")
        elif kind == "rtc_untrusted":
            state.clock_pending = "awaiting_outcome"
            state.untrusted_this_run = True
        elif kind == "clock_recovered":
            state.clock_pending = None
            self._resolve("rtc-reset", station_name, time, "clock_recovered")
        elif kind == "clock_recovery_failed":
            state.clock_pending = "awaiting_retry"
            self._resolve("rtc-reset", station_name, time, "recovery_failed_retry")
        elif kind == "local_state":
            if state.untrusted_this_run:
                self._violate(time, station_name, "clock-custody",
                              "station proceeded to science with a distrusted"
                              " RTC and no recovery outcome")
            if state.clock_pending == "awaiting_retry":
                # The clock passes the trust check again without an explicit
                # recovery — possible only when the last-run evidence was
                # itself destroyed (e.g. a storage fault).  Tolerated, but
                # recorded distinctly.
                state.clock_pending = None
                self._resolve("rtc-reset", station_name, time, "implicit")
            else:
                # A trusted local-state decision after an rtc fault that
                # never tripped detection: the skew was small enough to
                # tolerate (a hard reset always trips detection first).
                self._resolve("rtc-reset", station_name, time, "tolerated")
            state.last_local = record.detail.get("state")
            if state.powered_down:
                self._violate(time, station_name, "power-custody",
                              "local state decided while browned out")
            # A decided local state is battery-allowed by construction;
            # drain shocks that never browned the station out are absorbed.
            self._resolve("battery-drain", station_name, time, "absorbed")
            self._resolve("probe-loss-spike", station_name, time, "rode_through")
            self._resolve("storage-corruption", station_name, time, "rode_through")
        elif kind == "override_applied":
            local = record.detail.get("local")
            effective = record.detail.get("effective")
            if local is not None and effective is not None:
                if effective > local:
                    self._violate(time, station_name, "override-floor",
                                  f"override raised state above local"
                                  f" ({effective} > {local})")
                if local >= 1 and effective < 1:
                    self._violate(time, station_name, "override-floor",
                                  f"override forced state 0 from local {local}")
        elif kind == "state_applied":
            applied = record.detail.get("state")
            if state.powered_down:
                self._violate(time, station_name, "power-custody",
                              "state applied while browned out")
            if applied is not None and state.last_local is not None:
                if applied > state.last_local:
                    self._violate(time, station_name, "state-monotonic",
                                  f"applied state {applied} exceeds local"
                                  f" {state.last_local}")
                if applied == 0 and state.last_local > 0:
                    # Legitimate only as the deliberate post-clock-recovery
                    # parking (Section IV): the run that just recovered the
                    # clock applies S0 and waits for the next wake.
                    if not state.untrusted_this_run:
                        self._violate(time, station_name, "state-monotonic",
                                      f"state 0 applied with local state"
                                      f" {state.last_local} and no recovery"
                                      f" in progress")

    def _on_power_record(self, station_name: str, record: TraceRecord) -> None:
        state = self._station(station_name)
        if record.kind == "brownout":
            state.powered_down = True
        elif record.kind == "recovery":
            if state.powered_down:
                self._resolve("battery-drain", station_name, record.time,
                              "recovered_after_brownout")
            state.powered_down = False

    # ------------------------------------------------------------------
    # Fault outcome resolution
    # ------------------------------------------------------------------
    def _resolve(self, kind: str, station: str, time: float, result: str) -> None:
        """Resolve the oldest matching open fault, if its window is over."""
        for outcome in self._outcomes:
            if outcome.result is not None:
                continue
            if outcome.kind != kind:
                continue
            if station != "*" and outcome.station not in ("*", station):
                continue
            if outcome.until is not None and time < outcome.until:
                continue  # still inside the fault window; not a recovery yet
            outcome.result = result
            outcome.resolved_at = time
            self.sim.obs.metrics.inc("fault_recoveries_total",
                                     kind=kind, result=result)
            return
