"""Exporters: Prometheus text, JSON, Chrome trace-event JSON, NDJSON.

Every format renders from deterministically-ordered inputs (metrics sorted
by name + labels, spans in close order) with repr-stable numbers, so two
same-seed missions write byte-identical files — the property the golden
tests and the CI smoke step assert.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Sequence

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, format_value
from repro.obs.spans import SpanRecord, SpanRecorder


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels, extra=None) -> str:
    items = list(labels)
    if extra:
        items = sorted(items + list(extra))
    if not items:
        return ""
    body = ",".join(f'{key}="{_escape_label(str(value))}"' for key, value in items)
    return "{" + body + "}"


def metrics_to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for name, members in registry.families().items():
        lines.append(f"# TYPE {name} {members[0].kind}")
        for metric in members:
            if isinstance(metric, Histogram):
                for le, cumulative in metric.cumulative():
                    labels = _render_labels(metric.labels, extra=[("le", le)])
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _render_labels(metric.labels)
                lines.append(f"{name}_sum{labels} {format_value(metric.sum)}")
                lines.append(f"{name}_count{labels} {metric.count}")
            else:
                assert isinstance(metric, (Counter, Gauge))
                labels = _render_labels(metric.labels)
                lines.append(f"{name}{labels} {format_value(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _metric_to_dict(metric) -> dict:
    entry = {
        "name": metric.name,
        "kind": metric.kind,
        "labels": metric.label_dict(),
    }
    if isinstance(metric, Histogram):
        entry["buckets"] = [
            {"le": le, "count": cumulative} for le, cumulative in metric.cumulative()
        ]
        entry["sum"] = metric.sum
        entry["count"] = metric.count
    else:
        entry["value"] = metric.value
    return entry


def metrics_to_json(registry: MetricsRegistry) -> str:
    """Render the registry as a stable, indented JSON document."""
    payload = {
        "version": 1,
        "metrics": [_metric_to_dict(metric) for metric in registry.metrics()],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _span_records(spans) -> Sequence[SpanRecord]:
    if isinstance(spans, SpanRecorder):
        return spans.records
    return list(spans)


def spans_to_chrome_trace(spans) -> str:
    """Render spans as Chrome trace-event JSON (loads in chrome://tracing).

    Tracks map to thread ids (sorted alphabetically for stability); spans
    become ``ph: "X"`` complete events with microsecond sim-time stamps.
    """
    records = _span_records(spans)
    tracks = sorted({record.track for record in records})
    tids = {track: index + 1 for index, track in enumerate(tracks)}
    events: List[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": tids[track],
            "name": "thread_name",
            "args": {"name": track},
        }
        for track in tracks
    ]
    for record in records:
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tids[record.track],
                "name": record.name,
                "cat": "sim",
                "ts": round(record.start * 1e6, 3),
                "dur": round(record.duration * 1e6, 3),
                "args": dict(record.attrs),
            }
        )
    document = {"displayTimeUnit": "ms", "traceEvents": events}
    return json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"


def spans_to_ndjson(spans) -> str:
    """Render spans as newline-delimited JSON records (one span per line)."""
    lines = [
        json.dumps(
            {
                "name": record.name,
                "track": record.track,
                "start": record.start,
                "end": record.end,
                "depth": record.depth,
                "attrs": dict(record.attrs),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        for record in _span_records(spans)
    ]
    return "\n".join(lines) + ("\n" if lines else "")
