"""Data-provenance ledger: per-artifact lifecycle accounting.

The paper's operational story is *accountability under scarcity* — every
probe reading and dGPS observation file must eventually reach the
Southampton server despite watchdog-bounded comms windows and multi-day
backlog drains.  The ledger makes that accountable: every science
artifact gets a deterministic causal ID at creation, lifecycle edges are
derived purely from trace records, and mission close runs the
conservation check

    created == archived + in_flight + lost

with ``lost`` attributed to the injected fault that destroyed the data.

Artifact ID scheme (all components are simulated identifiers, never host
state, so IDs are byte-stable across replays and tie-break policies):

- ``reading:{probe_id}:{task_id}:{seq}`` — one probe sensor record, born
  when its task snapshot freezes a sequence number onto it;
- ``gps:{filename}`` — one dGPS observation file on a receiver card
  (e.g. ``gps:gps/base.gps/000001234.obs``);
- ``file:{station}:{name}`` — one staged outbox file on a station card
  (e.g. ``file:base:outbox/logs/000001``).

A staged file may *contain* readings or a gps artifact (its children);
archiving the file archives its children, losing it loses them — unless
a child already reached the server through another copy.

Stage model (ranks; edges never move an artifact backwards):

    created(0) -> stored(1) -> queued(2) -> transferred(3) -> archived(4)
                                                   `-> lost (terminal)

``transferred`` may repeat (a server-side ingest failure makes the comms
layer re-send the file) — that is idempotent, not an anomaly.  A second
``archived`` for the same artifact, or any edge after ``lost``, is an
anomaly: it means the simulation double-ingested or resurrected data,
and the conservation report flags it.

The ledger is a pure trace subscriber: it never emits records, never
touches the RNG, and never changes ``trace.byte_size`` sums (all
provenance records use the dedicated ``"prov"`` source, which no station
log-volume query matches), so attaching it cannot perturb the mission.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

#: Trace sources the ledger consumes.
PROV_SOURCE = "prov"
FAULT_SOURCE = "faults"
BULK_SOURCE = "protocol.bulk"
STOPWAIT_SOURCE = "protocol.stopwait"

#: Stage ranks; ``lost`` is terminal and handled out-of-band.
STAGES: Tuple[str, ...] = ("created", "stored", "queued", "transferred", "archived")
_RANK: Dict[str, int] = {stage: rank for rank, stage in enumerate(STAGES)}

#: Sim-time latency buckets: 1 min, 10 min, 1 h, 6 h, 1 d, 2 d, 7 d, 30 d.
LATENCY_BUCKETS: Tuple[float, ...] = (
    60.0, 600.0, 3600.0, 21600.0, 86400.0, 172800.0, 604800.0, 2592000.0,
)


class _Artifact:
    """Mutable per-artifact ledger row (internal)."""

    __slots__ = ("artifact_id", "cls", "stage", "stage_time", "created_time",
                 "lost_cause", "archived", "container")

    def __init__(self, artifact_id: str, cls: str, now: float) -> None:
        self.artifact_id = artifact_id
        self.cls = cls
        self.stage = "created"
        self.stage_time = now
        self.created_time = now
        self.lost_cause: Optional[str] = None
        self.archived = False
        #: The ``file:`` artifact currently carrying this one, if any.
        self.container: Optional[str] = None


class ConservationReport:
    """Mission-close accounting: created == archived + in_flight + lost."""

    def __init__(self, created: int, archived: int, in_flight: int, lost: int,
                 lost_by_cause: Dict[str, int],
                 by_class: Dict[str, Dict[str, int]],
                 anomalies: List[str]) -> None:
        self.created = created
        self.archived = archived
        self.in_flight = in_flight
        self.lost = lost
        self.lost_by_cause = lost_by_cause
        self.by_class = by_class
        self.anomalies = anomalies

    @property
    def conserved(self) -> bool:
        """Does the conservation identity hold?"""
        return self.created == self.archived + self.in_flight + self.lost

    @property
    def ok(self) -> bool:
        """Conservation holds and no anomalous edges were seen."""
        return self.conserved and not self.anomalies

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe summary (canonical key order left to the serialiser)."""
        return {
            "created": self.created,
            "archived": self.archived,
            "in_flight": self.in_flight,
            "lost": self.lost,
            "lost_by_cause": dict(sorted(self.lost_by_cause.items())),
            "by_class": {cls: dict(sorted(stages.items()))
                         for cls, stages in sorted(self.by_class.items())},
            "anomalies": list(self.anomalies),
            "conserved": self.conserved,
            "ok": self.ok,
        }

    def format(self) -> str:
        """Human-readable block for mission reports and the CLI."""
        verdict = "OK" if self.ok else "VIOLATED"
        lines = [
            f"conservation: {verdict} "
            f"(created={self.created} = archived={self.archived} "
            f"+ in_flight={self.in_flight} + lost={self.lost})",
        ]
        for cls, stages in sorted(self.by_class.items()):
            detail = ", ".join(f"{stage}={count}"
                               for stage, count in sorted(stages.items()))
            lines.append(f"  {cls}: {detail}")
        for cause, count in sorted(self.lost_by_cause.items()):
            lines.append(f"  lost[{cause}]: {count}")
        for anomaly in self.anomalies:
            lines.append(f"  anomaly: {anomaly}")
        return "\n".join(lines)


class ProvenanceLedger:
    """Trace-fed artifact lifecycle tracker with a conservation close-out.

    Attach with :meth:`attach` (done by :class:`~repro.obs.observability.
    Observability` when provenance is enabled); call :meth:`finish` at
    mission close for the :class:`ConservationReport`.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._artifacts: Dict[str, _Artifact] = {}
        #: ``file:`` artifact id -> child artifact ids it carries.
        self._children: Dict[str, List[str]] = {}
        self._anomalies: List[str] = []
        self._trace = None
        self._report: Optional[ConservationReport] = None
        # Cached metric handles: every reading pays an edge counter and a
        # latency histogram per stage, so re-resolving name+labels through
        # the registry each time dominates the ledger's cost (the <10%
        # overhead budget is the constraint here, not clarity).
        self._edge_counters: Dict[Tuple[str, str], object] = {}
        self._latency_hists: Dict[Tuple[str, str], object] = {}
        self._anomaly_counter = self.metrics.counter("provenance_anomalies_total")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, trace) -> None:
        """Subscribe to a :class:`~repro.sim.trace.Trace`."""
        self._trace = trace
        trace.subscribe(self.observe)

    def detach(self) -> None:
        """Unsubscribe (used by the provenance-off benchmark arm)."""
        if self._trace is not None:
            self._trace.unsubscribe(self.observe)
            self._trace = None

    # ------------------------------------------------------------------
    # Record dispatch
    # ------------------------------------------------------------------
    def observe(self, record) -> None:
        """Consume one trace record (the subscriber entry point)."""
        source = record.source
        if source == PROV_SOURCE:
            self._on_prov(record)
        elif source == FAULT_SOURCE:
            self._on_fault(record)
        elif source == BULK_SOURCE or source == STOPWAIT_SOURCE:
            self._on_fetch(record)

    def _on_prov(self, record) -> None:
        kind = record.kind
        detail = record.detail
        now = record.time
        if kind == "created":
            cls = detail.get("cls", "")
            if cls == "reading":
                probe = detail["probe"]
                task = detail["task"]
                for seq in range(detail["first_seq"],
                                 detail["first_seq"] + detail["count"]):
                    self._create(f"reading:{probe}:{task}:{seq}", "reading", now)
            elif cls == "gps":
                self._create(detail["artifact"], "gps", now)
        elif kind == "stored":
            self._advance(detail["artifact"], "stored", now)
        elif kind == "queued":
            self._on_queued(record)
        elif kind == "transferred":
            file_id = f"file:{detail['station']}:{detail['file']}"
            self._advance(file_id, "transferred", now, cascade=True)
        elif kind == "archived":
            file_id = f"file:{detail['station']}:{detail['file']}"
            self._advance(file_id, "archived", now, cascade=True)

    def _on_queued(self, record) -> None:
        detail = record.detail
        now = record.time
        file_id = f"file:{detail['station']}:{detail['file']}"
        self._create(file_id, "file", now)
        self._advance(file_id, "queued", now)
        children = self._children.setdefault(file_id, [])
        artifact = detail.get("artifact")
        if artifact is not None:
            children.append(artifact)
        probe = detail.get("probe")
        if probe is not None:
            task = detail["task"]
            children.extend(f"reading:{probe}:{task}:{seq}"
                            for seq in detail.get("seqs", ()))
        for child_id in children:
            child = self._artifacts.get(child_id)
            if child is not None:
                child.container = file_id
            self._advance(child_id, "queued", now)

    def _on_fetch(self, record) -> None:
        """Protocol fetch completion: delivered readings reach ``stored``."""
        if record.kind != "fetch_done":
            return
        detail = record.detail
        probe = detail.get("probe")
        task = detail.get("task")
        if probe is None or task is None:
            return
        now = record.time
        seqs = detail.get("new_seqs", detail.get("delivered_seqs", ()))
        for seq in seqs:
            self._advance(f"reading:{probe}:{task}:{seq}", "stored", now)
        rerequested = detail.get("rerequested", 0)
        if rerequested:
            self.metrics.inc("provenance_edges_total", amount=rerequested,
                             stage="rerequested", cls="reading")

    def _on_fault(self, record) -> None:
        if record.kind != "fault_injected":
            return
        detail = record.detail
        files = detail.get("files")
        if not files:
            return
        station = detail.get("station", "")
        cause = detail.get("fault", "fault")
        now = record.time
        for name in files:
            file_id = f"file:{station}:{name}"
            if file_id in self._artifacts:
                self._lose(file_id, cause, now)

    # ------------------------------------------------------------------
    # Ledger mutations
    # ------------------------------------------------------------------
    def _create(self, artifact_id: str, cls: str, now: float) -> None:
        if artifact_id in self._artifacts:
            if cls != "file":
                self._anomaly(f"duplicate create for {artifact_id}")
            return
        self._artifacts[artifact_id] = _Artifact(artifact_id, cls, now)
        self._edge("created", cls)

    def _advance(self, artifact_id: str, stage: str, now: float,
                 cascade: bool = False) -> None:
        artifact = self._artifacts.get(artifact_id)
        if artifact is None:
            # A trace record referenced data the ledger never saw created
            # (possible in unit rigs exercising one subsystem in isolation).
            self._anomaly(f"{stage} edge for unknown artifact {artifact_id}")
            return
        if artifact.lost_cause is not None:
            self._anomaly(f"{stage} edge for lost artifact {artifact_id}")
            return
        rank = _RANK[stage]
        prior = _RANK[artifact.stage]
        if stage == "archived":
            if artifact.archived:
                self._anomaly(f"duplicate archive of {artifact_id}")
                return
            artifact.archived = True
        elif rank < prior or (rank == prior and stage != "transferred"):
            # Re-transfer after a failed ingest is idempotent; everything
            # else repeating or regressing means the edge feed is broken.
            if rank < prior:
                if stage == "transferred" and artifact.archived:
                    # The station's post-upload delete failed, so it sent a
                    # file the server already archived: data is safe, the
                    # airtime was wasted.  Counted, not an anomaly.
                    self.metrics.inc("provenance_edges_total",
                                     stage="retransferred", cls=artifact.cls)
                    return
                self._anomaly(
                    f"backwards edge {artifact.stage}->{stage} for {artifact_id}")
            return
        self._latency(artifact, stage, now)
        artifact.stage = stage
        artifact.stage_time = now
        self._edge(stage, artifact.cls)
        if cascade:
            for child_id in self._children.get(artifact_id, ()):
                child = self._artifacts.get(child_id)
                # Cascade only to children still riding *this* copy — a
                # reading re-fetched into a newer file belongs to that one.
                if child is not None and child.container == artifact_id:
                    self._advance(child_id, stage, now)

    def _lose(self, artifact_id: str, cause: str, now: float) -> None:
        artifact = self._artifacts.get(artifact_id)
        if artifact is None or artifact.lost_cause is not None:
            return
        if artifact.archived:
            # The server already has it; destroying the local copy is not
            # data loss.
            return
        artifact.lost_cause = cause
        self._edge("lost", artifact.cls)
        self.metrics.inc("provenance_lost_total", cls=artifact.cls, cause=cause)
        for child_id in self._children.get(artifact_id, ()):
            child = self._artifacts.get(child_id)
            if child is not None and child.container == artifact_id:
                self._lose(child_id, cause, now)

    def _edge(self, stage: str, cls: str) -> None:
        counter = self._edge_counters.get((stage, cls))
        if counter is None:
            counter = self.metrics.counter("provenance_edges_total",
                                           stage=stage, cls=cls)
            self._edge_counters[(stage, cls)] = counter
        counter.inc()

    def _latency(self, artifact: _Artifact, stage: str, now: float) -> None:
        hist = self._latency_hists.get((stage, artifact.cls))
        if hist is None:
            hist = self.metrics.histogram("provenance_stage_latency_seconds",
                                          buckets=LATENCY_BUCKETS,
                                          stage=stage, cls=artifact.cls)
            self._latency_hists[(stage, artifact.cls)] = hist
        hist.observe(now - artifact.stage_time)

    def _anomaly(self, message: str) -> None:
        self._anomalies.append(message)
        self._anomaly_counter.inc()

    # ------------------------------------------------------------------
    # Close-out
    # ------------------------------------------------------------------
    def finish(self, now: float) -> ConservationReport:
        """Run the conservation check and pin the result into the metrics.

        Idempotent: the first call computes and caches the report; later
        calls return the same object, so report sections and CLI exports
        can both close the ledger without double-counting.
        """
        if self._report is not None:
            return self._report
        created = len(self._artifacts)
        archived = in_flight = lost = 0
        lost_by_cause: Dict[str, int] = {}
        by_class: Dict[str, Dict[str, int]] = {}
        for artifact in self._artifacts.values():
            stages = by_class.setdefault(artifact.cls, {})
            if artifact.lost_cause is not None:
                lost += 1
                lost_by_cause[artifact.lost_cause] = (
                    lost_by_cause.get(artifact.lost_cause, 0) + 1)
                stages["lost"] = stages.get("lost", 0) + 1
            elif artifact.archived:
                archived += 1
                stages["archived"] = stages.get("archived", 0) + 1
            else:
                in_flight += 1
                stages[artifact.stage] = stages.get(artifact.stage, 0) + 1
        report = ConservationReport(
            created, archived, in_flight, lost, lost_by_cause, by_class,
            list(self._anomalies))
        self.metrics.set_gauge("provenance_created", float(created))
        self.metrics.set_gauge("provenance_archived", float(archived))
        self.metrics.set_gauge("provenance_in_flight", float(in_flight))
        self.metrics.set_gauge("provenance_lost", float(lost))
        self.metrics.set_gauge("provenance_conserved",
                               1.0 if report.conserved else 0.0)
        for cls, stages in sorted(by_class.items()):
            for stage, count in sorted(stages.items()):
                self.metrics.set_gauge("provenance_artifacts", float(count),
                                       cls=cls, stage=stage)
        self._report = report
        return report
