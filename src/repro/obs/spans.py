"""Spans: sim-time intervals forming per-track trees.

A span brackets one activity (a daily run, a GPRS session, a probe fetch)
between two *simulated* instants.  Spans never read the host clock, so a
same-seed replay produces a byte-identical span stream; wall-clock
self-profiling lives in :mod:`repro.obs.profile` and is excluded from
every export.

Because many processes interleave in one simulation, nesting is tracked
per *track* (one track per station or process, like a thread id in a
Chrome trace): a span opened on track ``"base"`` is the child of the
innermost span still open on ``"base"``, regardless of what other tracks
did in between.  Kernel per-event spans are *instants* (start == end —
callbacks run in zero simulated time) recorded on the owning process's
track.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - break the sim <-> obs import cycle
    from repro.sim.simtime import SimClock

#: Canonical sorted ``((key, value), ...)`` attribute form.
AttrItems = Tuple[Tuple[str, object], ...]


def attr_items(attrs: Mapping[str, object]) -> AttrItems:
    """Normalise span attributes to their canonical sorted tuple form."""
    return tuple(sorted((str(key), value) for key, value in attrs.items()))


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    Attributes
    ----------
    name:
        What the span brackets (e.g. ``"comms_session"``).
    track:
        The station/process lane the span belongs to.
    start, end:
        Simulated seconds since the epoch (``start == end`` for instants).
    depth:
        Nesting depth within the track at open time (0 = top level).
    attrs:
        Sorted ``(key, value)`` payload pairs.
    """

    name: str
    track: str
    start: float
    end: float
    depth: int
    attrs: AttrItems = ()

    @property
    def duration(self) -> float:
        """Simulated seconds the span covers."""
        return self.end - self.start


class _OpenSpan:
    """Context manager handle returned by :meth:`SpanRecorder.span`."""

    __slots__ = ("_recorder", "name", "track", "attrs", "start", "depth")

    def __init__(self, recorder: "SpanRecorder", name: str, track: str,
                 attrs: AttrItems) -> None:
        self._recorder = recorder
        self.name = name
        self.track = track
        self.attrs = attrs
        self.start = 0.0
        self.depth = 0

    def __enter__(self) -> "_OpenSpan":
        self.start = self._recorder.now()
        stack = self._recorder._stacks.setdefault(self.track, [])
        self.depth = len(stack)
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        stack = self._recorder._stacks.get(self.track, [])
        if stack and stack[-1] is self:
            stack.pop()
        attrs = self.attrs
        if exc_type is not None:
            attrs = attr_items(dict(attrs, error=exc_type.__name__))
        self._recorder.records.append(
            SpanRecord(name=self.name, track=self.track, start=self.start,
                       end=self._recorder.now(), depth=self.depth, attrs=attrs)
        )
        return False


class SpanRecorder:
    """Collects finished spans; the kernel and subsystems feed it.

    Records are appended in close order, which is fully determined by the
    simulation's event order — no sorting is needed for reproducibility.
    """

    def __init__(self, clock: "Optional[SimClock]" = None) -> None:
        self.clock = clock
        self.records: List[SpanRecord] = []
        self._stacks: Dict[str, List[_OpenSpan]] = {}

    def now(self) -> float:
        """Current simulated time (0.0 when no clock is attached)."""
        return self.clock.now if self.clock is not None else 0.0

    def span(self, name: str, track: str = "sim", **attrs: object) -> _OpenSpan:
        """Open a span as a context manager::

            with recorder.span("gprs_session", track="base", files=3):
                ...
        """
        return _OpenSpan(self, name, track, attr_items(attrs))

    def instant(self, name: str, track: str = "sim",
                when: Optional[float] = None, **attrs: object) -> SpanRecord:
        """Record a zero-duration span (kernel events, edges)."""
        time = self.now() if when is None else when
        stack = self._stacks.get(track)
        record = SpanRecord(name=name, track=track, start=time, end=time,
                            depth=len(stack) if stack else 0,
                            attrs=attr_items(attrs))
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # Aggregation (mission report, busiest-process summaries)
    # ------------------------------------------------------------------
    def totals_by_name(self) -> Dict[str, Tuple[int, float]]:
        """``{span name: (count, total simulated seconds)}``."""
        totals: Dict[str, Tuple[int, float]] = {}
        for record in self.records:
            count, seconds = totals.get(record.name, (0, 0.0))
            totals[record.name] = (count + 1, seconds + record.duration)
        return totals

    def totals_by_track(self) -> Dict[str, Tuple[int, float]]:
        """``{track: (count, total simulated seconds at depth 0)}``.

        Only top-level spans count toward a track's busy time, so nested
        child spans are not double-counted.
        """
        totals: Dict[str, Tuple[int, float]] = {}
        for record in self.records:
            if record.depth != 0:
                continue
            count, seconds = totals.get(record.track, (0, 0.0))
            totals[record.track] = (count + 1, seconds + record.duration)
        return totals

    def __len__(self) -> int:
        return len(self.records)
