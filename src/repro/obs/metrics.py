"""Deterministic metrics: counters, gauges, and fixed-bucket histograms.

The registry is the engineering view the stations' logfiles never gave the
Glacsweb team: per-subsystem counts, energy gauges, and latency/size
distributions, keyed by name + label set the way Prometheus does it.

Determinism contract (see ``docs/observability.md``):

- values must derive from *simulated* quantities only (sim time, modelled
  bytes, modelled joules) — never the host clock or host memory addresses;
- label values must come from bounded sets (station names, result enums),
  never per-reading identifiers;
- exports render metrics sorted by ``(name, labels)`` with repr-stable
  number formatting, so two same-seed missions produce byte-identical
  dumps regardless of creation order.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Canonical, sorted ``((key, value), ...)`` form of a label set.
LabelItems = Tuple[Tuple[str, str], ...]

#: Generic decade buckets for histograms created without an explicit spec.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0,
)


def label_items(labels: Mapping[str, object]) -> LabelItems:
    """Normalise a label mapping to its canonical sorted tuple form."""
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


def format_value(value: float) -> str:
    """Render a sample value byte-stably (integers without a trailing .0)."""
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class Metric:
    """Base class: a named sample (or sample family member) with labels."""

    kind = "untyped"

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels

    def label_dict(self) -> Dict[str, str]:
        """The labels as a plain dict (for JSON export)."""
        return dict(self.labels)

    def sort_key(self) -> Tuple[str, LabelItems]:
        """Deterministic ordering key used by every exporter."""
        return (self.name, self.labels)


class Counter(Metric):
    """A monotonically increasing count (events, bytes, joules)."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (amount={amount})")
        self.value += amount


class Gauge(Metric):
    """A point-in-time value that can move both ways (SoC, volts, depth)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta``."""
        self.value += delta


class Histogram(Metric):
    """Fixed-bucket distribution with Prometheus ``le`` semantics.

    Buckets are upper bounds; an implicit ``+Inf`` bucket always exists.
    Bucket bounds are pinned at first creation of the metric name, so every
    label set of one histogram family shares the same bounds.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelItems,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, labels)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name} buckets must be strictly increasing")
        self.buckets = bounds
        self.counts = [0] * len(bounds)
        self.inf_count = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.inf_count += 1

    def cumulative(self) -> List[Tuple[str, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``+Inf``."""
        total = 0
        rows: List[Tuple[str, int]] = []
        for bound, count in zip(self.buckets, self.counts):
            total += count
            rows.append((format_value(bound), total))
        rows.append(("+Inf", total + self.inf_count))
        return rows

    def mean(self) -> float:
        """Average of all observed samples (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create store of metrics keyed by name + label set.

    Each metric *name* is pinned to one kind (and, for histograms, one
    bucket spec) at first use; a later access with a conflicting kind
    raises — silent type confusion would corrupt exports.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], Metric] = {}
        self._kinds: Dict[str, str] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    # Get-or-create accessors
    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: Mapping[str, object]):
        pinned = self._kinds.get(name)
        if pinned is not None and pinned != cls.kind:
            raise TypeError(f"metric {name!r} is a {pinned}, not a {cls.kind}")
        key = (name, label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            if cls is Histogram:
                metric = Histogram(name, key[1],
                                   buckets=self._buckets.get(name, DEFAULT_BUCKETS))
            else:
                metric = cls(name, key[1])
            self._metrics[key] = metric
            self._kinds[name] = cls.kind
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``name`` + ``labels``, created on first use."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``name`` + ``labels``, created on first use."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None,
                  **labels: object) -> Histogram:
        """The histogram for ``name`` + ``labels``.

        ``buckets`` given on first use of ``name`` pins the family's bucket
        bounds; later calls may omit it (a conflicting spec raises).
        """
        if buckets is not None:
            bounds = tuple(float(b) for b in buckets)
            pinned = self._buckets.setdefault(name, bounds)
            if pinned != bounds:
                raise ValueError(f"histogram {name!r} already pinned to buckets {pinned}")
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------
    # Convenience mutators (the instrumentation call sites use these)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """Increment the counter ``name{labels}`` by ``amount``."""
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge ``name{labels}`` to ``value``."""
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float,
                buckets: Optional[Sequence[float]] = None, **labels: object) -> None:
        """Record ``value`` into the histogram ``name{labels}``."""
        self.histogram(name, buckets=buckets, **labels).observe(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def metrics(self) -> List[Metric]:
        """Every registered metric, sorted by ``(name, labels)``."""
        return sorted(self._metrics.values(), key=Metric.sort_key)

    def families(self) -> "Dict[str, List[Metric]]":
        """Metrics grouped by name, names sorted, members label-sorted."""
        grouped: Dict[str, List[Metric]] = {}
        for metric in self.metrics():
            grouped.setdefault(metric.name, []).append(metric)
        return grouped

    def kind_of(self, name: str) -> Optional[str]:
        """The pinned kind of metric ``name`` (None if never used)."""
        return self._kinds.get(name)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self.metrics())

    def __len__(self) -> int:
        return len(self._metrics)
