"""Deterministic metrics: counters, gauges, and fixed-bucket histograms.

The registry is the engineering view the stations' logfiles never gave the
Glacsweb team: per-subsystem counts, energy gauges, and latency/size
distributions, keyed by name + label set the way Prometheus does it.

Determinism contract (see ``docs/observability.md``):

- values must derive from *simulated* quantities only (sim time, modelled
  bytes, modelled joules) — never the host clock or host memory addresses;
- label values must come from bounded sets (station names, result enums),
  never per-reading identifiers;
- exports render metrics sorted by ``(name, labels)`` with repr-stable
  number formatting, so two same-seed missions produce byte-identical
  dumps regardless of creation order.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Canonical, sorted ``((key, value), ...)`` form of a label set.
LabelItems = Tuple[Tuple[str, str], ...]

#: Generic decade buckets for histograms created without an explicit spec.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0,
)


def label_items(labels: Mapping[str, object]) -> LabelItems:
    """Normalise a label mapping to its canonical sorted tuple form."""
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


def format_value(value: float) -> str:
    """Render a sample value byte-stably (integers without a trailing .0)."""
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class Metric:
    """Base class: a named sample (or sample family member) with labels."""

    kind = "untyped"

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels

    def label_dict(self) -> Dict[str, str]:
        """The labels as a plain dict (for JSON export)."""
        return dict(self.labels)

    def sort_key(self) -> Tuple[str, LabelItems]:
        """Deterministic ordering key used by every exporter."""
        return (self.name, self.labels)


class Counter(Metric):
    """A monotonically increasing count (events, bytes, joules)."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (amount={amount})")
        self.value += amount


class Gauge(Metric):
    """A point-in-time value that can move both ways (SoC, volts, depth)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta``."""
        self.value += delta


class Histogram(Metric):
    """Fixed-bucket distribution with Prometheus ``le`` semantics.

    Buckets are upper bounds; an implicit ``+Inf`` bucket always exists.
    Bucket bounds are pinned at first creation of the metric name, so every
    label set of one histogram family shares the same bounds.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelItems,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, labels)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name} buckets must be strictly increasing")
        self.buckets = bounds
        self.counts = [0] * len(bounds)
        self.inf_count = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.inf_count += 1

    def cumulative(self) -> List[Tuple[str, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``+Inf``."""
        total = 0
        rows: List[Tuple[str, int]] = []
        for bound, count in zip(self.buckets, self.counts):
            total += count
            rows.append((format_value(bound), total))
        rows.append(("+Inf", total + self.inf_count))
        return rows

    def mean(self) -> float:
        """Average of all observed samples (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram of the *same bucket spec* into this one.

        Bucket-wise counts, the ``+Inf`` bucket, the sample sum and the
        sample count all add; a differing bucket spec raises — silently
        re-binning samples would corrupt every downstream percentile.
        """
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name}: cannot merge buckets {other.buckets} "
                f"into {self.buckets}")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.inf_count += other.inf_count
        self.sum += other.sum
        self.count += other.count


class MetricsRegistry:
    """Get-or-create store of metrics keyed by name + label set.

    Each metric *name* is pinned to one kind (and, for histograms, one
    bucket spec) at first use; a later access with a conflicting kind
    raises — silent type confusion would corrupt exports.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], Metric] = {}
        self._kinds: Dict[str, str] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    # Get-or-create accessors
    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: Mapping[str, object]):
        pinned = self._kinds.get(name)
        if pinned is not None and pinned != cls.kind:
            raise TypeError(f"metric {name!r} is a {pinned}, not a {cls.kind}")
        key = (name, label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            if cls is Histogram:
                metric = Histogram(name, key[1],
                                   buckets=self._buckets.get(name, DEFAULT_BUCKETS))
            else:
                metric = cls(name, key[1])
            self._metrics[key] = metric
            self._kinds[name] = cls.kind
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``name`` + ``labels``, created on first use."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``name`` + ``labels``, created on first use."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None,
                  **labels: object) -> Histogram:
        """The histogram for ``name`` + ``labels``.

        ``buckets`` given on first use of ``name`` pins the family's bucket
        bounds; later calls may omit it (a conflicting spec raises).
        """
        if buckets is not None:
            bounds = tuple(float(b) for b in buckets)
            pinned = self._buckets.setdefault(name, bounds)
            if pinned != bounds:
                raise ValueError(f"histogram {name!r} already pinned to buckets {pinned}")
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------
    # Convenience mutators (the instrumentation call sites use these)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """Increment the counter ``name{labels}`` by ``amount``."""
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge ``name{labels}`` to ``value``."""
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float,
                buckets: Optional[Sequence[float]] = None, **labels: object) -> None:
        """Record ``value`` into the histogram ``name{labels}``."""
        self.histogram(name, buckets=buckets, **labels).observe(value)

    # ------------------------------------------------------------------
    # Snapshot / merge (the fleet rollup contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The registry as a JSON-safe document, in canonical order.

        Floats survive a JSON round-trip exactly (``repr`` round-trips),
        so a snapshot folded from a cache hit is indistinguishable from
        one folded off the live registry — the property the sweep
        rollup's byte-identity guarantee rests on.
        """
        entries: List[Dict[str, object]] = []
        for metric in self.metrics():
            entry: Dict[str, object] = {
                "name": metric.name,
                "kind": metric.kind,
                "labels": metric.label_dict(),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["counts"] = list(metric.counts)
                entry["inf_count"] = metric.inf_count
                entry["sum"] = metric.sum
                entry["count"] = metric.count
            else:
                entry["value"] = metric.value
            entries.append(entry)
        return {"version": 1, "metrics": entries}

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        registry = cls()
        for entry in snapshot["metrics"]:  # type: ignore[index]
            name = entry["name"]
            labels = entry["labels"]
            kind = entry["kind"]
            if kind == "counter":
                registry.counter(name, **labels).inc(float(entry["value"]))
            elif kind == "gauge":
                registry.gauge(name, **labels).set(float(entry["value"]))
            elif kind == "histogram":
                histogram = registry.histogram(name, buckets=entry["buckets"],
                                               **labels)
                histogram.counts = [int(c) for c in entry["counts"]]
                histogram.inf_count = int(entry["inf_count"])
                histogram.sum = float(entry["sum"])
                histogram.count = int(entry["count"])
            else:
                raise ValueError(f"unknown metric kind {kind!r} in snapshot")
        return registry

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Counters add, gauges take the incoming value (callers wanting a
        deterministic winner must order their merges — see
        :mod:`repro.obs.rollup` for the order-independent fleet fold),
        histograms merge bucket-wise.  Kind conflicts raise.
        """
        for metric in other.metrics():
            labels = metric.label_dict()
            if isinstance(metric, Counter):
                self.counter(metric.name, **labels).inc(metric.value)
            elif isinstance(metric, Gauge):
                self.gauge(metric.name, **labels).set(metric.value)
            elif isinstance(metric, Histogram):
                self.histogram(metric.name, buckets=metric.buckets,
                               **labels).merge(metric)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def metrics(self) -> List[Metric]:
        """Every registered metric, sorted by ``(name, labels)``."""
        return sorted(self._metrics.values(), key=Metric.sort_key)

    def families(self) -> "Dict[str, List[Metric]]":
        """Metrics grouped by name, names sorted, members label-sorted."""
        grouped: Dict[str, List[Metric]] = {}
        for metric in self.metrics():
            grouped.setdefault(metric.name, []).append(metric)
        return grouped

    def kind_of(self, name: str) -> Optional[str]:
        """The pinned kind of metric ``name`` (None if never used)."""
        return self._kinds.get(name)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self.metrics())

    def __len__(self) -> int:
        return len(self._metrics)
