"""The per-simulation observability hub: metrics + spans + profiling.

One :class:`Observability` instance hangs off every
:class:`~repro.sim.kernel.Simulation` (as ``sim.obs``), the way ``Trace``
does.  Subsystems reach it through the kernel — ``sim.obs.metrics.inc(...)``,
``with sim.obs.span(...)`` — so nothing above the kernel imports this
package directly and the layering rule (architecture.md §7) holds.

Three capability tiers, cheapest first:

1. **metrics + explicit spans** — always on.  Counters/gauges fed by the
   instrumented subsystems, plus a trace bridge counting every
   :class:`~repro.sim.trace.TraceRecord` by source and kind.
2. **kernel spans** (``enable_kernel_spans`` / ``--spans-out``) — one
   instant span per processed event with the owning process name and the
   queue depth; the raw material for Chrome traces.
3. **self-profiling** (``enable_self_profile`` / ``--self-profile``) — the
   only wall-clock user in the system; excluded from every export (see
   :mod:`repro.obs.profile`).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import WallClockProfile
from repro.obs.provenance import ConservationReport, ProvenanceLedger
from repro.obs.spans import SpanRecorder, _OpenSpan

if TYPE_CHECKING:  # pragma: no cover - break the sim <-> obs import cycle
    from repro.sim.simtime import SimClock


def owner_process_name(event) -> str:
    """Name of the process an event will resume, or "" if unowned.

    A process waits on an event by appending its bound ``_resume`` method
    to the event's callbacks; the callback's ``__self__`` is the process.
    Must be called *before* the event's callbacks run (they are consumed).
    Reads the raw ``_callbacks`` storage so a callback-free event is not
    forced to materialise a list just to be inspected.
    """
    for callback in getattr(event, "_callbacks", None) or ():
        owner = getattr(callback, "__self__", None)
        if owner is not None and hasattr(owner, "_generator"):
            name = getattr(owner, "name", "")
            if name:
                return name
    return ""


class Observability:
    """Metrics registry + span recorder + optional wall-clock profile."""

    def __init__(
        self,
        clock: "Optional[SimClock]" = None,
        kernel_spans: bool = False,
        self_profile: bool = False,
        trace_bridge: bool = True,
        provenance: bool = True,
    ) -> None:
        self.clock = clock
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder(clock)
        #: Data-provenance ledger (artifact lifecycle accounting); shares
        #: the metrics registry so its counters ride every export.
        self.provenance: Optional[ProvenanceLedger] = (
            ProvenanceLedger(self.metrics) if provenance else None
        )
        self.kernel_spans = kernel_spans
        self.profile: Optional[WallClockProfile] = (
            WallClockProfile() if self_profile else None
        )
        #: Fast-path flag consulted when the kernel (re)selects its per-step
        #: dispatch; True only when per-event work (spans or profiling) is
        #: actually wanted.
        self.kernel_active = bool(kernel_spans or self_profile)
        self._trace_bridge = trace_bridge
        #: ``(source, kind) -> Counter`` — cached trace-bridge handles.
        self._trace_counters: dict = {}
        #: Callbacks to re-select cached kernel dispatch when flags change
        #: (the kernel registers :meth:`Simulation._refresh_dispatch` here,
        #: so the run loop never re-reads ``kernel_active`` per event).
        self._dispatch_listeners: list = []

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def _add_dispatch_listener(self, callback: Callable[[], None]) -> None:
        self._dispatch_listeners.append(callback)

    def _remove_dispatch_listener(self, callback: Callable[[], None]) -> None:
        if callback in self._dispatch_listeners:
            self._dispatch_listeners.remove(callback)

    def _notify_dispatch(self) -> None:
        for callback in list(self._dispatch_listeners):
            callback()

    def enable_kernel_spans(self) -> None:
        """Record an instant span for every kernel event from now on."""
        self.kernel_spans = True
        self.kernel_active = True
        self._notify_dispatch()

    def enable_self_profile(self) -> None:
        """Time every event's callbacks on the host clock from now on."""
        if self.profile is None:
            self.profile = WallClockProfile()
        self.kernel_active = True
        self._notify_dispatch()

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str, track: str = "sim", **attrs: object) -> _OpenSpan:
        """Open an explicit span (see :meth:`SpanRecorder.span`)."""
        return self.spans.span(name, track=track, **attrs)

    # ------------------------------------------------------------------
    # Trace bridge
    # ------------------------------------------------------------------
    def attach_trace(self, trace) -> None:
        """Subscribe the metrics layer to a :class:`Trace`.

        Every trace record increments ``trace_records_total{source,kind}``
        — the cheap, zero-config coverage layer underneath the explicit
        subsystem metrics.
        """
        if self._trace_bridge:
            trace.subscribe(self._on_trace_record)
        if self.provenance is not None:
            self.provenance.attach(trace)

    def _on_trace_record(self, record) -> None:
        # Runs for *every* trace record — cache the counter handle per
        # (source, kind) instead of re-resolving labels each time.
        key = (record.source, record.kind)
        counter = self._trace_counters.get(key)
        if counter is None:
            counter = self.metrics.counter(
                "trace_records_total", source=record.source, kind=record.kind)
            self._trace_counters[key] = counter
        counter.inc()

    # ------------------------------------------------------------------
    # Kernel hook
    # ------------------------------------------------------------------
    def kernel_step(self, event, when: float, queue_depth: int,
                    run_callbacks: Callable[[], None]) -> None:
        """Instrument one kernel step (called only while ``kernel_active``).

        The span is recorded with the pre-callback state (owner, queue
        depth); callbacks run in zero simulated time, so kernel event
        spans are instants.
        """
        owner = owner_process_name(event)
        if self.kernel_spans:
            self.metrics.inc("kernel_events_total", type=type(event).__name__)
            self.spans.instant(
                event.name or type(event).__name__,
                track=owner or "kernel",
                when=when,
                queue_depth=queue_depth,
            )
        if self.profile is not None:
            start = time.perf_counter()  # repro-lint: disable=wall-clock
            run_callbacks()
            elapsed = time.perf_counter() - start  # repro-lint: disable=wall-clock
            self.profile.tick(owner or type(event).__name__, elapsed)
        else:
            run_callbacks()

    # ------------------------------------------------------------------
    # Export-time collection
    # ------------------------------------------------------------------
    def collect_kernel(self, sim) -> None:
        """Snapshot kernel health gauges from ``sim`` into the registry.

        Called just before an export so the dump always carries the kernel
        family even when per-event instrumentation is off.
        """
        self.metrics.set_gauge("kernel_events_processed", float(sim.events_processed))
        self.metrics.set_gauge("kernel_events_scheduled", float(sim.events_scheduled))
        self.metrics.set_gauge("kernel_queue_depth", float(sim.queue_depth))
        self.metrics.set_gauge("kernel_sim_time_seconds", sim.now)
        self.metrics.set_gauge("dispatch_batches_total", float(sim.dispatch_batches))

    def finalise(self, sim) -> "Optional[ConservationReport]":
        """Mission-close collection: kernel gauges + provenance close-out.

        Idempotent (the ledger caches its report), so CLI exports and the
        mission report can both finalise without double-counting.  Returns
        the conservation report, or None when provenance is disabled.
        """
        self.collect_kernel(sim)
        if self.provenance is None:
            return None
        return self.provenance.finish(sim.now)
