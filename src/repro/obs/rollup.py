"""Streaming fleet metric rollup: order-independent fold of job snapshots.

The ROADMAP's campaign-orchestration item requires million-run sweeps
that never hold all results in memory.  Each sweep job serialises its
final :class:`~repro.obs.metrics.MetricsRegistry` via ``snapshot()``;
the runner folds snapshots into one :class:`RollupAggregate` as futures
complete and drops the per-run copy.  The aggregate's JSON rendering is
**byte-identical** regardless of ``--jobs``, cache state, or completion
order:

- counters accumulate through :class:`ExactSum` (Shewchuk's error-free
  partial sums, finalised with ``math.fsum``), so float addition order
  cannot leak into the result;
- gauges keep the value from the largest fold key (config digest, fault
  plan, seed) — "last by deterministic key", not "last to arrive" — and
  the winning key is recorded in the JSON so shard merges re-apply the
  same rule;
- histograms merge bucket-wise (integer counts; sums via ExactSum).

Shards produced by independent sweep invocations merge with
:func:`merge_rollups` (the ``repro-sim rollup`` subcommand); overlapping
fold keys across shards raise rather than silently double-count.

Inside one sweep the chunked executor ships **partial** aggregates from
worker processes instead (:meth:`RollupAggregate.to_partial_doc` /
:meth:`RollupAggregate.absorb_partial`).  Partials carry the raw
Shewchuk partial sums — lossless, unlike the correctly-rounded values a
final rollup JSON records — so the parent's merged total is the exact
sum of every raw increment regardless of how jobs were partitioned into
chunks.  Rounding a shard's counter and then summing the rounded values
is *not* partition-independent; shipping partials is what keeps the
rollup byte-identical across ``--jobs``, chunk sizes, and backends.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry

#: A fold key: ``(config_digest, fault_plan_json_or_empty, seed)``.
FoldKey = Tuple[str, str, int]

#: A metric identity inside the aggregate: ``(name, sorted label items)``.
_MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


class ExactSum:
    """Error-free float accumulator (Shewchuk partials, fsum finalise).

    ``add`` maintains a list of non-overlapping partial sums whose exact
    mathematical total equals the running sum; ``value`` collapses them
    with ``math.fsum``, which is correctly rounded.  The result therefore
    depends only on the *multiset* of added values — never their order —
    which is what makes the rollup byte-identical across completion
    orders.
    """

    __slots__ = ("_partials",)

    def __init__(self) -> None:
        self._partials: List[float] = []

    def add(self, value: float) -> None:
        """Fold one value into the accumulator."""
        partials = self._partials
        count = 0
        for partial in partials:
            if abs(value) < abs(partial):
                value, partial = partial, value
            high = value + partial
            low = partial - (high - value)
            if low:
                partials[count] = low
                count += 1
            value = high
        partials[count:] = [value]

    def value(self) -> float:
        """The correctly-rounded sum of everything added so far."""
        return math.fsum(self._partials)

    def partials(self) -> List[float]:
        """The non-overlapping partials — a lossless copy of the state.

        Their exact mathematical sum equals the running sum, so feeding
        them one by one into another accumulator transfers the state
        without any rounding step in between.
        """
        return list(self._partials)

    def add_partials(self, values: Iterable[float]) -> None:
        """Fold another accumulator's :meth:`partials` into this one."""
        for value in values:
            self.add(float(value))


class _HistAccumulator:
    __slots__ = ("buckets", "counts", "inf_count", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * len(self.buckets)
        self.inf_count = 0
        self.sum = ExactSum()
        self.count = 0


class RollupAggregate:
    """Incremental, order-independent fold of metric snapshots."""

    def __init__(self) -> None:
        self._keys: set = set()
        self._kinds: Dict[str, str] = {}
        self._counters: Dict[_MetricKey, ExactSum] = {}
        #: gauge -> (winning fold key, value); larger fold key wins.
        self._gauges: Dict[_MetricKey, Tuple[FoldKey, float]] = {}
        self._hists: Dict[_MetricKey, _HistAccumulator] = {}

    @property
    def runs(self) -> int:
        """Number of distinct fold keys absorbed so far."""
        return len(self._keys)

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    def fold(self, key: FoldKey, snapshot: Mapping[str, object]) -> bool:
        """Fold one job's ``MetricsRegistry.snapshot()`` under ``key``.

        Returns False (and folds nothing) when ``key`` was already seen —
        a duplicate fold key means an identical job digest, hence an
        identical snapshot, so skipping keeps the aggregate exact.
        """
        key = (str(key[0]), str(key[1]), int(key[2]))
        if key in self._keys:
            return False
        self._keys.add(key)
        for entry in snapshot["metrics"]:  # type: ignore[index]
            name = entry["name"]
            kind = entry["kind"]
            pinned = self._kinds.setdefault(name, kind)
            if pinned != kind:
                raise ValueError(
                    f"metric {name!r} is a {pinned} in one run and a {kind} "
                    f"in another — snapshots disagree")
            metric_key = (name, tuple(sorted(
                (str(k), str(v)) for k, v in entry["labels"].items())))
            if kind == "counter":
                self._counters.setdefault(metric_key, ExactSum()).add(
                    float(entry["value"]))
            elif kind == "gauge":
                candidate = (key, float(entry["value"]))
                current = self._gauges.get(metric_key)
                if current is None or candidate[0] > current[0]:
                    self._gauges[metric_key] = candidate
            elif kind == "histogram":
                buckets = tuple(float(b) for b in entry["buckets"])
                hist = self._hists.get(metric_key)
                if hist is None:
                    hist = self._hists[metric_key] = _HistAccumulator(buckets)
                elif hist.buckets != buckets:
                    raise ValueError(
                        f"histogram {name!r} bucket specs disagree across "
                        f"runs: {hist.buckets} vs {buckets}")
                for index, count in enumerate(entry["counts"]):
                    hist.counts[index] += int(count)
                hist.inf_count += int(entry["inf_count"])
                hist.sum.add(float(entry["sum"]))
                hist.count += int(entry["count"])
            else:
                raise ValueError(f"unknown metric kind {kind!r} in snapshot")
        return True

    # ------------------------------------------------------------------
    # Worker partials (intra-sweep IPC)
    # ------------------------------------------------------------------
    #: Wire-format marker for worker partial documents.
    PARTIAL_VERSION = "rollup-partial-1"

    def to_partial_doc(self) -> Dict[str, object]:
        """The aggregate as a lossless partial for parent-side merging.

        Counter values and histogram sums ship as raw Shewchuk partials
        (:meth:`ExactSum.partials`), not rounded floats: the parent adds
        them straight into its own accumulators, so the merged total is
        the exact sum of every underlying increment no matter how the
        sweep's jobs were cut into chunks.  Gauges ship with their
        winning fold key so last-by-key survives the hop.  JSON-safe by
        construction (``repr`` round-trips floats exactly).
        """
        counters = [
            {"name": name, "labels": dict(labels), "partials": acc.partials()}
            for (name, labels), acc in self._counters.items()
        ]
        gauges = [
            {"name": name, "labels": dict(labels), "key": list(key),
             "value": value}
            for (name, labels), (key, value) in self._gauges.items()
        ]
        hists = [
            {"name": name, "labels": dict(labels),
             "buckets": list(hist.buckets), "counts": list(hist.counts),
             "inf_count": hist.inf_count,
             "sum_partials": hist.sum.partials(), "count": hist.count}
            for (name, labels), hist in self._hists.items()
        ]
        return {
            "version": self.PARTIAL_VERSION,
            "keys": [list(key) for key in sorted(self._keys)],
            "kinds": dict(self._kinds),
            "counters": counters,
            "gauges": gauges,
            "histograms": hists,
        }

    def absorb_partial(self, doc: Mapping[str, object]) -> None:
        """Merge one worker's :meth:`to_partial_doc` into this aggregate.

        Overlapping fold keys raise — inside a sweep every job belongs to
        exactly one chunk, so a shared key means the executor dispatched
        a job twice and the counters would double-count.
        """
        version = doc.get("version")
        if version != self.PARTIAL_VERSION:
            raise ValueError(f"unsupported rollup partial version {version!r}")
        keys = {(str(k[0]), str(k[1]), int(k[2]))
                for k in doc["keys"]}  # type: ignore[union-attr]
        overlap = keys & self._keys
        if overlap:
            sample = sorted(overlap)[0]
            raise ValueError(
                f"rollup partials overlap on fold key {sample!r} "
                f"({len(overlap)} shared keys) — a job was folded twice")
        for name, kind in doc["kinds"].items():  # type: ignore[union-attr]
            pinned = self._kinds.setdefault(name, kind)
            if pinned != kind:
                raise ValueError(
                    f"metric {name!r} is a {pinned} in one partial and a "
                    f"{kind} in another")
        for entry in doc["counters"]:  # type: ignore[index]
            self._counters.setdefault(
                _entry_key(entry), ExactSum()).add_partials(entry["partials"])
        for entry in doc["gauges"]:  # type: ignore[index]
            key = entry["key"]
            candidate = ((str(key[0]), str(key[1]), int(key[2])),
                         float(entry["value"]))
            metric_key = _entry_key(entry)
            current = self._gauges.get(metric_key)
            if current is None or candidate[0] > current[0]:
                self._gauges[metric_key] = candidate
        for entry in doc["histograms"]:  # type: ignore[index]
            buckets = tuple(float(b) for b in entry["buckets"])
            metric_key = _entry_key(entry)
            hist = self._hists.get(metric_key)
            if hist is None:
                hist = self._hists[metric_key] = _HistAccumulator(buckets)
            elif hist.buckets != buckets:
                raise ValueError(
                    f"histogram {entry['name']!r} bucket specs disagree "
                    f"across partials: {hist.buckets} vs {buckets}")
            for index, count in enumerate(entry["counts"]):
                hist.counts[index] += int(count)
            hist.inf_count += int(entry["inf_count"])
            hist.sum.add_partials(entry["sum_partials"])
            hist.count += int(entry["count"])
        self._keys.update(keys)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_doc(self) -> Dict[str, object]:
        """The aggregate as a canonical JSON-safe document."""
        entries: List[Dict[str, object]] = []
        for (name, labels), acc in self._counters.items():
            entries.append({
                "name": name, "kind": "counter", "labels": dict(labels),
                "value": acc.value(),
            })
        for (name, labels), (key, value) in self._gauges.items():
            entries.append({
                "name": name, "kind": "gauge", "labels": dict(labels),
                "value": value, "key": list(key),
            })
        for (name, labels), hist in self._hists.items():
            entries.append({
                "name": name, "kind": "histogram", "labels": dict(labels),
                "buckets": list(hist.buckets), "counts": list(hist.counts),
                "inf_count": hist.inf_count, "sum": hist.sum.value(),
                "count": hist.count,
            })
        entries.sort(key=lambda e: (e["name"], sorted(e["labels"].items())))
        return {
            "version": 1,
            "runs": self.runs,
            "keys": [list(key) for key in sorted(self._keys)],
            "metrics": entries,
        }

    def to_json(self) -> str:
        """Canonical JSON text (the byte-identity surface)."""
        return json.dumps(self.to_doc(), indent=2, sort_keys=True) + "\n"

    def to_registry(self) -> MetricsRegistry:
        """Materialise the aggregate as a plain registry (for exporters)."""
        registry = MetricsRegistry()
        for entry in self.to_doc()["metrics"]:  # type: ignore[index]
            labels = entry["labels"]
            if entry["kind"] == "counter":
                registry.counter(entry["name"], **labels).inc(entry["value"])
            elif entry["kind"] == "gauge":
                registry.gauge(entry["name"], **labels).set(entry["value"])
            else:
                hist = registry.histogram(entry["name"],
                                          buckets=entry["buckets"], **labels)
                hist.counts = [int(c) for c in entry["counts"]]
                hist.inf_count = int(entry["inf_count"])
                hist.sum = float(entry["sum"])
                hist.count = int(entry["count"])
        return registry


def _entry_key(entry: Mapping[str, object]) -> _MetricKey:
    """The aggregate-internal identity of a partial-doc metric entry."""
    return (entry["name"], tuple(sorted(
        (str(k), str(v))
        for k, v in entry["labels"].items())))  # type: ignore[union-attr]


def merge_rollups(docs: Iterable[Mapping[str, object]]) -> Dict[str, object]:
    """Merge rollup shard documents from independent sweep invocations.

    Counters and histograms add (ExactSum over shard values); gauges
    re-apply last-by-fold-key using each shard's recorded winning key.
    Overlapping fold keys across shards raise — the same run folded into
    two shards would double-count every counter.
    """
    merged = RollupAggregate()
    for doc in docs:
        version = doc.get("version")
        if version != 1:
            raise ValueError(f"unsupported rollup version {version!r}")
        shard_keys = {tuple(key) for key in doc["keys"]}  # type: ignore[index]
        overlap = {(k[0], k[1], k[2]) for k in shard_keys} & merged._keys
        if overlap:
            sample = sorted(overlap)[0]
            raise ValueError(
                f"rollup shards overlap on fold key {sample!r} "
                f"({len(overlap)} shared keys) — refusing to double-count")
        for entry in doc["metrics"]:  # type: ignore[index]
            name = entry["name"]
            kind = entry["kind"]
            pinned = merged._kinds.setdefault(name, kind)
            if pinned != kind:
                raise ValueError(
                    f"metric {name!r} is a {pinned} in one shard and a "
                    f"{kind} in another")
            metric_key = (name, tuple(sorted(
                (str(k), str(v)) for k, v in entry["labels"].items())))
            if kind == "counter":
                merged._counters.setdefault(metric_key, ExactSum()).add(
                    float(entry["value"]))
            elif kind == "gauge":
                key = entry["key"]
                candidate = ((str(key[0]), str(key[1]), int(key[2])),
                             float(entry["value"]))
                current = merged._gauges.get(metric_key)
                if current is None or candidate[0] > current[0]:
                    merged._gauges[metric_key] = candidate
            else:
                buckets = tuple(float(b) for b in entry["buckets"])
                hist = merged._hists.get(metric_key)
                if hist is None:
                    hist = merged._hists[metric_key] = _HistAccumulator(buckets)
                elif hist.buckets != buckets:
                    raise ValueError(
                        f"histogram {name!r} bucket specs disagree across "
                        f"shards: {hist.buckets} vs {buckets}")
                for index, count in enumerate(entry["counts"]):
                    hist.counts[index] += int(count)
                hist.inf_count += int(entry["inf_count"])
                hist.sum.add(float(entry["sum"]))
                hist.count += int(entry["count"])
        merged._keys.update((str(k[0]), str(k[1]), int(k[2]))
                            for k in shard_keys)
    return merged.to_doc()
