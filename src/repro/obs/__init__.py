"""Simulation-wide observability: metrics, spans, and telemetry export.

The paper's operational story is told through logfiles; :mod:`repro.sim.trace`
reproduces those.  This package reproduces the *engineering view* the
Glacsweb team never had in the field: per-subsystem counters and gauges
(:mod:`repro.obs.metrics`), sim-time span trees (:mod:`repro.obs.spans`),
optional wall-clock self-profiling (:mod:`repro.obs.profile`), and stable
Prometheus / JSON / Chrome-trace / NDJSON exporters
(:mod:`repro.obs.export`).

Mission/fleet-scale accountability rides on top: the data-provenance
ledger (:mod:`repro.obs.provenance`) tracks every science artifact from
creation to the Southampton archive and closes the mission with a
conservation check; the streaming rollup (:mod:`repro.obs.rollup`) folds
per-run metric snapshots into one order-independent campaign aggregate;
the alert engine (:mod:`repro.obs.alerts`) evaluates declarative SLO
rules against the trace stream.  See ``docs/telemetry_rollup.md``.

Entry points: every :class:`~repro.sim.kernel.Simulation` owns an
:class:`Observability` as ``sim.obs``; the ``repro-sim metrics`` subcommand
and the ``--metrics-out`` / ``--spans-out`` flags dump a mission's
telemetry.  Conventions and determinism rules: ``docs/observability.md``.
"""

from repro.obs.alerts import AlertEngine, AlertFiring
from repro.obs.export import (
    metrics_to_json,
    metrics_to_prometheus,
    spans_to_chrome_trace,
    spans_to_ndjson,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
)
from repro.obs.observability import Observability, owner_process_name
from repro.obs.profile import WallClockProfile
from repro.obs.provenance import ConservationReport, ProvenanceLedger
from repro.obs.rollup import ExactSum, RollupAggregate, merge_rollups
from repro.obs.spans import SpanRecord, SpanRecorder

__all__ = [
    "AlertEngine",
    "AlertFiring",
    "ConservationReport",
    "Counter",
    "DEFAULT_BUCKETS",
    "ExactSum",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "Observability",
    "ProvenanceLedger",
    "RollupAggregate",
    "SpanRecord",
    "SpanRecorder",
    "WallClockProfile",
    "merge_rollups",
    "metrics_to_json",
    "metrics_to_prometheus",
    "owner_process_name",
    "spans_to_chrome_trace",
    "spans_to_ndjson",
]
