"""Declarative alert/SLO engine: JSON rules over the trace stream.

The Glacsweb operators diagnosed the deployment entirely from uploaded
telemetry — the questions they asked ("has any battery sat below 11.5 V
for two days?", "did a probe go silent for a week?") are exactly the
alert rules this module evaluates, deterministically, from the simulated
record stream.

Rule document (``--alerts RULES.json``)::

    {"rules": [
      {"name": "battery-low", "type": "threshold",
       "signal": {"source": "base.battery", "kind": "battery",
                  "field": "voltage_v"},
       "op": "<", "value": 11.5, "for_s": 172800},
      {"name": "probe-silent", "type": "absence",
       "signal": {"source": "probes", "kind": "probe_contact"},
       "window_s": 604800},
      {"name": "recovery-violated", "type": "budget",
       "metric": "fault_recoveries_total",
       "labels": {"result": "violated"}, "op": ">", "value": 0}
    ]}

Three rule types:

- **threshold** — compare a record's ``field`` against ``value`` with
  ``op``.  Without ``for_s`` the rule fires once per *episode* on entry;
  with ``for_s`` it fires at the first matching sample once the
  condition has held for at least ``for_s`` of sim time (and a still-
  open episode is checked again against the end-of-run clock in
  :meth:`AlertEngine.finish`).  A non-matching sample closes the
  episode.
- **absence** — fire when no matching record arrives for ``window_s``
  of sim time, once per gap (including the gap from time 0 to the first
  record, and the tail gap closed out by ``finish``).
- **budget** — evaluated once at ``finish`` over the final metrics
  registry: the sum of every sample of ``metric`` whose labels contain
  the given ``labels`` subset, compared with ``op``/``value``.

Signals match by exact ``source`` or any dotted child (same semantics
as :meth:`~repro.sim.trace.Trace.select`).  The engine ignores records
from the ``"alerts"`` source, so its own firings (emitted back onto the
trace for replay visibility) can never re-trigger a rule.

Everything is driven by simulated time carried on the records; the
engine holds no host state, so firings are byte-stable across replays.
"""

from __future__ import annotations

import json
import operator
from typing import Callable, Dict, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry

_OPS: Dict[str, Callable[[float, float], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}

#: Trace source used for the engine's own firing records.
ALERT_SOURCE = "alerts"


class AlertFiring:
    """One rule firing at one simulated instant."""

    __slots__ = ("rule", "time", "message")

    def __init__(self, rule: str, time: float, message: str) -> None:
        self.rule = rule
        self.time = time
        self.message = message

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form for run summaries and sweep records."""
        return {"rule": self.rule, "time": self.time, "message": self.message}


class _Signal:
    """Source/kind/field matcher shared by threshold and absence rules."""

    __slots__ = ("source", "kind", "field", "_child_prefix")

    def __init__(self, spec: Mapping[str, object], rule: str,
                 need_field: bool) -> None:
        if not isinstance(spec, Mapping) or "source" not in spec:
            raise ValueError(f"alert rule {rule!r}: signal needs a 'source'")
        self.source = str(spec["source"])
        self.kind = str(spec["kind"]) if "kind" in spec else None
        self.field = str(spec["field"]) if "field" in spec else None
        if need_field and self.field is None:
            raise ValueError(
                f"alert rule {rule!r}: threshold signal needs a 'field'")
        self._child_prefix = self.source + "."

    def matches(self, record) -> bool:
        if record.source != self.source and not record.source.startswith(
                self._child_prefix):
            return False
        if self.kind is not None and record.kind != self.kind:
            return False
        return True


class _ThresholdRule:
    def __init__(self, name: str, spec: Mapping[str, object]) -> None:
        self.name = name
        self.signal = _Signal(spec.get("signal"), name, need_field=True)
        op = spec.get("op")
        if op not in _OPS:
            raise ValueError(f"alert rule {name!r}: unknown op {op!r}")
        self.op_name = op
        self.op = _OPS[op]
        if "value" not in spec:
            raise ValueError(f"alert rule {name!r}: threshold needs a 'value'")
        self.value = float(spec["value"])
        self.for_s = float(spec["for_s"]) if "for_s" in spec else None
        if self.for_s is not None and self.for_s < 0:
            raise ValueError(f"alert rule {name!r}: for_s must be >= 0")
        #: Sim time the current matching episode opened, or None.
        self.active_since: Optional[float] = None
        #: True once the current episode has fired (one firing per episode).
        self.fired = False

    def observe(self, record, engine: "AlertEngine") -> None:
        if not self.signal.matches(record):
            return
        raw = record.detail.get(self.signal.field)
        if raw is None:
            return
        try:
            sample = float(raw)
        except (TypeError, ValueError):
            return
        if self.op(sample, self.value):
            if self.active_since is None:
                self.active_since = record.time
                self.fired = False
                if self.for_s is None:
                    self._fire(record.time, sample, engine)
            elif (not self.fired and self.for_s is not None
                  and record.time - self.active_since >= self.for_s):
                self._fire(record.time, sample, engine)
        else:
            self.active_since = None
            self.fired = False

    def finish(self, now: float, engine: "AlertEngine") -> None:
        # An episode still open at mission close may have crossed for_s
        # without another sample arriving to notice it.
        if (self.active_since is not None and not self.fired
                and self.for_s is not None
                and now - self.active_since >= self.for_s):
            self._fire(now, None, engine)

    def _fire(self, when: float, sample: Optional[float],
              engine: "AlertEngine") -> None:
        self.fired = True
        held = "" if self.for_s is None else (
            f" held {when - self.active_since:.0f}s (>= {self.for_s:.0f}s)")
        shown = "condition" if sample is None else f"{sample!r}"
        engine._fire(self, when,
                     f"{self.signal.field} {shown} {self.op_name} "
                     f"{self.value!r}{held}")


class _AbsenceRule:
    def __init__(self, name: str, spec: Mapping[str, object]) -> None:
        self.name = name
        self.signal = _Signal(spec.get("signal"), name, need_field=False)
        if "window_s" not in spec:
            raise ValueError(f"alert rule {name!r}: absence needs 'window_s'")
        self.window_s = float(spec["window_s"])
        if self.window_s <= 0:
            raise ValueError(f"alert rule {name!r}: window_s must be > 0")
        self.last_seen = 0.0
        self.fired_for_gap = False

    def observe(self, record, engine: "AlertEngine") -> None:
        if self.signal.matches(record):
            self.last_seen = record.time
            self.fired_for_gap = False
            return
        # Any other record advances the clock; a gap fires once.
        self._check(record.time, engine)

    def finish(self, now: float, engine: "AlertEngine") -> None:
        self._check(now, engine)

    def _check(self, now: float, engine: "AlertEngine") -> None:
        if not self.fired_for_gap and now - self.last_seen >= self.window_s:
            self.fired_for_gap = True
            engine._fire(self, now,
                         f"no {self.signal.source} record for "
                         f"{now - self.last_seen:.0f}s "
                         f"(window {self.window_s:.0f}s)")


class _BudgetRule:
    def __init__(self, name: str, spec: Mapping[str, object]) -> None:
        self.name = name
        if "metric" not in spec:
            raise ValueError(f"alert rule {name!r}: budget needs a 'metric'")
        self.metric = str(spec["metric"])
        labels = spec.get("labels", {})
        if not isinstance(labels, Mapping):
            raise ValueError(f"alert rule {name!r}: labels must be an object")
        self.labels = {str(k): str(v) for k, v in labels.items()}
        op = spec.get("op")
        if op not in _OPS:
            raise ValueError(f"alert rule {name!r}: unknown op {op!r}")
        self.op_name = op
        self.op = _OPS[op]
        if "value" not in spec:
            raise ValueError(f"alert rule {name!r}: budget needs a 'value'")
        self.value = float(spec["value"])

    def observe(self, record, engine: "AlertEngine") -> None:
        pass

    def finish(self, now: float, engine: "AlertEngine") -> None:
        registry = engine.metrics
        if registry is None:
            return
        total = 0.0
        for metric in registry.metrics():
            if metric.name != self.metric:
                continue
            labels = metric.label_dict()
            if all(labels.get(k) == v for k, v in self.labels.items()):
                total += getattr(metric, "value", getattr(metric, "sum", 0.0))
        if self.op(total, self.value):
            shown = "".join(f"{{{k}={v}}}" for k, v in sorted(self.labels.items()))
            engine._fire(self, now,
                         f"sum({self.metric}{shown}) = {total!r} "
                         f"{self.op_name} {self.value!r}")


_RULE_TYPES = {
    "threshold": _ThresholdRule,
    "absence": _AbsenceRule,
    "budget": _BudgetRule,
}


class AlertEngine:
    """Evaluates parsed alert rules against the trace stream.

    Subscribe :meth:`observe` to a trace (or let the CLI do it); call
    :meth:`finish` at mission close to settle end-of-run conditions.
    """

    def __init__(self, rules_doc, metrics: Optional[MetricsRegistry] = None,
                 trace=None) -> None:
        if isinstance(rules_doc, Mapping):
            specs = rules_doc.get("rules")
            if not isinstance(specs, list):
                raise ValueError("alert rules document needs a 'rules' list")
        elif isinstance(rules_doc, list):
            specs = rules_doc
        else:
            raise ValueError("alert rules must be a list or {'rules': [...]}")
        self.rules: List[object] = []
        seen: set = set()
        for spec in specs:
            if not isinstance(spec, Mapping) or "name" not in spec:
                raise ValueError("every alert rule needs a 'name'")
            name = str(spec["name"])
            if name in seen:
                raise ValueError(f"duplicate alert rule name {name!r}")
            seen.add(name)
            rule_type = spec.get("type")
            factory = _RULE_TYPES.get(rule_type)
            if factory is None:
                raise ValueError(
                    f"alert rule {name!r}: unknown type {rule_type!r} "
                    f"(expected one of {sorted(_RULE_TYPES)})")
            self.rules.append(factory(name, spec))
        self.metrics = metrics
        self.trace = trace
        self.firings: List[AlertFiring] = []
        self._finished = False

    @classmethod
    def from_file(cls, path: str,
                  metrics: Optional[MetricsRegistry] = None,
                  trace=None) -> "AlertEngine":
        """Parse a rules JSON file (ValueError on malformed rules)."""
        with open(path, "r", encoding="utf-8") as handle:
            try:
                doc = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError(f"alert rules {path}: invalid JSON: {exc}")
        return cls(doc, metrics=metrics, trace=trace)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def attach(self, trace) -> None:
        """Subscribe to a trace and echo firings back onto it."""
        self.trace = trace
        trace.subscribe(self.observe)

    def observe(self, record) -> None:
        """Consume one trace record (the subscriber entry point)."""
        if record.source == ALERT_SOURCE:
            return
        for rule in self.rules:
            rule.observe(record, self)

    def finish(self, now: float,
               metrics: Optional[MetricsRegistry] = None) -> List[AlertFiring]:
        """Settle end-of-run conditions; idempotent."""
        if self._finished:
            return self.firings
        self._finished = True
        if metrics is not None:
            self.metrics = metrics
        for rule in self.rules:
            rule.finish(now, self)
        return self.firings

    def _fire(self, rule, when: float, message: str) -> None:
        self.firings.append(AlertFiring(rule.name, when, message))
        if self.metrics is not None:
            self.metrics.inc("alerts_fired_total", rule=rule.name)
        if self.trace is not None:
            self.trace.emit(ALERT_SOURCE, "alert_fired", rule=rule.name,
                            message=message)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """JSON-safe block for sweep summaries and reports."""
        return {
            "rules": len(self.rules),
            "fired": len(self.firings),
            "firings": [firing.to_dict() for firing in self.firings],
        }

    def format(self) -> str:
        """Human-readable block for mission reports and the CLI."""
        if not self.firings:
            return f"alerts: OK ({len(self.rules)} rules, none fired)"
        lines = [f"alerts: {len(self.firings)} fired "
                 f"({len(self.rules)} rules)"]
        for firing in self.firings:
            days = firing.time / 86400.0
            lines.append(f"  [{firing.rule}] t={firing.time:.0f}s "
                         f"(day {days:.1f}): {firing.message}")
        return "\n".join(lines)
