"""Optional wall-clock self-profiling of the kernel hot path.

Everything else in :mod:`repro.obs` runs on simulated time so that
same-seed replays are byte-identical.  This module is the one deliberate
exception: when enabled (``--self-profile`` / ``Observability(
self_profile=True)``) the kernel times each event's callbacks on the host
clock and aggregates events/sec and the hottest process names.

The results are *never* part of metric or span exports, never enter trace
digests, and the feature is off by default — it exists purely so a
developer can ask "where does the wall time of a year-long mission go?".
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class WallClockProfile:
    """Per-owner wall-time accumulator fed by the kernel step hook."""

    def __init__(self) -> None:
        self.total_s = 0.0
        self.total_events = 0
        self._owners: Dict[str, Tuple[int, float]] = {}

    def tick(self, owner: str, wall_s: float) -> None:
        """Record that one event owned by ``owner`` took ``wall_s`` seconds."""
        self.total_s += wall_s
        self.total_events += 1
        count, seconds = self._owners.get(owner, (0, 0.0))
        self._owners[owner] = (count + 1, seconds + wall_s)

    def events_per_second(self) -> float:
        """Overall kernel throughput while profiling was on."""
        return self.total_events / self.total_s if self.total_s > 0 else 0.0

    def hottest(self, top: int = 10) -> List[Tuple[str, int, float]]:
        """``(owner, events, wall seconds)`` rows, hottest first."""
        rows = [
            (owner, count, seconds)
            for owner, (count, seconds) in self._owners.items()
        ]
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows[:top]

    def report(self, top: int = 10) -> str:
        """Human-readable profile summary (for stderr, not for exports)."""
        lines = [
            f"self-profile: {self.total_events} events in "
            f"{self.total_s:.3f} s wall ({self.events_per_second():,.0f} events/s)"
        ]
        for owner, count, seconds in self.hottest(top):
            share = seconds / self.total_s if self.total_s > 0 else 0.0
            lines.append(
                f"  {owner or '<unowned>':<32} {count:>8} events  "
                f"{seconds * 1e3:>9.1f} ms  {share:>5.1%}"
            )
        return "\n".join(lines)
