"""The GPRS modem: the final architecture's independent uplink.

Each station gets its own GPRS modem (Section II): 5000 bps, 2640 mW, data
"paid for per megabyte".  Failures are dominated by day-scale coverage
outages (weather, cell congestion) — "communications fail ... frequently,
especially in the wetter summer environment" — plus a small mid-session
drop hazard.
"""

from __future__ import annotations

from repro.energy.bus import PowerBus
from repro.energy.components import GPRS_MODEM
from repro.environment.weather import _block_noise
from repro.comms.link import Modem
from repro.sim.kernel import Simulation
from repro.sim.simtime import DAY


class GprsModem(Modem):
    """GPRS modem with daily availability outages and per-MB billing.

    Parameters
    ----------
    outage_probability:
        Fraction of days on which the network is unreachable all day.
    summer_outage_probability:
        Outage fraction during the melt season (wetter — worse, per the
        paper's experience).
    cost_per_mb:
        Billing rate; accumulated in :attr:`cost_total`.
    melt_fraction_fn:
        Optional seasonal signal (``glacier.melt_fraction``) used to blend
        the two outage rates.
    mode:
        Transfer engine (``"exact"`` default / ``"chunked"`` oracle); see
        :class:`~repro.comms.link.Modem`.
    """

    #: The mid-session drop hazard is time-independent (outages gate
    #: *connecting*, not in-flight sessions), so the exact engine inverts
    #: the drop CDF in closed form instead of walking the chunk grid.
    hazard_constant = True

    def __init__(
        self,
        sim: Simulation,
        bus: PowerBus,
        name: str = "gprs",
        outage_probability: float = 0.08,
        summer_outage_probability: float = 0.18,
        drop_hazard: float = 2.0e-5,
        cost_per_mb: float = 5.0,
        melt_fraction_fn=None,
        seed: int = 0,
        mode: str = "exact",
    ) -> None:
        super().__init__(sim, bus, name, GPRS_MODEM, connect_s=45.0, mode=mode)
        self.outage_probability = outage_probability
        self.summer_outage_probability = summer_outage_probability
        self._drop_hazard = drop_hazard
        self.cost_per_mb = cost_per_mb
        self.cost_total = 0.0
        self.melt_fraction_fn = melt_fraction_fn
        self.seed = seed
        station = name.split(".")[0]
        metrics = sim.obs.metrics
        self._m_upload_bytes = metrics.counter("gprs_upload_bytes_total",
                                               station=station)
        self._m_cost = metrics.counter("gprs_cost_total", station=station)

    def _outage_probability(self, time: float) -> float:
        if self.melt_fraction_fn is None:
            return self.outage_probability
        melt = self.melt_fraction_fn(time)
        return self.outage_probability + melt * (
            self.summer_outage_probability - self.outage_probability
        )

    def available(self, time: float) -> bool:
        day = int(time // DAY)
        return _block_noise(self.seed, f"{self.name}:outage", day) >= self._outage_probability(
            time
        )

    def drop_hazard_per_s(self, time: float) -> float:
        return self._drop_hazard

    def send(self, nbytes: int, label: str = ""):
        """Send with per-MB billing on delivered bytes."""
        yield from super().send(nbytes, label=label)
        self.cost_total += nbytes / 1_000_000.0 * self.cost_per_mb
        self._m_upload_bytes.inc(nbytes)
        self._m_cost.inc(nbytes / 1_000_000.0 * self.cost_per_mb)
