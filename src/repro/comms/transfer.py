"""Windowed, file-by-file uploads and the backlog arithmetic of Section VI.

The stations upload data inside a runtime window bounded by the MSP430's
2-hour emergency timeout.  Three behaviours from the paper are reproduced
here:

- **file-by-file progress**: a file only leaves the backlog once fully
  sent, so after an outage "the data will be processed file by file, and so
  over the course of a few days the backlog will be cleared";
- **window arithmetic**: more than ~21 days of state-3 GPS data (or ~259
  days of state-2 data) exceeds what a 2-hour window can move;
- **the livelock**: a *single* file bigger than one window's capacity can
  never complete, "meaning that no progress could ever be made".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.comms.link import LinkDown, Modem
from repro.hardware.storage import StoredFile
from repro.sim.events import Interrupt
from repro.sim.kernel import Simulation


@dataclass
class TransferResult:
    """Outcome of one upload window.

    Attributes
    ----------
    sent:
        Names of files fully transferred (safe to delete from the backlog).
    bytes_sent:
        Total payload delivered.
    interrupted:
        True if the window closed (watchdog) mid-run.
    link_lost:
        True if the session dropped and could not be re-established.
    oversized:
        Name of a file that cannot fit in any window of the given budget,
        detected before wasting airtime on it (None if all files fit).
    """

    sent: List[str] = field(default_factory=list)
    bytes_sent: int = 0
    interrupted: bool = False
    link_lost: bool = False
    oversized: Optional[str] = None


def estimate_window_bytes(modem: Modem, window_s: float, overhead_s: float = 0.0) -> int:
    """Bytes a window of ``window_s`` can move at the modem's rate."""
    usable_s = max(0.0, window_s - overhead_s)
    assert modem.spec.transfer_rate_bps is not None
    return int(usable_s * modem.spec.transfer_rate_bps / 8.0)


def is_oversized(size_bytes: int, modem: Modem, window_s: float, overhead_s: float = 0.0) -> bool:
    """Whether one file can never complete within a single window."""
    return size_bytes > estimate_window_bytes(modem, window_s, overhead_s)


def upload_files(
    sim: Simulation,
    modem: Modem,
    files: Sequence[StoredFile],
    window_s: Optional[float] = None,
    max_reconnects: int = 2,
    skip_oversized: bool = False,
    on_file_sent=None,
):
    """Process: upload ``files`` oldest-first over ``modem``.

    The modem must already be connected.  A :class:`LinkDown` mid-file
    triggers up to ``max_reconnects`` reconnection attempts; the dropped
    file restarts from zero (scp semantics).  A watchdog
    :class:`~repro.sim.events.Interrupt` ends the window immediately with
    partial results.

    ``on_file_sent(stored_file)`` fires the moment each file completes —
    like scp, a delivered file has *arrived* even if the session is cut
    moments later, so callers must ingest per file, not per batch.

    ``window_s`` (if given) enables oversized-file detection against the
    stated budget: with ``skip_oversized`` the engine steps over such files
    (the paper's suggested mitigation territory); without it, it attempts
    them anyway and the watchdog will cut the session — the deployed
    behaviour that risks livelock.

    Returns a :class:`TransferResult`.
    """
    result = TransferResult()
    station = modem.name.split(".")[0]
    metrics = sim.obs.metrics
    try:
        for stored in files:
            if window_s is not None and is_oversized(stored.size_bytes, modem, window_s):
                result.oversized = stored.name
                sim.trace.emit(modem.name, "oversized_file", file=stored.name,
                               size=stored.size_bytes)
                if skip_oversized:
                    continue
            attempts = 0
            while True:
                try:
                    yield sim.process(modem.send(stored.size_bytes, label=stored.name))
                    result.sent.append(stored.name)
                    result.bytes_sent += stored.size_bytes
                    # Provenance: the file's bytes crossed the link.  A
                    # failed server-side ingest (on_file_sent raising
                    # LinkDown) makes the retry loop send it again — the
                    # ledger treats repeated "transferred" as idempotent.
                    sim.trace.emit("prov", "transferred", station=station,
                                   file=stored.name, bytes=stored.size_bytes)
                    metrics.inc("upload_files_total", station=station)
                    metrics.observe(
                        "upload_file_bytes", stored.size_bytes,
                        buckets=(1e3, 1e4, 1e5, 2.5e5, 1e6, 1e7),
                        station=station,
                    )
                    if on_file_sent is not None:
                        on_file_sent(stored)
                    break
                except LinkDown:
                    attempts += 1
                    if attempts > max_reconnects:
                        result.link_lost = True
                        return result
                    try:
                        yield sim.process(modem.connect())
                    except LinkDown:
                        result.link_lost = True
                        return result
    except Interrupt:
        result.interrupted = True
        sim.trace.emit(modem.name, "window_closed", sent=len(result.sent))
    return result


def drain_days(
    backlog_bytes: int,
    file_size_bytes: int,
    modem: Modem,
    window_s: float,
    overhead_s: float = 0.0,
) -> float:
    """Days needed to clear a backlog at one window per day (analytic).

    Whole files only: each day moves ``floor(capacity / file_size)`` files.
    Returns ``inf`` when a single file exceeds the window — the livelock.
    """
    if backlog_bytes <= 0:
        return 0.0
    capacity = estimate_window_bytes(modem, window_s, overhead_s)
    files_per_day = capacity // file_size_bytes if file_size_bytes > 0 else 0
    if files_per_day == 0:
        return float("inf")
    total_files = -(-backlog_bytes // file_size_bytes)  # ceil
    return -(-total_files // files_per_day)  # ceil
