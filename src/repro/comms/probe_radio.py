"""The subglacial probe radio: a lossy, seasonal packet link.

The probes sit under ~70 m of ice; radio through wet summer ice is far
worse than through dry winter ice ("radio communication with the probes is
better in the winter due to the drier ice conditions", Section III).  The
link is packet-based and the loss probability tracks the melt season —
at the paper's summer anchor, roughly 400 of 3000 reading packets are lost
(Section V).

Packets can fail two ways, and Section V names both — the receiver
"records missing **or broken** data packets": a *lost* packet never
arrives; a *broken* one arrives but fails its CRC and is discarded.  The
protocol treats both as missing; the link's statistics keep them apart.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.sim.kernel import Simulation


class PacketOutcome(enum.Enum):
    """What happened to one transmitted packet."""

    DELIVERED = "delivered"
    LOST = "lost"  # never arrived (absorbed by wet ice)
    BROKEN = "broken"  # arrived but failed its CRC; discarded

    @property
    def ok(self) -> bool:
        """True only for a clean delivery."""
        return self is PacketOutcome.DELIVERED


class ProbeRadioLink:
    """Half-duplex packet link between the base station and one probe.

    Parameters
    ----------
    sim:
        Kernel.
    loss_fn:
        ``loss_fn(time) -> probability`` that any one packet is lost
        (typically ``glacier.probe_radio_loss``).
    rate_bps:
        Link rate (low-power sub-GHz radio).
    overhead_bytes:
        Per-packet framing overhead.
    turnaround_s:
        Half-duplex turnaround between packets.
    """

    def __init__(
        self,
        sim: Simulation,
        loss_fn: Callable[[float], float],
        name: str = "probe_radio",
        rate_bps: float = 9600.0,
        overhead_bytes: int = 8,
        turnaround_s: float = 0.05,
        corruption_probability: float = 0.0,
        seed_stream: Optional[str] = None,
        mode: str = "exact",
    ) -> None:
        if mode not in ("chunked", "exact"):
            raise ValueError(f"{name}: mode must be 'chunked' or 'exact', got {mode!r}")
        self.sim = sim
        self.loss_fn = loss_fn
        self.name = name
        self.rate_bps = rate_bps
        self.overhead_bytes = overhead_bytes
        self.turnaround_s = turnaround_s
        #: Probability that a packet arrives with an uncorrectable error.
        self.corruption_probability = corruption_probability
        #: ``"exact"`` collapses a back-to-back packet burst into one kernel
        #: timeout (:meth:`transmit_sequence`); ``"chunked"`` yields one
        #: timeout per packet.  Outcomes are bitwise identical either way.
        self.mode = mode
        self._rng = sim.rng.stream(seed_stream or f"{name}.loss")
        self.packets_sent = 0
        self.packets_lost = 0
        self.packets_broken = 0
        metrics = sim.obs.metrics
        self._m_lost = metrics.counter("probe_frames_total", result="lost")
        self._m_crc = metrics.counter("probe_frames_total", result="crc_fail")
        self._m_ok = metrics.counter("probe_frames_total", result="delivered")

    def packet_time_s(self, payload_bytes: int) -> float:
        """Airtime for one packet including framing and turnaround."""
        return (payload_bytes + self.overhead_bytes) * 8.0 / self.rate_bps + self.turnaround_s

    def current_loss(self) -> float:
        """The loss probability right now."""
        return self.loss_fn(self.sim.now)

    def transmit(self, payload_bytes: int):
        """Process: send one packet; returns True iff cleanly delivered.

        Kept boolean for protocol code (lost and broken packets are
        handled identically there); :meth:`transmit_detailed` exposes the
        full :class:`PacketOutcome`.
        """
        outcome = yield from self.transmit_detailed(payload_bytes)
        return outcome.ok

    def transmit_detailed(self, payload_bytes: int):
        """Process: send one packet; returns a :class:`PacketOutcome`."""
        yield self.sim.timeout(self.packet_time_s(payload_bytes))
        return self._draw_outcome(self.sim.now)

    def _draw_outcome(self, at_time: float) -> PacketOutcome:
        """Roll one packet's fate as of its arrival instant ``at_time``.

        Factored out of :meth:`transmit_detailed` so the exact burst path
        can draw the *same* RNG rolls against the *same* loss probability
        (``loss_fn`` is a pure function of time) without a kernel event
        per packet — outcomes are bitwise identical between modes.
        """
        self.packets_sent += 1
        if self._rng.random() < self.loss_fn(at_time):
            self.packets_lost += 1
            self._m_lost.inc()
            return PacketOutcome.LOST
        if self._rng.random() < self.corruption_probability:
            self.packets_broken += 1
            self._m_crc.inc()
            return PacketOutcome.BROKEN
        self._m_ok.inc()
        return PacketOutcome.DELIVERED

    def transmit_sequence(self, payload_bytes: int, count: int,
                          deadline: Optional[float] = None):
        """Process: send ``count`` equal-size packets back to back.

        Returns the list of :class:`PacketOutcome` for the packets
        actually attempted.  A packet is attempted only if its *start*
        instant is before ``deadline`` (the same per-packet check a
        caller looping over :meth:`transmit` would make), so a short list
        means the deadline cut the burst.

        In ``exact`` mode the whole burst costs one kernel timeout: packet
        ``i``'s fate is rolled at its arrival instant ``start + (i+1) *
        packet_time`` with the identical RNG draws the per-packet loop
        would make, so outcomes and link statistics are bitwise equal to
        ``chunked`` mode — only the event count differs (the protocol
        layer's 3000-reading stream collapses from 3000 events to
        ``ceil(3000/burst)``).  The burst's completion instant can differ
        from the per-packet loop by float-rounding ulps (one summed
        timeout vs repeated additions).
        """
        if self.mode == "chunked":
            outcomes = []
            for _ in range(count):
                if deadline is not None and self.sim.now >= deadline:
                    break
                outcome = yield from self.transmit_detailed(payload_bytes)
                outcomes.append(outcome)
            return outcomes
        packet_s = self.packet_time_s(payload_bytes)
        start = self.sim.now
        at_time = start
        outcomes = []
        for _ in range(count):
            if deadline is not None and at_time >= deadline:
                break
            # Accumulate exactly as the kernel clock would: each packet's
            # timeout lands at previous-now + packet_s.
            at_time = at_time + packet_s
            outcomes.append(self._draw_outcome(at_time))
        if at_time > start:
            yield self.sim.timeout(at_time - start)
        return outcomes

    @property
    def observed_loss_rate(self) -> float:
        """Measured missing fraction (lost + broken) over the link's lifetime."""
        if self.packets_sent == 0:
            return 0.0
        return (self.packets_lost + self.packets_broken) / self.packets_sent
