"""The subglacial probe radio: a lossy, seasonal packet link.

The probes sit under ~70 m of ice; radio through wet summer ice is far
worse than through dry winter ice ("radio communication with the probes is
better in the winter due to the drier ice conditions", Section III).  The
link is packet-based and the loss probability tracks the melt season —
at the paper's summer anchor, roughly 400 of 3000 reading packets are lost
(Section V).

Packets can fail two ways, and Section V names both — the receiver
"records missing **or broken** data packets": a *lost* packet never
arrives; a *broken* one arrives but fails its CRC and is discarded.  The
protocol treats both as missing; the link's statistics keep them apart.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.sim.kernel import Simulation


class PacketOutcome(enum.Enum):
    """What happened to one transmitted packet."""

    DELIVERED = "delivered"
    LOST = "lost"  # never arrived (absorbed by wet ice)
    BROKEN = "broken"  # arrived but failed its CRC; discarded

    @property
    def ok(self) -> bool:
        """True only for a clean delivery."""
        return self is PacketOutcome.DELIVERED


class ProbeRadioLink:
    """Half-duplex packet link between the base station and one probe.

    Parameters
    ----------
    sim:
        Kernel.
    loss_fn:
        ``loss_fn(time) -> probability`` that any one packet is lost
        (typically ``glacier.probe_radio_loss``).
    rate_bps:
        Link rate (low-power sub-GHz radio).
    overhead_bytes:
        Per-packet framing overhead.
    turnaround_s:
        Half-duplex turnaround between packets.
    """

    def __init__(
        self,
        sim: Simulation,
        loss_fn: Callable[[float], float],
        name: str = "probe_radio",
        rate_bps: float = 9600.0,
        overhead_bytes: int = 8,
        turnaround_s: float = 0.05,
        corruption_probability: float = 0.0,
        seed_stream: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.loss_fn = loss_fn
        self.name = name
        self.rate_bps = rate_bps
        self.overhead_bytes = overhead_bytes
        self.turnaround_s = turnaround_s
        #: Probability that a packet arrives with an uncorrectable error.
        self.corruption_probability = corruption_probability
        self._rng = sim.rng.stream(seed_stream or f"{name}.loss")
        self.packets_sent = 0
        self.packets_lost = 0
        self.packets_broken = 0
        metrics = sim.obs.metrics
        self._m_lost = metrics.counter("probe_frames_total", result="lost")
        self._m_crc = metrics.counter("probe_frames_total", result="crc_fail")
        self._m_ok = metrics.counter("probe_frames_total", result="delivered")

    def packet_time_s(self, payload_bytes: int) -> float:
        """Airtime for one packet including framing and turnaround."""
        return (payload_bytes + self.overhead_bytes) * 8.0 / self.rate_bps + self.turnaround_s

    def current_loss(self) -> float:
        """The loss probability right now."""
        return self.loss_fn(self.sim.now)

    def transmit(self, payload_bytes: int):
        """Process: send one packet; returns True iff cleanly delivered.

        Kept boolean for protocol code (lost and broken packets are
        handled identically there); :meth:`transmit_detailed` exposes the
        full :class:`PacketOutcome`.
        """
        outcome = yield from self.transmit_detailed(payload_bytes)
        return outcome.ok

    def transmit_detailed(self, payload_bytes: int):
        """Process: send one packet; returns a :class:`PacketOutcome`."""
        yield self.sim.timeout(self.packet_time_s(payload_bytes))
        self.packets_sent += 1
        if self._rng.random() < self.current_loss():
            self.packets_lost += 1
            self._m_lost.inc()
            return PacketOutcome.LOST
        if self._rng.random() < self.corruption_probability:
            self.packets_broken += 1
            self._m_crc.inc()
            return PacketOutcome.BROKEN
        self._m_ok.inc()
        return PacketOutcome.DELIVERED

    @property
    def observed_loss_rate(self) -> float:
        """Measured missing fraction (lost + broken) over the link's lifetime."""
        if self.packets_sent == 0:
            return 0.0
        return (self.packets_lost + self.packets_broken) / self.packets_sent
