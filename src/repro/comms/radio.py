"""The long-range radio modem and the PPP session over it.

The Norway-era architecture ran a point-to-point-protocol IP link over
500 mW 466 MHz radio modems.  Lab testing found it "very unreliable with
frequent drop outs and a very low data rate", with reliability varying by
time of day — implying local interference.  Because the battery-powered
reference station must decide whether a PPP disconnect means *finished*
(power the radio off now) or *interference* (stay powered for a reconnect
attempt), the session model separates the true disconnect cause from what
the observer can see (Section II).
"""

from __future__ import annotations

import enum
import math
from typing import Optional

from repro.comms.link import LinkDown, Modem
from repro.energy.bus import PowerBus
from repro.energy.components import RADIO_MODEM
from repro.environment.weather import _smooth_noise
from repro.sim.kernel import Simulation
from repro.sim.simtime import HOUR, fraction_of_day


class DisconnectReason(enum.Enum):
    """Why a PPP session ended."""

    FINISHED = "finished"  # transfer complete; the peer hung up cleanly
    INTERFERENCE = "interference"  # the link dropped mid-session
    NEVER_CONNECTED = "never_connected"


class RadioModem(Modem):
    """466 MHz long-range modem with diurnal interference.

    ``environment`` selects the interference profile: the lab sits amid
    urban noise sources (bad, worst in working hours); the glacier is
    radio-quiet (better — as the initial on-glacier testing suggested).
    """

    #: Peak drop hazard per second in the lab profile.
    LAB_HAZARD = 1.6e-3
    #: Peak drop hazard per second on the glacier.
    GLACIER_HAZARD = 2.0e-4

    def __init__(
        self,
        sim: Simulation,
        bus: PowerBus,
        name: str = "radio",
        environment: str = "glacier",
        seed: int = 0,
        mode: str = "exact",
    ) -> None:
        if environment not in ("lab", "glacier"):
            raise ValueError(f"unknown environment {environment!r}")
        super().__init__(sim, bus, name, RADIO_MODEM, connect_s=15.0,
                         chunk_s=15.0, mode=mode)
        self.environment = environment
        self.seed = seed

    def interference_factor(self, time: float) -> float:
        """0-1 interference level; diurnal (peaks in the working day)."""
        diurnal = 0.5 * (1.0 + math.sin(2.0 * math.pi * (fraction_of_day(time) - 0.3)))
        texture = 0.5 + 0.5 * _smooth_noise(self.seed, f"{self.name}:interference", time)
        return diurnal * texture

    def drop_hazard_per_s(self, time: float) -> float:
        peak = self.LAB_HAZARD if self.environment == "lab" else self.GLACIER_HAZARD
        return peak * self.interference_factor(time)

    def available(self, time: float) -> bool:
        # Connecting fails when interference is near its peak.
        return self.interference_factor(time) < 0.9


class PppLink:
    """A PPP session over a radio modem, with observable-cause ambiguity.

    The reference-station side cannot directly see why the session ended;
    :meth:`run_session` records the true cause in :attr:`last_reason`, and
    :meth:`recommended_hold_s` implements the paper's policy: stay powered
    for a reconnect window after an interference drop, power off
    immediately after a clean finish.
    """

    #: How long to stay powered after an unexplained drop (reconnect window).
    RECONNECT_HOLD_S = 15.0 * 60.0

    def __init__(self, sim: Simulation, modem: RadioModem, name: str = "ppp") -> None:
        self.sim = sim
        self.modem = modem
        self.name = name
        self.last_reason: Optional[DisconnectReason] = None
        self.sessions = 0
        self.failed_sessions = 0

    def run_session(self, nbytes: int, label: str = "ppp"):
        """Process: connect, move ``nbytes``, disconnect.

        Returns the :class:`DisconnectReason`; never raises — the caller's
        job is to react to the reason, exactly like the deployed control
        script.
        """
        self.sessions += 1
        try:
            yield self.sim.process(self.modem.connect())
        except LinkDown:
            self.failed_sessions += 1
            self.last_reason = DisconnectReason.NEVER_CONNECTED
            self.modem.disconnect()
            return self.last_reason
        try:
            yield self.sim.process(self.modem.send(nbytes, label=label))
        except LinkDown:
            self.failed_sessions += 1
            self.last_reason = DisconnectReason.INTERFERENCE
            self.modem.disconnect()
            return self.last_reason
        self.last_reason = DisconnectReason.FINISHED
        self.modem.disconnect()
        return self.last_reason

    def recommended_hold_s(self, reason: DisconnectReason) -> float:
        """Power policy after a disconnect (Section II).

        A clean finish powers off immediately; anything else holds the radio
        powered for a reconnect window — the power cost of the ambiguity.
        """
        if reason is DisconnectReason.FINISHED:
            return 0.0
        return self.RECONNECT_HOLD_S
