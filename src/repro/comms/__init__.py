"""Communication links: GPRS, long-range radio + PPP, probe radio, transfers.

Section II of the paper is an architecture study of exactly these links:
the Norway-era design relayed base-station data over a 466 MHz radio-modem
PPP link through the reference station, while the final Iceland design
gives each station its own GPRS modem.  This package models:

- :mod:`repro.comms.link` — the common modem machinery: power-switched
  loads, connection state, chunked transfers with failure hazards;
- :mod:`repro.comms.gprs` — the GPRS modem (5000 bps, 2640 mW, per-MB
  billing, day-scale outages);
- :mod:`repro.comms.radio` — the long-range radio modem (2000 bps,
  3960 mW) and the PPP session with its disconnect-reason ambiguity;
- :mod:`repro.comms.probe_radio` — the lossy subglacial packet link whose
  loss rate follows the melt season;
- :mod:`repro.comms.transfer` — the windowed, file-by-file upload engine
  whose interaction with the 2-hour watchdog produces the Section VI
  backlog behaviour;
- :mod:`repro.comms.architectures` — the dual-GPRS vs radio-relay energy
  comparison.
"""

from repro.comms.gprs import GprsModem
from repro.comms.link import LinkDown, Modem
from repro.comms.probe_radio import PacketOutcome, ProbeRadioLink
from repro.comms.radio import DisconnectReason, PppLink, RadioModem
from repro.comms.transfer import TransferResult, estimate_window_bytes, is_oversized, upload_files

__all__ = [
    "DisconnectReason",
    "GprsModem",
    "LinkDown",
    "Modem",
    "PacketOutcome",
    "PppLink",
    "ProbeRadioLink",
    "RadioModem",
    "TransferResult",
    "estimate_window_bytes",
    "is_oversized",
    "upload_files",
]
