"""Common modem machinery: power, connection state, and drop-hazard transfers.

A modem is a power-switched load with a connect/transfer/disconnect
life-cycle.  The failure model is a piecewise-constant hazard sampled on a
``chunk_s`` grid, so a drop loses only the in-flight file, and transfer
time and energy automatically scale with the Table I rate and power
figures.

Two transfer engines implement that model:

**chunked** (the original, kept as the A/B oracle) — one kernel timeout
per chunk; at each chunk boundary the link draws a Bernoulli against
``1 - (1 - hazard)**step``.  A year of daily 1 MB uploads at 5000 bps is
~20k kernel events of pure polling.

**exact** (default) — a single inverse-CDF draw picks the drop chunk up
front: one uniform ``u``, then a pure-math walk over the same chunk grid
accumulating log-survival ``step * log1p(-hazard)`` until it crosses
``log(u)``.  Exactly one timeout is scheduled, at ``min(drop_time,
transfer_time)``.  The per-chunk drop probabilities are identical —
``P(drop at chunk i) = prod_{j<i} s_j - prod_{j<=i} s_j`` either way — so
the two engines are *distributionally* equivalent (the equivalence suite
in ``tests/comms/test_exact_equivalence.py`` pins this); they are not
bitwise equivalent because the chunked engine burns one uniform per
surviving chunk.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.energy.bus import PowerBus
from repro.energy.components import DeviceSpec
from repro.sim.kernel import Simulation

#: Transfer engine names accepted by :class:`Modem` (and the CLI flag).
COMMS_MODES = ("chunked", "exact")


class LinkDown(Exception):
    """The link dropped (or never came up).  The in-flight transfer is lost."""


class Modem:
    """Base class for the GPRS and long-range radio modems.

    Parameters
    ----------
    sim, bus:
        Kernel and the station power bus; a load sized from ``spec`` is
        registered under ``name``.
    spec:
        Table I characteristics (rate and power).
    connect_s:
        Time from power-on to a usable session.
    chunk_s:
        Hazard-grid resolution: the chunked engine yields one timeout per
        chunk, the exact engine evaluates the hazard at the same chunk
        boundaries without scheduling them.  Must be positive.
    mode:
        Transfer engine, ``"exact"`` (default) or ``"chunked"``.
    """

    #: Subclasses whose :meth:`drop_hazard_per_s` ignores ``time`` set this
    #: True so the exact engine can use the closed-form constant-hazard
    #: inversion instead of walking the chunk grid.
    hazard_constant = False

    def __init__(
        self,
        sim: Simulation,
        bus: PowerBus,
        name: str,
        spec: DeviceSpec,
        connect_s: float = 30.0,
        chunk_s: float = 30.0,
        mode: str = "exact",
    ) -> None:
        if spec.transfer_rate_bps is None:
            raise ValueError(f"{spec.name} has no transfer rate; not a modem")
        if not chunk_s > 0.0:
            raise ValueError(
                f"{name}: chunk_s must be positive, got {chunk_s!r} "
                "(a non-positive chunk would stall or reverse the transfer loop)"
            )
        if mode not in COMMS_MODES:
            raise ValueError(
                f"{name}: mode must be one of {COMMS_MODES}, got {mode!r}"
            )
        self.sim = sim
        self.bus = bus
        self.name = name
        self.spec = spec
        self.connect_s = connect_s
        self.chunk_s = chunk_s
        self.mode = mode
        self.load = bus.add_load(name, spec.power_w)
        self.connected = False
        self.bytes_sent_total = 0
        self.connect_attempts = 0
        self.connect_failures = 0
        self.drops = 0
        self._drop_rng = sim.rng.stream(f"{name}.drops")
        metrics = sim.obs.metrics
        self._m_connect_ok = metrics.counter("modem_connects_total",
                                             modem=name, result="ok")
        self._m_connect_failed = metrics.counter("modem_connects_total",
                                                 modem=name, result="failed")
        self._m_drops = metrics.counter("modem_drops_total", modem=name)
        self._m_sent = metrics.counter("modem_sent_bytes_total", modem=name)
        self._m_exact_draws = metrics.counter("comms_exact_draws_total",
                                              modem=name)

    # ------------------------------------------------------------------
    # Failure model hooks (subclasses override)
    # ------------------------------------------------------------------
    def available(self, time: float) -> bool:
        """Whether the network/link can be established at all right now."""
        return True

    def drop_hazard_per_s(self, time: float) -> float:
        """Instantaneous probability-per-second of the session dropping."""
        return 0.0

    # ------------------------------------------------------------------
    # Session life-cycle
    # ------------------------------------------------------------------
    def connect(self):
        """Process: power up and establish a session.

        Raises :class:`LinkDown` if the link is unavailable; the modem is
        left powered (the caller decides whether to retry or power off).
        """
        self.connect_attempts += 1
        self.bus.loads.switch_on(self.name)
        yield self.sim.timeout(self.connect_s)
        if not self.available(self.sim.now):
            self.connect_failures += 1
            self._m_connect_failed.inc()
            self.sim.trace.emit(self.name, "connect_failed")
            raise LinkDown(f"{self.name}: network unavailable")
        self.connected = True
        self._m_connect_ok.inc()
        self.sim.trace.emit(self.name, "connected")

    def disconnect(self) -> None:
        """Tear down the session and power the modem off."""
        if self.connected:
            self.sim.trace.emit(self.name, "disconnected")
        self.connected = False
        self.bus.loads.switch_off(self.name)

    def transfer_time_s(self, nbytes: int) -> float:
        """Airtime to move ``nbytes`` at the link rate.

        ``transfer_rate_bps`` is validated non-None at construction, so
        this never divides by a missing rate.
        """
        return nbytes * 8.0 / self.spec.transfer_rate_bps

    # ------------------------------------------------------------------
    # Drop-time sampling (exact engine)
    # ------------------------------------------------------------------
    def _sample_drop_delay(self, total_s: float) -> Optional[float]:
        """One inverse-CDF draw of the drop instant, or None for survival.

        The chunked engine survives chunk ``i`` (length ``step_i``, hazard
        evaluated at the chunk's *end* time) with probability
        ``s_i = (1 - h_i)**step_i``.  Drawing a single uniform ``u`` and
        dropping at the end of the first chunk where the running survival
        product falls below ``u`` reproduces that distribution exactly:
        ``P(drop at chunk i) = prod_{j<i} s_j - prod_{j<=i} s_j``.  The
        walk is pure float math in log space (``step * log1p(-h)``) — no
        kernel events, no extra RNG draws.

        For a constant hazard the log-survival is linear in elapsed time
        regardless of chunk boundaries, so subclasses with
        ``hazard_constant = True`` skip the walk: the crossing point is
        ``log(u) / log1p(-h)`` seconds, rounded up to the next chunk
        boundary (drops are *detected* at boundaries in both engines).
        """
        self._m_exact_draws.inc()
        u = self._drop_rng.random()
        now = self.sim.now
        chunk = self.chunk_s
        if self.hazard_constant:
            hazard = self.drop_hazard_per_s(now)
            if hazard <= 0.0:
                return None
            if hazard >= 1.0 or u <= 0.0:
                return min(chunk, total_s)
            per_s = math.log1p(-hazard)  # log-survival per second, < 0
            crossing_s = math.log(u) / per_s
            if crossing_s >= total_s:
                return None
            boundary = chunk * (math.floor(crossing_s / chunk) + 1.0)
            return min(boundary, total_s)
        log_u = math.log(u) if u > 0.0 else -math.inf
        log_survival = 0.0
        elapsed = 0.0
        while elapsed < total_s:
            step = min(chunk, total_s - elapsed)
            elapsed += step
            hazard = self.drop_hazard_per_s(now + elapsed)
            if hazard <= 0.0:
                continue
            if hazard >= 1.0:
                return elapsed
            log_survival += step * math.log1p(-hazard)
            if log_survival < log_u:
                return elapsed
        return None

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def send(self, nbytes: int, label: str = ""):
        """Process: move ``nbytes`` over the connected session.

        A mid-transfer drop raises :class:`LinkDown` after the
        already-elapsed airtime (and energy) has been spent.  Progress
        within the payload is intentionally *not* reported — like the
        deployed system's scp, a dropped file must be resent in full.

        In ``exact`` mode the whole transfer is one kernel timeout at
        ``min(drop_time, transfer_time)``; in ``chunked`` mode it is one
        timeout (and one hazard draw) per ``chunk_s``.
        """
        if not self.connected:
            raise LinkDown(f"{self.name}: not connected")
        total_s = self.transfer_time_s(nbytes)
        if self.mode == "chunked":
            yield from self._send_chunked(total_s, label)
        else:
            yield from self._send_exact(total_s, label)
        self.bytes_sent_total += nbytes
        self._m_sent.inc(nbytes)
        self.sim.trace.emit(self.name, "sent", nbytes=nbytes, label=label)

    def _send_exact(self, total_s: float, label: str):
        """One timeout at ``min(drop_time, transfer_time)``."""
        drop_after = self._sample_drop_delay(total_s)
        if drop_after is None:
            if total_s > 0.0:
                yield self.sim.timeout(total_s)
            return
        yield self.sim.timeout(drop_after)
        self._record_drop(label)

    def _send_chunked(self, total_s: float, label: str):
        """The original per-chunk Bernoulli loop (the A/B oracle).

        The per-iteration ``timeout(chunk)`` + RNG draw shape is exactly
        what the ``no-polling-loop`` lint rule flags elsewhere; this loop
        is the sanctioned oracle the exact engine is validated against.
        """
        remaining_s = total_s
        rng = self._drop_rng
        chunk = self.chunk_s
        while remaining_s > 0:
            step = min(chunk, remaining_s)
            yield self.sim.timeout(step)
            remaining_s -= step
            hazard = self.drop_hazard_per_s(self.sim.now)
            if hazard > 0 and rng.random() < 1.0 - (1.0 - hazard) ** step:
                self._record_drop(label)

    def _record_drop(self, label: str):
        self.connected = False
        self.drops += 1
        self._m_drops.inc()
        self.sim.trace.emit(self.name, "link_drop", label=label)
        raise LinkDown(f"{self.name}: dropped during {label or 'transfer'}")
