"""Common modem machinery: power, connection state, chunked transfers.

A modem is a power-switched load with a connect/transfer/disconnect
life-cycle.  Transfers proceed in short chunks; at every chunk boundary the
link's failure hazard is sampled, so a drop loses only the in-flight file,
and transfer time and energy automatically scale with the Table I rate and
power figures.
"""

from __future__ import annotations

from typing import Optional

from repro.energy.bus import PowerBus
from repro.energy.components import DeviceSpec
from repro.sim.kernel import Simulation


class LinkDown(Exception):
    """The link dropped (or never came up).  The in-flight transfer is lost."""


class Modem:
    """Base class for the GPRS and long-range radio modems.

    Parameters
    ----------
    sim, bus:
        Kernel and the station power bus; a load sized from ``spec`` is
        registered under ``name``.
    spec:
        Table I characteristics (rate and power).
    connect_s:
        Time from power-on to a usable session.
    chunk_s:
        Transfer chunk length; the failure hazard is sampled per chunk.
    """

    def __init__(
        self,
        sim: Simulation,
        bus: PowerBus,
        name: str,
        spec: DeviceSpec,
        connect_s: float = 30.0,
        chunk_s: float = 30.0,
    ) -> None:
        if spec.transfer_rate_bps is None:
            raise ValueError(f"{spec.name} has no transfer rate; not a modem")
        self.sim = sim
        self.bus = bus
        self.name = name
        self.spec = spec
        self.connect_s = connect_s
        self.chunk_s = chunk_s
        self.load = bus.add_load(name, spec.power_w)
        self.connected = False
        self.bytes_sent_total = 0
        self.connect_attempts = 0
        self.connect_failures = 0
        self.drops = 0
        self._drop_rng = sim.rng.stream(f"{name}.drops")
        metrics = sim.obs.metrics
        self._m_connect_ok = metrics.counter("modem_connects_total",
                                             modem=name, result="ok")
        self._m_connect_failed = metrics.counter("modem_connects_total",
                                                 modem=name, result="failed")
        self._m_drops = metrics.counter("modem_drops_total", modem=name)
        self._m_sent = metrics.counter("modem_sent_bytes_total", modem=name)

    # ------------------------------------------------------------------
    # Failure model hooks (subclasses override)
    # ------------------------------------------------------------------
    def available(self, time: float) -> bool:
        """Whether the network/link can be established at all right now."""
        return True

    def drop_hazard_per_s(self, time: float) -> float:
        """Instantaneous probability-per-second of the session dropping."""
        return 0.0

    # ------------------------------------------------------------------
    # Session life-cycle
    # ------------------------------------------------------------------
    def connect(self):
        """Process: power up and establish a session.

        Raises :class:`LinkDown` if the link is unavailable; the modem is
        left powered (the caller decides whether to retry or power off).
        """
        self.connect_attempts += 1
        self.bus.loads.switch_on(self.name)
        yield self.sim.timeout(self.connect_s)
        if not self.available(self.sim.now):
            self.connect_failures += 1
            self._m_connect_failed.inc()
            self.sim.trace.emit(self.name, "connect_failed")
            raise LinkDown(f"{self.name}: network unavailable")
        self.connected = True
        self._m_connect_ok.inc()
        self.sim.trace.emit(self.name, "connected")

    def disconnect(self) -> None:
        """Tear down the session and power the modem off."""
        if self.connected:
            self.sim.trace.emit(self.name, "disconnected")
        self.connected = False
        self.bus.loads.switch_off(self.name)

    def transfer_time_s(self, nbytes: int) -> float:
        """Airtime to move ``nbytes`` at the link rate."""
        assert self.spec.transfer_rate_bps is not None
        return nbytes * 8.0 / self.spec.transfer_rate_bps

    def send(self, nbytes: int, label: str = ""):
        """Process: move ``nbytes`` over the connected session.

        Chunked: a mid-transfer drop raises :class:`LinkDown` after the
        already-elapsed airtime (and energy) has been spent.  Progress
        within the payload is intentionally *not* reported — like the
        deployed system's scp, a dropped file must be resent in full.
        """
        if not self.connected:
            raise LinkDown(f"{self.name}: not connected")
        remaining_s = self.transfer_time_s(nbytes)
        rng = self._drop_rng
        while remaining_s > 0:
            step = min(self.chunk_s, remaining_s)
            yield self.sim.timeout(step)
            remaining_s -= step
            hazard = self.drop_hazard_per_s(self.sim.now)
            if hazard > 0 and rng.random() < 1.0 - (1.0 - hazard) ** step:
                self.connected = False
                self.drops += 1
                self._m_drops.inc()
                self.sim.trace.emit(self.name, "link_drop", label=label)
                raise LinkDown(f"{self.name}: dropped during {label or 'transfer'}")
        self.bytes_sent_total += nbytes
        self._m_sent.inc(nbytes)
        self.sim.trace.emit(self.name, "sent", nbytes=nbytes, label=label)
