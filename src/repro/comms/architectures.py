"""The Section II architecture comparison: dual GPRS vs radio relay.

The paper weighs two ways to get both stations' data to Southampton:

1. **Radio relay (Norway design)**: the base station sends its data over
   the 466 MHz radio-modem PPP link to the reference station, which
   forwards everything over its single uplink.
2. **Dual GPRS (final design)**: each station carries its own GPRS modem
   and uploads independently.

"A twofold power saving can be made, both because the hardware is more
efficient and the data from the base station does not have to be sent to
the reference station before transmission."  The functions below do that
energy arithmetic from Table I, including the Gumstix time needed to drive
each transfer, so the comparison can be regenerated as a bench (E7) and
swept over data volumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.components import GPRS_MODEM, GUMSTIX, RADIO_MODEM, DeviceSpec


@dataclass(frozen=True)
class ArchitectureEnergy:
    """Daily energy bill of one architecture, in joules.

    ``base_j``/``reference_j`` split the bill per station;
    ``transfer_s_total`` is combined airtime (a proxy for failure
    exposure — more airtime, more chances to drop).
    """

    name: str
    base_j: float
    reference_j: float
    transfer_s_total: float

    @property
    def total_j(self) -> float:
        """Whole-system energy per day."""
        return self.base_j + self.reference_j

    @property
    def total_wh(self) -> float:
        """Whole-system energy per day in watt-hours."""
        return self.total_j / 3600.0


def _station_send_energy_j(spec: DeviceSpec, nbytes: int) -> float:
    """Energy for one station to push ``nbytes`` through ``spec``.

    The Gumstix must run to drive the modem, so its 900 mW rides along for
    the duration.
    """
    seconds = spec.transfer_seconds(nbytes)
    return (spec.power_w + GUMSTIX.power_w) * seconds


def dual_gprs_energy(
    base_bytes: int,
    reference_bytes: int,
) -> ArchitectureEnergy:
    """The final architecture: each station uploads its own data by GPRS."""
    base_j = _station_send_energy_j(GPRS_MODEM, base_bytes)
    ref_j = _station_send_energy_j(GPRS_MODEM, reference_bytes)
    seconds = GPRS_MODEM.transfer_seconds(base_bytes) + GPRS_MODEM.transfer_seconds(
        reference_bytes
    )
    return ArchitectureEnergy("dual-gprs", base_j, ref_j, seconds)


def radio_relay_energy(
    base_bytes: int,
    reference_bytes: int,
    uplink: DeviceSpec = GPRS_MODEM,
    receiver_powered: bool = True,
) -> ArchitectureEnergy:
    """The Norway design: base -> (radio PPP) -> reference -> uplink.

    The base station's data crosses the radio link (radio modem + Gumstix
    at the base; with ``receiver_powered``, the reference's radio modem and
    Gumstix also run for the duration, as a PPP endpoint must), then the
    reference station uploads *both* stations' data through ``uplink``.
    """
    relay_s = RADIO_MODEM.transfer_seconds(base_bytes)
    base_j = (RADIO_MODEM.power_w + GUMSTIX.power_w) * relay_s
    ref_j = _station_send_energy_j(uplink, base_bytes + reference_bytes)
    if receiver_powered:
        ref_j += (RADIO_MODEM.power_w + GUMSTIX.power_w) * relay_s
    seconds = relay_s + uplink.transfer_seconds(base_bytes + reference_bytes)
    return ArchitectureEnergy("radio-relay", base_j, ref_j, seconds)


def architecture_saving_factor(
    base_bytes: int,
    reference_bytes: int,
    receiver_powered: bool = True,
) -> float:
    """Relay energy divided by dual-GPRS energy (>= 2 is the paper's claim)."""
    relay = radio_relay_energy(base_bytes, reference_bytes, receiver_powered=receiver_powered)
    dual = dual_gprs_energy(base_bytes, reference_bytes)
    return relay.total_j / dual.total_j
