"""The subglacial probe: sampling, buffering and the task life-cycle.

A probe samples its sensor suite on a fixed interval and buffers the
readings.  When the base station opens a session, the buffered readings are
frozen into a *task*; the task stays outstanding — and its readings stay in
probe memory — until the base confirms it holds every reading.  That is the
property that saved the 2009 summer fetch: "the task was not marked as
complete in the probes; so many missing readings were obtained in
subsequent days" (Section V).
"""

from __future__ import annotations

from typing import List, Optional

from repro.probes.reliability import sample_lifetime_days
from repro.protocol.framing import Reading, TaskSnapshot
from repro.sensors.base import Sensor
from repro.sim.kernel import Simulation
from repro.sim.simtime import DAY, MINUTE


class Probe:
    """One subglacial probe.

    Parameters
    ----------
    sim:
        Kernel.
    probe_id:
        Probe number (the paper's figures use 21, 24, 25).
    sensors:
        Sensor suite (see :func:`repro.sensors.make_probe_sensor_suite`).
    sampling_interval_s:
        Measurement period.  At the 30-minute default a probe accumulates
        ~3000 readings in two months offline — the Section V scenario.
    lifetime_days:
        Fixed lifetime, or ``None`` to draw from the paper-calibrated
        Weibull (stream ``probe.<id>.lifetime``).
    clock_drift_ppm:
        The probe's cheap oscillator drift.  Readings are stamped with the
        probe's *believed* time, so an unsynchronised probe's data slides
        off the true timeline — the reason the base station must keep the
        probes synchronised ("The RTC has to be corrected for
        synchronisation with the probes", Section IV).
    defer_sampling:
        Deferred materialisation (default): sensors are pure functions of
        time and the believed-time stamp is linear between clock syncs, so
        the fixed-cadence sample loop costs **zero kernel events** — the
        buffer is synthesised retroactively, just before any interaction
        that observes it (:meth:`task`, :attr:`buffered_count`,
        :meth:`sync_clock`, an interval change).  ``False`` runs the
        original one-event-per-sample loop — the equivalence oracle
        (``tests/probes/test_deferred_sampling.py`` proves reading-level
        bitwise equality).
    """

    def __init__(
        self,
        sim: Simulation,
        probe_id: int,
        sensors: List[Sensor],
        sampling_interval_s: float = 30.0 * MINUTE,
        lifetime_days: Optional[float] = None,
        clock_drift_ppm: float = 0.0,
        defer_sampling: bool = True,
    ) -> None:
        self.sim = sim
        self.probe_id = probe_id
        self.sensors = sensors
        self._sampling_interval_s = sampling_interval_s
        self.clock_drift_ppm = clock_drift_ppm
        self._clock_synced_at = sim.now
        self._clock_error_at_sync = 0.0
        if lifetime_days is None:
            rng = sim.rng.stream(f"probe.{probe_id}.lifetime")
            lifetime_days = sample_lifetime_days(rng)
        self.dies_at = sim.now + lifetime_days * DAY
        self._buffer: List[Reading] = []
        self._active_task: Optional[TaskSnapshot] = None
        self._next_task_id = 1
        self.tasks_completed = 0
        self._readings_taken = 0
        self.defer_sampling = defer_sampling
        #: Next due sample instant (deferred mode bookkeeping; mirrors the
        #: wake the eager loop would have armed).
        self._next_sample_at = sim.now + sampling_interval_s
        if not defer_sampling:
            sim.process(self._sampler(), name=f"probe.{probe_id}.sampler")

    # ------------------------------------------------------------------
    # Life and death
    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """Whether the probe still responds (power/electronics intact)."""
        return self.sim.now < self.dies_at

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def clock_error_s(self) -> float:
        """Believed-minus-true time, seconds (drift since the last sync)."""
        elapsed = self.sim.now - self._clock_synced_at
        return self._clock_error_at_sync + elapsed * self.clock_drift_ppm * 1e-6

    def believed_time(self) -> float:
        """The probe's own idea of the current time."""
        return self.sim.now + self.clock_error_s()

    def sync_clock(self, residual_s: float = 0.0) -> None:
        """Time-sync from the base station (over the probe radio).

        ``residual_s`` is the sync protocol's own accuracy limit.
        Pending deferred samples are materialised first: their believed
        times belong to the *old* sync epoch.
        """
        self._materialise(self.sim.now)
        self._clock_synced_at = self.sim.now
        self._clock_error_at_sync = residual_s
        self.sim.trace.emit(f"probe.{self.probe_id}", "clock_synced")

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    @property
    def sampling_interval_s(self) -> float:
        """Measurement period; settable remotely (probe command)."""
        return self._sampling_interval_s

    @sampling_interval_s.setter
    def sampling_interval_s(self, interval_s: float) -> None:
        # The already-armed next wake keeps the old cadence (exactly what
        # the eager loop does — its pending timeout is not rescheduled);
        # samples after it follow the new interval.  Materialise first so
        # no pending sample is synthesised with the new cadence.
        self._materialise(self.sim.now)
        self._sampling_interval_s = interval_s

    def _sampler(self):
        """The eager one-event-per-sample loop (``defer_sampling=False``)."""
        while True:
            yield self.sim.timeout(self._sampling_interval_s)
            if not self.is_alive:
                return
            channels = {sensor.name: sensor.sample(self.sim.now) for sensor in self.sensors}
            self._buffer.append(
                Reading(probe_id=self.probe_id, seq=-1, time=self.believed_time(),
                        channels=channels)
            )
            self._readings_taken += 1

    def _materialise(self, up_to: float) -> None:
        """Synthesise every sample due at or before ``up_to`` (deferred mode).

        Sample instants, sensor values and believed-time stamps are all
        pure functions of time and of state that is constant between
        state-observing interactions, so generating them lazily is
        observationally identical to the eager loop — minus one kernel
        event (and heap churn) per sample.

        Tie convention: a sample due *exactly* at the observation instant
        is included (``t <= up_to``).  In the eager loop that instant is a
        same-timestamp tie whose order depends on the kernel tie-break
        policy; deferred mode resolves it deterministically, consistent
        with ``run(until=T)`` processing events at exactly ``T``.
        """
        if not self.defer_sampling:
            return
        t = self._next_sample_at
        if t > up_to:
            return
        interval = self._sampling_interval_s
        dies_at = self.dies_at
        ppm = self.clock_drift_ppm
        synced_at = self._clock_synced_at
        error_at_sync = self._clock_error_at_sync
        buffer = self._buffer
        probe_id = self.probe_id
        sensors = self.sensors
        taken = 0
        while t <= up_to:
            if t >= dies_at:
                # The eager loop's `if not is_alive: return` — sampling
                # stops for good at the first wake past death.
                self._next_sample_at = float("inf")
                self._readings_taken += taken
                return
            # Same float associativity as believed_time()/clock_error_s(),
            # so stamps are bitwise equal to the eager loop's.
            believed = t + (error_at_sync + (t - synced_at) * ppm * 1e-6)
            channels = {sensor.name: sensor.sample(t) for sensor in sensors}
            buffer.append(
                Reading(probe_id=probe_id, seq=-1, time=believed, channels=channels)
            )
            taken += 1
            t += interval
        self._next_sample_at = t
        self._readings_taken += taken

    @property
    def readings_taken(self) -> int:
        """Samples taken so far (materialises pending deferred samples)."""
        self._materialise(self.sim.now)
        return self._readings_taken

    @property
    def buffered_count(self) -> int:
        """Readings waiting to be bundled into the next task."""
        self._materialise(self.sim.now)
        return len(self._buffer)

    # ------------------------------------------------------------------
    # Task life-cycle (the protocol's probe endpoint)
    # ------------------------------------------------------------------
    def task(self) -> Optional[TaskSnapshot]:
        """The outstanding task, creating one from the buffer if needed.

        Returns ``None`` when the probe is dead or has nothing to send.
        """
        if not self.is_alive:
            return None
        self._materialise(self.sim.now)
        if self._active_task is None:
            if not self._buffer:
                return None
            readings = [
                Reading(probe_id=r.probe_id, seq=seq, time=r.time, channels=r.channels)
                for seq, r in enumerate(self._buffer)
            ]
            self._active_task = TaskSnapshot(task_id=self._next_task_id, readings=readings)
            self._next_task_id += 1
            self._buffer = []
            # Readings become trackable artifacts at the instant the task
            # freezes their sequence numbers (the "prov" source is never
            # matched by station log-volume queries, so this cannot perturb
            # simulated behaviour).
            self.sim.trace.emit(
                "prov", "created", cls="reading", probe=self.probe_id,
                task=self._active_task.task_id, first_seq=0,
                count=len(readings))
        return self._active_task

    def mark_complete(self, task_id: int) -> None:
        """Retire the task: the base station holds every reading."""
        if self._active_task is None or self._active_task.task_id != task_id:
            return  # stale confirmation; ignore (idempotent)
        self._active_task = None
        self.tasks_completed += 1
        self.sim.trace.emit(f"probe.{self.probe_id}", "task_complete", task=task_id)


class WiredProbe:
    """The wired probe: the base station's single-point-of-failure antenna.

    Probe radio traffic passes through one wired probe; when it fails, the
    base cannot talk to any probe ("the failure of the wired probe",
    Section V — using several was ruled out "because of the lack of serial
    ports").
    """

    def __init__(self, sim: Simulation, lifetime_days: Optional[float] = None) -> None:
        self.sim = sim
        if lifetime_days is None:
            self.dies_at = float("inf")
        else:
            self.dies_at = sim.now + lifetime_days * DAY
        self.repaired_at: Optional[float] = None

    @property
    def is_alive(self) -> bool:
        """Whether probe communications are possible at all."""
        if self.repaired_at is not None and self.sim.now >= self.repaired_at:
            return True
        return self.sim.now < self.dies_at

    def fail_now(self) -> None:
        """Force an immediate failure (deep-snow damage scenario)."""
        self.dies_at = min(self.dies_at, self.sim.now)
        self.repaired_at = None

    def schedule_repair(self, at_time: float) -> None:
        """A field visit replaces the wired probe at ``at_time``."""
        self.repaired_at = at_time
