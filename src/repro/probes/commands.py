"""The probe command set: ping, time sync, remote reconfiguration.

Beyond data collection, the base station manages its probes over the same
lossy radio: reachability checks, clock synchronisation (probe data is
only interpretable if its timestamps line up with everything else —
"The RTC has to be corrected for synchronisation with the probes"), and
sampling-rate changes (the remote-configuration theme of Section VI
extended down to the probes).

Each command is a small request/response exchange over the
:class:`~repro.comms.probe_radio.ProbeRadioLink`, with per-command retry
budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.comms.probe_radio import ProbeRadioLink
from repro.probes.probe import Probe
from repro.sim.kernel import Simulation

#: Size of a command request/response packet.
COMMAND_BYTES = 12

#: Residual error of one time-sync exchange (half-duplex turnaround jitter).
TIME_SYNC_RESIDUAL_S = 0.02


@dataclass
class CommandOutcome:
    """Result of one probe command."""

    ok: bool
    attempts: int
    airtime_bytes: int


class ProbeCommander:
    """Base-station side of probe management commands."""

    def __init__(self, sim: Simulation, retries: int = 4) -> None:
        self.sim = sim
        self.retries = retries
        self.commands_sent = 0
        self.commands_failed = 0

    def _exchange(self, link: ProbeRadioLink):
        """One request/response round trip; returns (ok, airtime)."""
        airtime = 0
        for attempt in range(1, self.retries + 1):
            airtime += 2 * COMMAND_BYTES
            request_ok = yield self.sim.process(link.transmit(COMMAND_BYTES))
            if not request_ok:
                continue
            response_ok = yield self.sim.process(link.transmit(COMMAND_BYTES))
            if response_ok:
                return CommandOutcome(ok=True, attempts=attempt, airtime_bytes=airtime)
        return CommandOutcome(ok=False, attempts=self.retries, airtime_bytes=airtime)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def ping(self, probe: Probe, link: ProbeRadioLink):
        """Process: reachability check.  Returns a :class:`CommandOutcome`."""
        self.commands_sent += 1
        if not probe.is_alive:
            self.commands_failed += 1
            return CommandOutcome(ok=False, attempts=0, airtime_bytes=0)
        outcome = yield from self._exchange(link)
        if not outcome.ok:
            self.commands_failed += 1
        return outcome

    def time_sync(self, probe: Probe, link: ProbeRadioLink):
        """Process: synchronise the probe's clock to the base station's.

        On success the probe's clock error collapses to the exchange's
        residual.  (The base's own RTC is assumed corrected — Section IV's
        machinery exists precisely so this chain is anchored to GPS time.)
        """
        self.commands_sent += 1
        if not probe.is_alive:
            self.commands_failed += 1
            return CommandOutcome(ok=False, attempts=0, airtime_bytes=0)
        outcome = yield from self._exchange(link)
        if outcome.ok:
            probe.sync_clock(residual_s=TIME_SYNC_RESIDUAL_S)
        else:
            self.commands_failed += 1
        return outcome

    def set_sampling_interval(self, probe: Probe, link: ProbeRadioLink,
                              interval_s: float):
        """Process: reconfigure the probe's measurement period remotely."""
        if interval_s <= 0:
            raise ValueError("interval must be > 0")
        self.commands_sent += 1
        if not probe.is_alive:
            self.commands_failed += 1
            return CommandOutcome(ok=False, attempts=0, airtime_bytes=0)
        outcome = yield from self._exchange(link)
        if outcome.ok:
            probe.sampling_interval_s = interval_s
            self.sim.trace.emit(
                f"probe.{probe.probe_id}", "sampling_reconfigured",
                interval_s=interval_s,
            )
        else:
            self.commands_failed += 1
        return outcome
