"""Subglacial probes: sensing, buffering, task life-cycle, reliability.

The probes sit ~70 m under the ice surface, sample conductivity, tilt and
pressure, and buffer readings until the base station collects them through
the lossy probe radio.  Of the seven probes deployed in summer 2008, four
were still alive after one year and two were "producing data after 18
months under the ice" — the :mod:`repro.probes.reliability` model is
calibrated to exactly that survival curve.
"""

from repro.probes.commands import CommandOutcome, ProbeCommander
from repro.probes.probe import Probe, WiredProbe
from repro.probes.reliability import (
    PAPER_SCALE_DAYS,
    PAPER_SHAPE,
    expected_survivors,
    monte_carlo_survival,
    survival_fraction,
)

__all__ = [
    "CommandOutcome",
    "PAPER_SCALE_DAYS",
    "PAPER_SHAPE",
    "Probe",
    "ProbeCommander",
    "WiredProbe",
    "expected_survivors",
    "monte_carlo_survival",
    "survival_fraction",
]
