"""Probe lifetime model calibrated to the paper's survival anchors.

Section V: "The probes deployed in the summer of 2008 survived longer than
previous generations (4/7 after one year) ... data is being produced by two
after 18 months under the ice."  Fitting a Weibull survival curve through
S(365 d) = 4/7 and S(548 d) = 2/7 gives shape ~= 1.94 and scale ~= 491 days;
those are the package defaults.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.rng import generator_from_seed

#: Weibull shape fitted to the paper's two survival anchors.
PAPER_SHAPE = 1.943
#: Weibull scale (days) fitted to the paper's two survival anchors.
PAPER_SCALE_DAYS = 491.0

#: The paper's anchors: (days, surviving fraction of the 7 probes).
PAPER_ANCHORS: Tuple[Tuple[float, float], ...] = ((365.0, 4.0 / 7.0), (548.0, 2.0 / 7.0))


def survival_fraction(
    t_days: float, shape: float = PAPER_SHAPE, scale_days: float = PAPER_SCALE_DAYS
) -> float:
    """Probability that one probe is still alive after ``t_days``."""
    if t_days < 0:
        raise ValueError("time must be >= 0")
    return math.exp(-((t_days / scale_days) ** shape))


def sample_lifetime_days(
    rng: np.random.Generator,
    shape: float = PAPER_SHAPE,
    scale_days: float = PAPER_SCALE_DAYS,
) -> float:
    """Draw one probe lifetime from the fitted Weibull."""
    return float(scale_days * rng.weibull(shape))


def expected_survivors(
    n_probes: int,
    t_days: float,
    shape: float = PAPER_SHAPE,
    scale_days: float = PAPER_SCALE_DAYS,
) -> float:
    """Expected number of survivors out of ``n_probes`` after ``t_days``."""
    return n_probes * survival_fraction(t_days, shape, scale_days)


def monte_carlo_survival(
    n_probes: int,
    horizons_days: Sequence[float],
    trials: int = 1000,
    seed: int = 0,
    shape: float = PAPER_SHAPE,
    scale_days: float = PAPER_SCALE_DAYS,
    rng: Optional[np.random.Generator] = None,
) -> List[float]:
    """Mean survivor counts at each horizon over ``trials`` deployments.

    This is the E12 experiment: deploy ``n_probes`` repeatedly and count
    how many are alive at one year and eighteen months.

    Pass ``rng`` (e.g. ``RngRegistry.stream("probe.survival")``) to draw
    from a registered stream; otherwise ``seed`` derives one via
    :func:`repro.sim.rng.generator_from_seed`, which for a given seed
    reproduces the historical sequence exactly.
    """
    if rng is None:
        rng = generator_from_seed(seed)
    lifetimes = scale_days * rng.weibull(shape, size=(trials, n_probes))
    return [float((lifetimes > horizon).sum(axis=1).mean()) for horizon in horizons_days]
