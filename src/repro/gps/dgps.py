"""Differential GPS post-processing.

The reference station is the fixed point: subtracting its simultaneous
observation cancels the atmospheric/orbital error shared by both receivers,
leaving only receiver-local noise — millimetres to centimetres instead of
metres.  "The readings from one station are less useful than when readings
for both stations are available" (Section III): :func:`raw_solve` quantifies
the degraded single-station fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.gps.files import GpsReading
from repro.sim.simtime import DAY


@dataclass(frozen=True)
class DgpsSolution:
    """One processed position estimate for the moving (base) antenna."""

    time: float
    position_m: float
    differential: bool

    @property
    def quality(self) -> str:
        """Human-readable solution grade."""
        return "differential" if self.differential else "raw"


def differential_solve(
    base: GpsReading,
    reference: GpsReading,
    reference_known_position_m: float = 0.0,
) -> DgpsSolution:
    """Differentially correct a base reading against a simultaneous reference.

    The readings must overlap in time; the common-mode error cancels and
    only the two receivers' private noise remains.
    """
    if not base.overlaps(reference):
        raise ValueError(
            f"readings do not overlap: base [{base.start_time}, {base.end_time}) vs "
            f"reference [{reference.start_time}, {reference.end_time})"
        )
    reference_error = reference.observed_position_m - reference_known_position_m
    corrected = base.observed_position_m - reference_error
    mid = base.start_time + base.duration_s / 2.0
    return DgpsSolution(time=mid, position_m=corrected, differential=True)


def raw_solve(base: GpsReading) -> DgpsSolution:
    """Single-receiver (undifferenced) solution: metre-scale error."""
    mid = base.start_time + base.duration_s / 2.0
    return DgpsSolution(time=mid, position_m=base.observed_position_m, differential=False)


def pair_readings(
    base_readings: Sequence[GpsReading],
    reference_readings: Sequence[GpsReading],
    min_overlap_s: float = 60.0,
) -> List[Tuple[GpsReading, Optional[GpsReading]]]:
    """Match each base reading with an overlapping reference reading, if any.

    Each reference reading is used at most once; unmatched base readings
    pair with ``None`` (and will only get a raw solution).
    """
    available = list(reference_readings)
    pairs: List[Tuple[GpsReading, Optional[GpsReading]]] = []
    for base in sorted(base_readings, key=lambda r: r.start_time):
        match = None
        for candidate in available:
            if base.overlaps(candidate, min_overlap_s=min_overlap_s):
                match = candidate
                break
        if match is not None:
            available.remove(match)
        pairs.append((base, match))
    return pairs


def solve_all(
    base_readings: Sequence[GpsReading],
    reference_readings: Sequence[GpsReading],
    reference_known_position_m: float = 0.0,
) -> List[DgpsSolution]:
    """Best-available solution for every base reading, time ordered."""
    solutions = []
    for base, reference in pair_readings(base_readings, reference_readings):
        if reference is not None:
            solutions.append(differential_solve(base, reference, reference_known_position_m))
        else:
            solutions.append(raw_solve(base))
    return sorted(solutions, key=lambda s: s.time)


def velocity_series(solutions: Sequence[DgpsSolution]) -> List[Tuple[float, float]]:
    """Finite-difference velocities in m/day between consecutive solutions.

    Each entry is ``(midpoint_time, velocity_m_per_day)``.  This is the
    series the project uses to study diurnal and stick-slip motion.
    """
    ordered = sorted(solutions, key=lambda s: s.time)
    series = []
    for a, b in zip(ordered, ordered[1:]):
        dt = b.time - a.time
        if dt <= 0:
            continue
        velocity = (b.position_m - a.position_m) / dt * DAY
        series.append(((a.time + b.time) / 2.0, velocity))
    return series
