"""The dGPS receiver: recording, internal storage, serial fetch, time fixes."""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from repro.energy.bus import PowerBus
from repro.energy.components import GPS_RECEIVER
from repro.environment.weather import _block_noise, _smooth_noise
from repro.gps.files import GpsReading, reading_file_name, reading_size_bytes
from repro.hardware.storage import CompactFlashCard
from repro.sim.kernel import Simulation


class TimeFixFailed(Exception):
    """Raised when the receiver cannot acquire enough satellites for time."""


class GpsReceiver:
    """A power-switched dGPS unit with its own compact-flash store.

    The unit is configured "to automatically start taking a reading whenever
    it is turned on" (Section II), so the MSP430 can schedule dGPS work with
    no Gumstix involvement.

    Parameters
    ----------
    sim, bus:
        Kernel and station power bus (registers a 3.6 W load).
    name:
        Trace prefix, e.g. ``"base.gps"``.
    position_fn:
        Ground-truth along-flow position of the antenna, metres
        (``glacier.surface_position_m`` on the ice; a constant at the
        reference station).
    acquisition_s:
        Cold-start time to first fix.
    serial_bytes_per_s:
        Effective RS-232 rate for pulling files to the Gumstix.  The
        5760 B/s default is back-derived from Section VI: ~21 days of
        state-3 readings (252 x 165 KB) is exactly what 2 hours can move.
    """

    #: Raw (undifferenced) GPS error scale, metres.
    RAW_ERROR_M = 3.0
    #: Residual receiver-local error after differencing, metres.
    PRIVATE_ERROR_M = 0.008
    #: Correlation block for the shared atmospheric error, seconds.
    COMMON_ERROR_BLOCK_S = 1800.0

    def __init__(
        self,
        sim: Simulation,
        bus: PowerBus,
        name: str,
        position_fn: Callable[[float], float],
        acquisition_s: float = 45.0,
        power_w: float = GPS_RECEIVER.power_w,
        seed: int = 0,
        serial_bytes_per_s: float = 5760.0,
    ) -> None:
        self.sim = sim
        self.bus = bus
        self.name = name
        self.position_fn = position_fn
        self.acquisition_s = acquisition_s
        self.seed = seed
        self.serial_bytes_per_s = serial_bytes_per_s
        self.load = bus.add_load(name, power_w)
        self.card = CompactFlashCard(capacity_bytes=2_000_000_000, name=f"{name}.cf")
        self.readings_taken = 0
        #: Intermittent RS-232 fault: probability that one fetch attempt
        #: fails mid-transfer (Section VI names "an intermittent RS232
        #: cable or dGPS unit" as the only plausible cause of the
        #: oversized-file livelock).
        self.rs232_fault_probability = 0.0
        self.fetch_failures = 0

    # ------------------------------------------------------------------
    # Sky model
    # ------------------------------------------------------------------
    def satellites_visible(self, time: float) -> int:
        """Visible satellite count (5-12, deterministic in time)."""
        noise = _smooth_noise(self.seed, f"{self.name}:sats", time)
        return 5 + int(round(noise * 7))

    def _common_error_m(self, time: float) -> float:
        """Atmospheric/orbit error shared by all receivers observing now."""
        block = int(time // self.COMMON_ERROR_BLOCK_S)
        # Seed 0 on purpose: *every* receiver sees the same common error.
        return self.RAW_ERROR_M * (2.0 * _block_noise(0, "gps_common", block) - 1.0)

    def _private_error_m(self, time: float) -> float:
        block = int(time // 60.0)
        return self.PRIVATE_ERROR_M * (
            2.0 * _block_noise(self.seed, f"{self.name}:private", block) - 1.0
        )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def take_reading(self, duration_s: float):
        """Process: power on, record for ``duration_s``, store the file, power off.

        Yields the stored :class:`GpsReading` as the process return value.
        """
        start = self.sim.now
        self.bus.loads.switch_on(self.name)
        try:
            yield self.sim.timeout(duration_s)
            mid = start + duration_s / 2.0
            satellites = self.satellites_visible(mid)
            reading = GpsReading(
                station=self.name,
                start_time=start,
                duration_s=duration_s,
                satellites=satellites,
                size_bytes=reading_size_bytes(satellites),
                observed_position_m=(
                    self.position_fn(mid) + self._common_error_m(mid) + self._private_error_m(mid)
                ),
                common_error_m=self._common_error_m(mid),
                private_error_m=self._private_error_m(mid),
            )
            file_name = reading_file_name(self.name, start)
            self.card.write(
                file_name,
                reading.size_bytes,
                created=start,
                payload=reading,
            )
            self.readings_taken += 1
            self.sim.trace.emit(
                self.name,
                "gps_reading",
                size_bytes=reading.size_bytes,
                satellites=satellites,
                duration_s=duration_s,
            )
            # Provenance birth of the observation file ("prov" source is
            # outside every station log-volume query, so this is inert to
            # simulated behaviour).
            self.sim.trace.emit(
                "prov", "created", cls="gps",
                artifact=f"gps:{file_name}", bytes=reading.size_bytes,
            )
            return reading
        finally:
            self.bus.loads.switch_off(self.name)

    # ------------------------------------------------------------------
    # Time service (Section IV recovery)
    # ------------------------------------------------------------------
    def time_fix(self):
        """Process: acquire satellites and return the true UTC time.

        Raises :class:`TimeFixFailed` when fewer than four satellites are
        visible after acquisition (heavy storm / antenna icing); the
        recovery logic then "sleeps for a day and tries again".
        """
        self.bus.loads.switch_on(self.name)
        try:
            yield self.sim.timeout(self.acquisition_s)
            if self.satellites_visible(self.sim.now) < 4:
                self.sim.trace.emit(self.name, "time_fix_failed")
                raise TimeFixFailed(f"{self.name}: insufficient satellites")
            self.sim.trace.emit(self.name, "time_fix_ok")
            return self.sim.utcnow()
        finally:
            self.bus.loads.switch_off(self.name)

    # ------------------------------------------------------------------
    # Serial fetch to the Gumstix
    # ------------------------------------------------------------------
    def pending_files(self) -> List:
        """Files on the internal card, oldest first."""
        return self.card.list_files(prefix="gps/")

    def fetch_time_s(self, size_bytes: int) -> float:
        """RS-232 transfer time for one file of ``size_bytes``."""
        return size_bytes / self.serial_bytes_per_s

    def fetch_file(self, name: str):
        """Process: pull one file off the receiver (receiver powered during).

        Returns the :class:`~repro.hardware.storage.StoredFile` and deletes
        it from the internal card.  With an intermittent RS-232 fault the
        transfer can abort partway — time and power spent, file retained —
        which is how multi-day backlogs (and eventually an over-window
        file) build up on the receiver.
        """
        stored = self.card.read(name)
        self.bus.loads.switch_on(self.name)
        try:
            if self.rs232_fault_probability > 0.0:
                roll = float(self.sim.rng.stream(f"{self.name}.rs232").random())
                if roll < self.rs232_fault_probability:
                    # Fails partway through: half the airtime wasted.
                    yield self.sim.timeout(self.fetch_time_s(stored.size_bytes) / 2.0)
                    self.fetch_failures += 1
                    self.sim.trace.emit(self.name, "rs232_fetch_failed", file=name)
                    raise IOError(f"{self.name}: RS-232 transfer failed for {name}")
            yield self.sim.timeout(self.fetch_time_s(stored.size_bytes))
            self.card.delete(name)
            self.sim.trace.emit("prov", "stored", cls="gps",
                                artifact=f"gps:{name}")
            return stored
        finally:
            self.bus.loads.switch_off(self.name)

    # ------------------------------------------------------------------
    # Continuous recording (the ref [12] regime)
    # ------------------------------------------------------------------
    #: Bytes produced per second of continuous recording: a nominal
    #: reading's worth per nominal reading duration (~536 B/s).
    CONTINUOUS_BYTES_PER_S = 165_000 / 307.7

    def continuous_file_name(self) -> str:
        """The single ever-growing file of continuous-recording mode."""
        return f"gps/{self.name}/continuous.obs"

    def record_continuous(self, duration_s: float):
        """Process: leave the receiver recording into ONE growing file.

        Some researchers "leave their dGPS recording full-time in order to
        obtain high precision" (ref [12]); Section III rejects that for
        power and data-volume reasons.  Repeated calls grow the same file,
        which is also how a single file comes to exceed a transfer window.
        """
        self.bus.loads.switch_on(self.name)
        try:
            yield self.sim.timeout(duration_s)
            new_bytes = int(duration_s * self.CONTINUOUS_BYTES_PER_S)
            name = self.continuous_file_name()
            existing = self.card.read(name).size_bytes if self.card.exists(name) else 0
            self.card.write(name, existing + new_bytes, created=self.sim.now)
            self.sim.trace.emit(self.name, "continuous_recorded",
                                total_bytes=existing + new_bytes)
            return existing + new_bytes
        finally:
            self.bus.loads.switch_off(self.name)
