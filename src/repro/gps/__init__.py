"""The dGPS subsystem: receivers, reading files, differential processing.

Differential GPS drives the whole architecture (Section II): the *reference
station* records at a known fixed location while the *base station* rides
the moving ice; post-processing the simultaneous recordings yields
centimetre-level ice positions, revealing diurnal and stick-slip velocity
structure.  The receiver model reproduces the operational facts the paper's
system handles:

- a reading is ~165 KB, varying with the number of visible satellites;
- readings land on the receiver's internal CF card and must be pulled to
  the Gumstix over a slow serial link (time, power and backlog);
- the receiver starts recording automatically on power-up, so the MSP430
  can drive it without the Gumstix (Section II's drift-free design);
- a powered receiver can also serve a time fix to repair a reset RTC
  (Section IV).
"""

from repro.gps.dgps import DgpsSolution, differential_solve, raw_solve, velocity_series
from repro.gps.files import GpsReading, reading_file_name
from repro.gps.receiver import GpsReceiver, TimeFixFailed

__all__ = [
    "DgpsSolution",
    "GpsReading",
    "GpsReceiver",
    "TimeFixFailed",
    "differential_solve",
    "raw_solve",
    "reading_file_name",
    "velocity_series",
]
