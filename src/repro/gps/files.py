"""dGPS reading files: the unit of storage, transfer and processing.

"Each dGPS reading is approximately 165KB, although the exact size varies
depending on the number of satellites available at the time of the reading"
(Section III).  File size is what couples the dGPS to everything else:
reading power, serial-transfer time, GPRS volume and the 2-hour window
arithmetic all scale with it.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Nominal reading size at the nominal satellite count (Section III).
NOMINAL_READING_BYTES = 165_000
#: Satellite count at which a reading has its nominal size.
NOMINAL_SATELLITES = 9


@dataclass(frozen=True)
class GpsReading:
    """One dGPS observation window recorded by a receiver.

    Attributes
    ----------
    station:
        Recording station name (``"base"`` or ``"reference"``).
    start_time, duration_s:
        True simulated window (receivers stamp files with satellite time,
        which is correct even when the station RTC is wrong).
    satellites:
        Visible satellite count during the window.
    size_bytes:
        File size (satellite-count dependent).
    observed_position_m:
        Raw (undifferenced) along-flow position estimate, metres.
    common_error_m:
        The atmospheric/orbit error shared by simultaneous observers —
        carried so the differential solver can cancel it exactly, never
        read by station code.
    private_error_m:
        Receiver-local noise remaining after differencing.
    """

    station: str
    start_time: float
    duration_s: float
    satellites: int
    size_bytes: int
    observed_position_m: float
    common_error_m: float
    private_error_m: float

    @property
    def end_time(self) -> float:
        """True end of the observation window."""
        return self.start_time + self.duration_s

    def overlaps(self, other: "GpsReading", min_overlap_s: float = 60.0) -> bool:
        """Whether two readings observed (nearly) the same window.

        Differential processing needs simultaneous data; the paper's
        synchronisation machinery exists to make this true daily.
        """
        overlap = min(self.end_time, other.end_time) - max(self.start_time, other.start_time)
        return overlap >= min_overlap_s


def reading_size_bytes(satellites: int) -> int:
    """File size for a reading with ``satellites`` visible."""
    if satellites < 0:
        raise ValueError("satellite count must be >= 0")
    return int(NOMINAL_READING_BYTES * satellites / NOMINAL_SATELLITES)


def reading_file_name(station: str, start_time: float) -> str:
    """Canonical file name for a reading, sortable by time."""
    return f"gps/{station}/{int(start_time):012d}.obs"
