"""Command-line interface: run deployments and print reports.

Usage::

    repro-sim simulate --days 7 --seed 42
    repro-sim simulate --days 30 --override 2 --no-wind
    repro-sim science --days 14 --seed 3
    repro-sim health --days 10
    repro-sim metrics --days 7 --seed 0
    repro-sim simulate --days 2 --metrics-out metrics.prom --spans-out spans.json
    repro-sim sweep --days 7 --seeds 0,1,2,3 --param solar_w=5,10 --jobs 4
    repro-sim sweep --days 7 --seeds 0,1 --rollup-out rollup.json \\
        --alerts examples/alerts/mission_slo.json
    repro-sim rollup shard_a.json shard_b.json --table
    repro-sim lint src/repro --check-determinism
    repro-sim races --days 45 --faults examples/faults/canonical_chaos.json

(Equivalently ``python -m repro.cli ...``.  ``repro-sim lint`` forwards to
the ``repro-lint`` static-analysis gate; see :mod:`repro.lint`.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import format_table
from repro.core import Deployment, DeploymentConfig
from repro.core.config import StationConfig, reference_defaults
from repro.server.archive import ScienceArchive
from repro.sim.simtime import DAY


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Glacsweb Gumsense deployment simulator (Martinez et al., 2010)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--days", type=float, default=7.0, help="days to simulate")
        p.add_argument("--seed", type=int, default=0, help="master random seed")
        p.add_argument("--no-wind", action="store_true",
                       help="disable the base station's wind turbine")
        p.add_argument("--solar-w", type=float, default=None,
                       help="override the base station's solar rating")
        p.add_argument("--override", type=int, default=None, choices=(0, 1, 2, 3),
                       help="server-side manual power-state override")
        p.add_argument("--energy-mode", choices=("fixed", "adaptive"),
                       default="adaptive",
                       help="power-bus integrator: event-driven 'adaptive' "
                            "(default) or the original fixed-step sampler")
        p.add_argument("--comms-mode", choices=("chunked", "exact"),
                       default="exact",
                       help="comms transfer engine: single inverse-CDF "
                            "drop-time sample 'exact' (default) or the "
                            "original per-chunk Bernoulli loop")
        p.add_argument("--energy-step-s", type=float, default=None,
                       help="fixed-mode sampling step / adaptive planning "
                            "grid, seconds (default: 300)")
        p.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write metrics after the run (.json = JSON dump, "
                            "anything else = Prometheus text)")
        p.add_argument("--spans-out", metavar="FILE", default=None,
                       help="write spans after the run (.ndjson = NDJSON, "
                            "anything else = Chrome trace JSON); also enables "
                            "per-event kernel spans")
        p.add_argument("--self-profile", action="store_true",
                       help="measure wall-clock time per process and print a "
                            "hotspot report to stderr (host-dependent; never "
                            "part of any exported artefact)")
        p.add_argument("--faults", metavar="PLAN.json", default=None,
                       help="fault plan to arm before the run (JSON; see "
                            "repro.faults) — same seed + same plan replays "
                            "byte-identically")
        p.add_argument("--alerts", metavar="RULES.json", default=None,
                       help="declarative alert/SLO rules evaluated against "
                            "the run (JSON; see docs/telemetry_rollup.md)")
        fleet_args(p)

    def fleet_args(p):
        p.add_argument("--stations", type=int, default=None, metavar="N",
                       help="total station count (>= 2: base + reference + "
                            "solar-only extras)")
        p.add_argument("--servers", type=int, default=None, metavar="N",
                       help="server fleet size (default 1 = the classic "
                            "single Southampton server)")
        p.add_argument("--server-policy",
                       choices=("static", "round-robin", "hop"), default=None,
                       help="station upload-target policy against a multi-"
                            "server fleet (default: static)")
        p.add_argument("--tenant-size", type=int, default=None, metavar="K",
                       help="group stations into tenants of K for per-tenant "
                            "override state (default: one global tenant)")
        p.add_argument("--batched-sync", action="store_true",
                       help="stations use the single-request sync_session "
                            "endpoint (state up + override + specials + "
                            "load hints in one modem exchange)")

    simulate = sub.add_parser("simulate", help="run a deployment and summarise")
    common(simulate)

    science = sub.add_parser("science", help="run, then print the dGPS/probe products")
    common(science)

    health = sub.add_parser("health", help="run, then print station-health indicators")
    common(health)

    report = sub.add_parser("report", help="run, then print the full mission report")
    common(report)

    metrics = sub.add_parser(
        "metrics", help="run, then print the Prometheus metrics dump")
    common(metrics)
    metrics.add_argument("--format", choices=("prom", "json"), default="prom",
                         help="metrics dump format (default: prom)")

    export = sub.add_parser("export", help="run, then print archive data as CSV/JSON")
    common(export)
    export.add_argument("--format", choices=("csv", "json"), default="csv",
                        help="output format")
    export.add_argument("--what", choices=("velocity", "voltage", "snapshot"),
                        default="velocity", help="which product to export")

    inject = sub.add_parser(
        "inject",
        help="run under a fault plan and check the recovery invariants",
    )
    common(inject)
    inject.add_argument("--report-out", metavar="FILE", default=None,
                        help="also write the invariant report to this file")
    inject.set_defaults(days=45.0)

    sweep = sub.add_parser(
        "sweep",
        help="run a config-grid x seed sweep in parallel, with result caching",
    )
    sweep.add_argument("--days", type=float, default=7.0, help="days per run")
    sweep.add_argument("--seeds", default="0", metavar="S1,S2,...",
                       help="comma-separated seed list (default: 0)")
    sweep.add_argument("--param", action="append", default=[],
                       metavar="FIELD=V1,V2,...",
                       help="StationConfig field to sweep; repeatable — the "
                            "grid is the cartesian product of all --param")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default: 1 = in-process)")
    sweep.add_argument("--cache-dir", default=".repro-sweep-cache",
                       help="result cache directory (default: .repro-sweep-cache)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="ignore and do not write the result cache")
    sweep.add_argument("--output", metavar="FILE", default=None,
                       help="write the sweep JSON here instead of stdout")
    sweep.add_argument("--faults", action="append", default=[],
                       metavar="PLAN.json",
                       help="fault plan to cross into the grid; repeatable. "
                            "Use the literal 'none' for the fault-free "
                            "baseline alongside plan files")
    sweep.add_argument("--alerts", metavar="RULES.json", default=None,
                       help="alert rules evaluated inside every run; "
                            "per-run firings land in the run summaries "
                            "and alerts_fired_total in the rollup")
    sweep.add_argument("--rollup-out", metavar="FILE", default=None,
                       help="write the streaming campaign metric rollup "
                            "(canonical JSON, byte-identical across --jobs "
                            "and cache states)")
    sweep.add_argument("--backend", choices=("pool", "shared-dir"),
                       default="pool",
                       help="execution backend: 'pool' (local warm-worker "
                            "pool, default) or 'shared-dir' (cooperatively "
                            "drain a shared --work-dir with other hosts)")
    sweep.add_argument("--chunk-size", type=int, default=None, metavar="N",
                       help="jobs per worker batch (default: adaptive from "
                            "measured run wall time; for shared-dir, the "
                            "claim-block size fixed at campaign creation)")
    sweep.add_argument("--work-dir", metavar="DIR", default=None,
                       help="shared campaign directory (manifest + claims + "
                            "cache); required by --backend shared-dir")
    sweep.add_argument("--progress", action="store_true",
                       help="print a periodic runs/s progress line to stderr")
    sweep.add_argument("--stale-claim-s", type=float, default=None,
                       metavar="SECONDS",
                       help="shared-dir only: steal another drainer's claim "
                            "once this old if its block is still incomplete "
                            "(default: 300)")
    sweep.add_argument("--cache-gc", action="store_true",
                       help="prune cache entries written by older repro "
                            "versions, report reclaimed bytes, and exit "
                            "without sweeping")
    sweep.add_argument("--stations", type=int, default=None, metavar="N",
                       help="total station count per run (sugar for "
                            "--param extra_stations=N-2)")
    sweep.add_argument("--servers", default=None, metavar="N1,N2,...",
                       help="server fleet size(s) as a grid axis (sugar for "
                            "--param servers=...)")
    sweep.add_argument("--server-policy", default=None, metavar="P1,P2,...",
                       help="upload-target policy grid axis: static, "
                            "round-robin, hop (sugar for "
                            "--param server_policy=...)")

    rollup = sub.add_parser(
        "rollup",
        help="merge rollup JSON shards from separate sweeps into one "
             "campaign aggregate",
    )
    rollup.add_argument("shards", nargs="+", metavar="ROLLUP.json",
                        help="rollup files written by sweep --rollup-out")
    rollup.add_argument("--output", metavar="FILE", default=None,
                        help="write the merged rollup here instead of stdout")
    rollup.add_argument("--table", action="store_true",
                        help="print the campaign results table "
                             "(analysis/campaign_table) instead of JSON")

    races = sub.add_parser(
        "races",
        help="event-ordering race check: static tie-sensitivity lint plus "
             "perturbed-tie replay",
    )
    races.add_argument("--days", type=float, default=45.0,
                       help="replay length in simulated days (default: 45)")
    races.add_argument("--seed", type=int, default=0, help="master seed")
    races.add_argument("--faults", metavar="PLAN.json", default=None,
                       help="fault plan to arm in every replay (JSON file)")
    fleet_args(races)
    races.add_argument("--policies", default="fifo,shuffle:1",
                       metavar="P1,P2,...",
                       help="tie-break policies; the first is the replay "
                            "baseline (default: %(default)s)")
    races.add_argument("--paths", nargs="*", default=["src/repro"],
                       help="paths the static race rules lint "
                            "(default: src/repro)")
    races.add_argument("--format", choices=("text", "json"), default="text",
                       help="report format")
    races.add_argument("--output", metavar="FILE", default=None,
                       help="write the report here as well as stdout")

    lint = sub.add_parser(
        "lint",
        help="run the determinism/correctness static analysis (repro-lint)",
        add_help=False,
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER,
                      help="arguments forwarded to repro-lint")
    return parser


def _load_fault_plan(args) -> Optional[dict]:
    """The ``--faults`` plan as its dict form, or None."""
    path = getattr(args, "faults", None)
    if not path:
        return None
    import json

    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _fleet_overrides(args) -> dict:
    """``--stations/--servers/...`` as DeploymentConfig kwargs."""
    overrides = {}
    stations = getattr(args, "stations", None)
    if stations is not None:
        if stations < 2:
            raise SystemExit("repro-sim: --stations must be >= 2 "
                             "(base + reference)")
        overrides["extra_stations"] = stations - 2
    if getattr(args, "servers", None) is not None:
        overrides["servers"] = args.servers
    if getattr(args, "server_policy", None) is not None:
        overrides["server_policy"] = args.server_policy
    if getattr(args, "tenant_size", None) is not None:
        overrides["tenant_size"] = args.tenant_size
    return overrides


def _build_deployment(args, check_invariants: bool = False) -> Deployment:
    base = StationConfig()
    reference = reference_defaults()
    if args.no_wind:
        base.wind_w = 0.0
    if args.solar_w is not None:
        base.solar_w = args.solar_w
    if getattr(args, "batched_sync", False):
        base.batched_sync = True
    for config in (base, reference):
        config.energy_mode = getattr(args, "energy_mode", "adaptive")
        config.comms_mode = getattr(args, "comms_mode", "exact")
        if getattr(args, "energy_step_s", None) is not None:
            config.energy_step_s = args.energy_step_s
    deployment = Deployment(DeploymentConfig(seed=args.seed, base=base,
                                             reference=reference,
                                             fault_plan=_load_fault_plan(args),
                                             **_fleet_overrides(args)))
    #: Armed fault engine (None without --faults); ``inject`` reads the
    #: invariant report off it after the run.
    deployment.fault_engine = None
    if deployment.config.fault_plan is not None:
        from repro.faults import apply_fault_plan

        deployment.fault_engine = apply_fault_plan(
            deployment, check_invariants=check_invariants)
    if args.override is not None:
        deployment.set_manual_override(args.override)
    #: Armed alert engine (None without --alerts); every command that
    #: finalises observability also settles and prints its firings.
    deployment.alert_engine = None
    if getattr(args, "alerts", None):
        from repro.obs.alerts import AlertEngine

        try:
            engine = AlertEngine.from_file(args.alerts,
                                           metrics=deployment.sim.obs.metrics)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro-sim: cannot load alert rules: {exc}")
        engine.attach(deployment.sim.trace)
        deployment.alert_engine = engine
    if getattr(args, "spans_out", None):
        deployment.sim.obs.enable_kernel_spans()
    if getattr(args, "self_profile", False):
        deployment.sim.obs.enable_self_profile()
    return deployment


def _write_file(path: str, text: str) -> int:
    """Write an exporter artefact; unwritable paths are a clean error.

    Returns 0 on success, 2 (with a message on stderr, no traceback) when
    the path cannot be written — the S2 contract for exporter-facing CLI
    paths.
    """
    try:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    except OSError as exc:
        print(f"repro-sim: cannot write {path}: {exc.strerror or exc}",
              file=sys.stderr)
        return 2
    return 0


def _write_observability(deployment: Deployment, args) -> int:
    """Honour ``--metrics-out`` / ``--spans-out`` / ``--self-profile``.

    File format follows the extension: ``.json`` selects the JSON metric
    dump / Chrome trace JSON, ``.ndjson`` selects span NDJSON, anything
    else gets Prometheus text (metrics) or Chrome trace JSON (spans).

    Finalises observability first (kernel gauges, provenance close-out,
    alert settlement) so every dump carries the complete mission view.
    Returns a process exit code: 0, or 2 when an output path is
    unwritable.
    """
    from repro.obs.export import (
        metrics_to_json,
        metrics_to_prometheus,
        spans_to_chrome_trace,
        spans_to_ndjson,
    )

    obs = deployment.sim.obs
    obs.finalise(deployment.sim)
    engine = getattr(deployment, "alert_engine", None)
    if engine is not None:
        engine.finish(deployment.sim.now)
    code = 0
    if getattr(args, "metrics_out", None):
        if args.metrics_out.endswith(".json"):
            text = metrics_to_json(obs.metrics)
        else:
            text = metrics_to_prometheus(obs.metrics)
        code = _write_file(args.metrics_out, text) or code
    if getattr(args, "spans_out", None):
        if args.spans_out.endswith(".ndjson"):
            text = spans_to_ndjson(obs.spans)
        else:
            text = spans_to_chrome_trace(obs.spans)
        code = _write_file(args.spans_out, text) or code
    if getattr(args, "self_profile", False) and obs.profile is not None:
        print(obs.profile.report(), file=sys.stderr)
    return code


def _print_alerts(deployment: Deployment) -> None:
    engine = getattr(deployment, "alert_engine", None)
    if engine is not None:
        print()
        print(engine.format())


def _cmd_simulate(args) -> int:
    deployment = _build_deployment(args)
    deployment.run_days(args.days)
    code = _write_observability(deployment, args)
    rows = []
    for station in deployment.stations:
        rows.append(
            (
                station.name,
                station.daily_runs,
                int(station.effective_state),
                round(station.bus.battery.soc, 3),
                round(deployment.server.received_bytes(station=station.name) / 1e6, 2),
                round(station.modem.cost_total, 2),
            )
        )
    print(format_table(
        ["Station", "Runs", "State", "SoC", "Delivered (MB)", "GPRS cost"],
        rows,
        title=f"{args.days:g} simulated days (seed {args.seed})",
    ))
    print(f"\nProbes alive: {deployment.surviving_probes()}/{len(deployment.probes)}; "
          f"readings collected: {deployment.base.readings_collected}")
    _print_alerts(deployment)
    return code


def _cmd_science(args) -> int:
    deployment = _build_deployment(args)
    deployment.run_days(args.days)
    code = _write_observability(deployment, args)
    archive = ScienceArchive(deployment.server)
    velocities = archive.daily_velocity()
    print(format_table(
        ["Day", "Ice velocity (m/day)"],
        [(d, round(v, 4)) for d, v in velocities],
        title="dGPS daily velocity (differential solutions)",
    ))
    print(f"\nDifferential solution fraction: {archive.differential_fraction():.0%}")
    slips = archive.stick_slip_days()
    print(f"Stick-slip candidate days: {slips if slips else 'none'}")
    series = archive.probe_series("conductivity_us")
    if series:
        rows = [
            (pid, len(values), round(values[-1][1], 2))
            for pid, values in sorted(series.items())
        ]
        print()
        print(format_table(["Probe", "Readings", "Latest conductivity (µS)"], rows,
                           title="Sub-glacial probes"))
    _print_alerts(deployment)
    return code


def _cmd_health(args) -> int:
    deployment = _build_deployment(args)
    deployment.run_days(args.days)
    code = _write_observability(deployment, args)
    archive = ScienceArchive(deployment.server)
    rows = []
    for station in ("base", "reference"):
        minima = archive.battery_daily_minima(station)
        rows.append(
            (
                station,
                round(minima[-1][1], 2) if minima else None,
                "yes" if archive.battery_declining(station) else "no",
                "YES" if archive.snow_burial_risk(station) else "no",
                "YES" if archive.enclosure_humidity_alert(station) else "no",
            )
        )
    print(format_table(
        ["Station", "Last daily-min V", "Battery declining", "Burial risk",
         "Humidity alert"],
        rows,
        title=f"Station health after {args.days:g} days",
    ))
    _print_alerts(deployment)
    return code


def _cmd_report(args) -> int:
    from repro.analysis.mission_report import mission_report

    deployment = _build_deployment(args)
    deployment.run_days(args.days)
    code = _write_observability(deployment, args)
    print(mission_report(deployment))
    return code


def _cmd_metrics(args) -> int:
    from repro.obs.export import metrics_to_json, metrics_to_prometheus

    deployment = _build_deployment(args)
    deployment.run_days(args.days)
    code = _write_observability(deployment, args)
    if args.format == "json":
        print(metrics_to_json(deployment.sim.obs.metrics), end="")
    else:
        print(metrics_to_prometheus(deployment.sim.obs.metrics), end="")
    return code


def _cmd_inject(args) -> int:
    """Run under a fault plan and verdict the recovery invariants.

    Without ``--faults`` the canonical chaos scenario runs (every fault
    kind over 45 days — the CI chaos-smoke configuration).  Exit code is
    the invariant verdict: 0 iff no violation.
    """
    from repro.faults import apply_fault_plan, canonical_chaos_plan

    deployment = _build_deployment(args, check_invariants=True)
    if deployment.fault_engine is None:
        deployment.fault_engine = apply_fault_plan(
            deployment, canonical_chaos_plan(), check_invariants=True)
    deployment.run_days(args.days)
    code = _write_observability(deployment, args)
    report = deployment.fault_engine.finish()
    text = report.format()
    conservation = deployment.sim.obs.finalise(deployment.sim)
    if conservation is not None:
        text += "\n" + conservation.format()
    print(text)
    _print_alerts(deployment)
    if args.report_out:
        code = _write_file(args.report_out, text + "\n") or code
    if not report.ok:
        return 1
    if conservation is not None and not conservation.ok:
        return 1
    return code


def _cmd_export(args) -> int:
    from repro.analysis.export import (
        archive_snapshot_json,
        series_to_csv,
        series_to_json,
    )

    deployment = _build_deployment(args)
    deployment.run_days(args.days)
    code = _write_observability(deployment, args)
    archive = ScienceArchive(deployment.server)
    if args.what == "snapshot":
        print(archive_snapshot_json(archive))
        return code
    if args.what == "velocity":
        series = [(float(d) * 86400.0, v) for d, v in archive.daily_velocity()]
        name = "velocity_m_per_day"
    else:
        series = archive.voltage_series("base")
        name = "volts"
    if args.format == "csv":
        print(series_to_csv(series, value_name=name), end="")
    else:
        print(series_to_json(series, value_name=name,
                             metadata={"seed": args.seed, "days": args.days}))
    return code


def _parse_param_value(raw: str):
    """``--param`` value literal: int, then float, then bool, else string."""
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def _cmd_sweep(args) -> int:
    import json

    from repro.fleet import SweepCache, SweepSpec, expand_grid, run_sweep, sweep_to_json

    params = {}
    for spec_arg in args.param:
        name, sep, values = spec_arg.partition("=")
        if not sep or not values:
            raise SystemExit(f"--param must look like FIELD=V1,V2,... (got {spec_arg!r})")
        params[name] = [_parse_param_value(v) for v in values.split(",")]
    # Fleet sugar: the flags expand to ordinary grid axes, so they cross
    # with --param and land in config digests like any other override.
    if args.stations is not None:
        if args.stations < 2:
            raise SystemExit("repro-sim: --stations must be >= 2")
        params.setdefault("extra_stations", [args.stations - 2])
    if args.servers:
        params.setdefault("servers",
                          [int(v) for v in args.servers.split(",") if v])
    if args.server_policy:
        params.setdefault(
            "server_policy",
            [p.strip() for p in args.server_policy.split(",") if p.strip()])
    seeds = [int(s) for s in args.seeds.split(",") if s]
    fault_plans = None
    if args.faults:
        fault_plans = []
        for path in args.faults:
            if path == "none":
                fault_plans.append(None)
            else:
                with open(path, "r", encoding="utf-8") as fh:
                    fault_plans.append(json.load(fh))
    alert_rules = None
    if args.alerts:
        from repro.obs.alerts import AlertEngine

        try:
            with open(args.alerts, "r", encoding="utf-8") as fh:
                alert_rules = json.load(fh)
            AlertEngine(alert_rules)  # validate once, before fan-out
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro-sim: cannot load alert rules: {exc}")
    spec = SweepSpec(grid=expand_grid(params), seeds=seeds, days=args.days,
                     fault_plans=fault_plans, alert_rules=alert_rules)
    if args.cache_gc:
        if args.no_cache:
            raise SystemExit("--cache-gc and --no-cache are contradictory")
        gc_root = args.cache_dir
        if args.backend == "shared-dir":
            import os

            from repro.fleet.executor import CACHE_DIR

            if not args.work_dir:
                raise SystemExit("--backend shared-dir requires --work-dir")
            gc_root = os.path.join(args.work_dir, CACHE_DIR)
        report = SweepCache(gc_root).gc()
        print(report.format(), file=sys.stderr)
        return 0
    cache = None
    if args.backend == "shared-dir":
        if not args.work_dir:
            raise SystemExit("--backend shared-dir requires --work-dir")
        if args.no_cache:
            raise SystemExit("--backend shared-dir needs the cache "
                             "(--no-cache is contradictory)")
    elif not args.no_cache:
        cache = SweepCache(args.cache_dir)
    progress = None
    if args.progress:
        def progress(line: str) -> None:
            print(line, file=sys.stderr)
    result = run_sweep(spec, jobs=args.jobs, cache=cache,
                       backend=args.backend, chunk_size=args.chunk_size,
                       work_dir=args.work_dir, progress=progress,
                       stale_claim_s=args.stale_claim_s)
    text = sweep_to_json(result)
    code = 0
    if args.output:
        code = _write_file(args.output, text) or code
    else:
        print(text)
    if args.rollup_out and result.rollup is not None:
        code = _write_file(args.rollup_out, result.rollup.to_json()) or code
    print(
        f"sweep: {len(result.runs)} runs "
        f"({result.cache_hits} cached, {result.cache_misses} computed, "
        f"jobs={args.jobs})",
        file=sys.stderr,
    )
    return code


def _cmd_rollup(args) -> int:
    """Merge rollup shards; print (or write) the campaign aggregate."""
    import json

    from repro.obs.rollup import merge_rollups

    docs = []
    for path in args.shards:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                docs.append(json.load(fh))
        except (OSError, ValueError) as exc:
            print(f"repro-sim: cannot read rollup shard {path}: {exc}",
                  file=sys.stderr)
            return 2
    try:
        merged = merge_rollups(docs)
    except ValueError as exc:
        print(f"repro-sim: {exc}", file=sys.stderr)
        return 1
    if args.table:
        from repro.analysis.campaign_table import campaign_table

        text = campaign_table(merged)
    else:
        text = json.dumps(merged, indent=2, sort_keys=True) + "\n"
    if args.output:
        return _write_file(args.output, text)
    print(text, end="")
    return 0


def _cmd_races(args) -> int:
    """Two-pronged event-ordering race check.

    Static prong: the three tie-sensitivity rules over ``--paths``.
    Dynamic prong: the mission replayed once per ``--policies`` entry,
    normalized trace digests diffed against the first (baseline) policy,
    divergences bisected to the offending schedule callsites.  Exit 0 iff
    both prongs are clean.
    """
    import json

    from repro.lint.engine import lint_paths
    from repro.lint.races import RACE_RULE_IDS
    from repro.lint.rules import default_rules
    from repro.lint.tie_replay import check_tie_robustness

    static_findings = lint_paths(
        args.paths, rules=default_rules(select=list(RACE_RULE_IDS)))
    fault_plan = _load_fault_plan(args)
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    report = check_tie_robustness(seed=args.seed, days=args.days,
                                  policies=policies, fault_plan=fault_plan,
                                  overrides=_fleet_overrides(args) or None)
    if args.format == "json":
        text = json.dumps({
            "static": [finding.to_dict() for finding in static_findings],
            "replay": report.to_dict(),
        }, indent=2)
    else:
        lines = [f"static race rules: {len(static_findings)} finding(s) "
                 f"over {' '.join(args.paths)}"]
        lines.extend("  " + finding.render() for finding in static_findings)
        lines.append(report.format())
        text = "\n".join(lines)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0 if not static_findings and report.robust else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # Forwarded before argparse: REMAINDER cannot capture a leading
        # option (e.g. ``repro-sim lint --help``), bpo-17050.
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "science": _cmd_science,
        "health": _cmd_health,
        "report": _cmd_report,
        "metrics": _cmd_metrics,
        "export": _cmd_export,
        "inject": _cmd_inject,
        "sweep": _cmd_sweep,
        "rollup": _cmd_rollup,
        "races": _cmd_races,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
