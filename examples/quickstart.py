#!/usr/bin/env python3
"""Quickstart: run a week of the Glacsweb Iceland deployment.

Builds the full two-station deployment (on-ice base station with seven
sub-glacial probes, café reference station, Southampton server), runs seven
simulated days, and prints what the system did: power states, data volumes,
probe collection, and the battery-voltage trace.

Run with::

    python examples/quickstart.py
"""

from repro.analysis.ascii_plot import ascii_series
from repro.analysis.report import format_table
from repro.core import Deployment, DeploymentConfig
from repro.sim.simtime import DAY


def main() -> None:
    deployment = Deployment(DeploymentConfig(seed=1))
    print("Simulating 7 days on Vatnajökull (epoch: 1 Sep 2008)...")
    deployment.run_days(7)

    base, reference = deployment.base, deployment.reference
    server = deployment.server

    print()
    print(
        format_table(
            ["Station", "Daily runs", "Power state", "Battery SoC",
             "Gumstix on-time (min/day)", "GPRS cost"],
            [
                (
                    station.name,
                    station.daily_runs,
                    int(station.effective_state),
                    round(station.bus.battery.soc, 2),
                    round(station.gumstix.total_on_time_s / 60.0 / 7.0, 1),
                    round(station.modem.cost_total, 2),
                )
                for station in (base, reference)
            ],
            title="Station summary after one week",
        )
    )

    print()
    print(
        format_table(
            ["Kind", "Base (KB)", "Reference (KB)"],
            [
                (
                    kind,
                    round(server.received_bytes(station="base", kind=kind) / 1000.0, 1),
                    round(server.received_bytes(station="reference", kind=kind) / 1000.0, 1),
                )
                for kind in ("gps", "probes", "sensors", "logs")
            ],
            title="Data received in Southampton",
        )
    )

    print()
    print(f"Probe readings collected by the base station: {base.readings_collected}")
    print(f"Probes still alive: {deployment.surviving_probes()} / {len(deployment.probes)}")
    print(f"dGPS readings taken: base={base.gps.readings_taken}, "
          f"reference={reference.gps.readings_taken}")

    print()
    volts = deployment.voltage_series("base")
    print(ascii_series(volts, width=72, height=10,
                       label="Base-station battery voltage (V), 7 days"))

    print()
    states = deployment.state_series("base")
    print("Power states applied:",
          ", ".join(f"day {int(t // DAY)}: state {s}" for t, s in states))


if __name__ == "__main__":
    main()
