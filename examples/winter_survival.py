#!/usr/bin/env python3
"""Winter survival: adaptive power management through starvation.

The scenario the paper's design exists for: charging collapses (buried
solar panel, iced turbine), and the station must descend the Table II
power states to survive until spring — then climb back and, if it does go
flat, recover its schedule and clock automatically (Section IV).

This example compresses the winter with a small battery so the whole arc
fits in a ~60-day simulation, then prints the descent, the brown-out, the
recovery, and the spring comeback.

Run with::

    python examples/winter_survival.py
"""

from repro.analysis.report import format_table
from repro.core import Deployment, DeploymentConfig
from repro.core.config import StationConfig
from repro.energy.battery import BatteryConfig
from repro.sim.simtime import DAY


def main() -> None:
    base = StationConfig(
        solar_w=0.6,  # panel mostly buried
        wind_w=0.0,   # turbine iced
        initial_soc=0.9,
        battery=BatteryConfig(capacity_ah=4.0),  # compressed timescale
    )
    deployment = Deployment(DeploymentConfig(seed=5, base=base))

    print("Phase 1 — deep winter: charging collapsed, watching the descent...")
    deployment.run_days(35)

    descent = deployment.state_series("base")
    print(
        format_table(
            ["Day", "Applied power state"],
            [(int(t // DAY), s) for t, s in descent],
            title="Power-state descent",
        )
    )
    trace = deployment.sim.trace
    brownouts = trace.select(source="base.power", kind="brownout")
    if brownouts:
        print(f"\nBrown-out on day {brownouts[0].time / DAY:.1f}: "
              "RAM schedule lost, RTC reset to 1/1/1970.")
    else:
        print("\nThe station survived winter without a brown-out "
              "(the adaptive policy held it in a low state).")

    print("\nPhase 2 — spring: the sun returns (panel clears)...")
    for source in deployment.base.bus.sources:
        if source.name.endswith("solar"):
            source.rated_w = 12.0
    deployment.run_days(25)

    recoveries = trace.select(source="base.power", kind="recovery")
    clock_fixes = trace.select(source="base", kind="clock_recovered")
    untrusted = trace.select(source="base", kind="rtc_untrusted")
    rows = []
    if brownouts:
        rows.append(("brown-out", round(brownouts[0].time / DAY, 1)))
    if recoveries:
        rows.append(("charge recovered", round(recoveries[0].time / DAY, 1)))
    if untrusted:
        rows.append(("RTC distrust detected", round(untrusted[0].time / DAY, 1)))
    if clock_fixes:
        rows.append(("clock restored from GPS", round(clock_fixes[0].time / DAY, 1)))
    if rows:
        print(format_table(["Event", "Day"], rows, title="Recovery timeline"))

    final_states = [s for _t, s in deployment.state_series("base")]
    print(f"\nFinal power state: {final_states[-1]}")
    print(f"RTC error now: {deployment.base.msp.rtc.error_seconds():.3f} s")
    print(f"Daily runs completed: {deployment.base.daily_runs}")
    print(f"Data delivered to Southampton: "
          f"{deployment.server.received_bytes(station='base') / 1e6:.2f} MB")


if __name__ == "__main__":
    main()
