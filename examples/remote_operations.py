#!/usr/bin/env python3
"""Remote operations: overrides, special commands, and code updates.

Everything the Southampton end can do to a deployed station it will not
physically see for months (Sections III and VI):

1. hold both stations in a lower power state with a manual override;
2. run a one-shot "special" command and wait the famous 24 hours for its
   output to ride home in the daily log upload;
3. push a checksum-verified code update — and watch a corrupted transfer
   get rejected while the computed MD5 appears in Southampton immediately.

Run with::

    python examples/remote_operations.py
"""

from repro.analysis.report import format_table
from repro.core import Deployment, DeploymentConfig
from repro.server.deployment import CodeRelease, verify_and_install
from repro.sim.simtime import DAY, HOUR


def main() -> None:
    deployment = Deployment(DeploymentConfig(seed=14))
    server = deployment.server
    sim = deployment.sim

    # --- 1. manual override -------------------------------------------------
    print("Day 0: operator sets a manual override of state 2.")
    deployment.set_manual_override(2)
    deployment.run_days(2)
    states = deployment.state_series("base")
    print(format_table(
        ["Day", "Base applied state", "Base local (battery) state"],
        [(int(t // DAY), s, int(deployment.base.local_state)) for t, s in states],
    ))
    print("Releasing the override.\n")
    deployment.set_manual_override(None)

    # --- 2. special command -------------------------------------------------
    print("Day 2: staging a special command for the base station...")
    staged_at = sim.now
    server.stage_special("base", lambda: "uptime: 14 days / disk 61% used")
    deployment.run_days(3)
    executed = deployment.sim.trace.select(source="base", kind="special_executed")[0]
    output = next(
        u for u in server.uploads
        if u.station == "base" and u.kind == "logs" and u.payload["special_outputs"]
    )
    print(f"  executed after  {(executed.time - staged_at) / HOUR:5.1f} h")
    print(f"  output arrived  {(output.time - staged_at) / HOUR:5.1f} h after staging")
    print(f"  output text:    {output.payload['special_outputs'][0]['output']!r}")
    print("  (the Section VI lesson: results take ~a day; acting on them ~two)\n")

    # --- 3. code update -----------------------------------------------------
    print("Publishing basestation.py v2 and driving an update session...")
    release = CodeRelease("basestation.py", version=2,
                          content="#!/usr/bin/env python\n# v2\n", size_bytes=80_000)
    server.publish_release(release)
    deployment.base.installed_versions["basestation.py"] = 1

    def update(sim, corruption):
        modem = deployment.base.modem
        yield sim.process(modem.connect())
        outcome = yield sim.process(
            verify_and_install(sim, modem, server, "base", "basestation.py",
                               deployment.base.installed_versions,
                               corruption_probability=corruption)
        )
        modem.disconnect()
        return outcome

    proc = sim.process(update(sim, corruption=1.0))  # first try: corrupted
    deployment.run_days(0.1)
    print(f"  attempt 1 (corrupted in transit): {proc.value.value}; "
          f"installed version stays {deployment.base.installed_versions['basestation.py']}")
    report = server.last_checksum_report("basestation.py")
    print(f"  Southampton saw the bad MD5 immediately: {report[3][:12]}... "
          f"(expected {release.md5[:12]}...)")

    proc = sim.process(update(sim, corruption=0.0))  # retry: clean
    deployment.run_days(0.1)
    print(f"  attempt 2 (clean): {proc.value.value}; "
          f"installed version now {deployment.base.installed_versions['basestation.py']}")
    report = server.last_checksum_report("basestation.py")
    print(f"  reported MD5 matches: {report[3] == release.md5}")


if __name__ == "__main__":
    main()
