#!/usr/bin/env python3
"""A dGPS measurement campaign: ice velocity from differential GPS.

The scientific payload of the deployment: simultaneous recordings at the
moving base station and the fixed reference station, differenced to
centimetre-level positions, revealing the glacier's velocity — including
its summer speed-up and stick-slip events (refs [4, 5] of the paper).

This example drives the receivers directly (the station machinery handles
scheduling in the full deployment) to show the measurement chain and why
the reference station matters.

Run with::

    python examples/dgps_campaign.py
"""

import datetime as dt

from repro.analysis.ascii_plot import ascii_series
from repro.analysis.report import format_table
from repro.energy.battery import Battery
from repro.energy.bus import PowerBus
from repro.environment.glacier import GlacierModel
from repro.gps.dgps import differential_solve, raw_solve, velocity_series
from repro.gps.receiver import GpsReceiver
from repro.sim import Simulation
from repro.sim.simtime import DAY, from_datetime


def main() -> None:
    sim = Simulation(seed=3)
    glacier = GlacierModel(seed=3)
    base_bus = PowerBus(sim, Battery(soc=0.95), name="base.power")
    ref_bus = PowerBus(sim, Battery(soc=0.95), name="ref.power")
    base_gps = GpsReceiver(sim, base_bus, "base.gps",
                           position_fn=glacier.surface_position_m, seed=1)
    ref_gps = GpsReceiver(sim, ref_bus, "ref.gps", position_fn=lambda t: 0.0, seed=2)

    # Jump to the melt season, when the interesting motion happens.
    start = from_datetime(dt.datetime(2009, 6, 1, tzinfo=dt.timezone.utc))
    sim.run(until=start)

    days = 21
    print(f"Recording {days} days of daily simultaneous dGPS readings (June 2009)...")
    solutions, raw_solutions = [], []

    def campaign(sim):
        for _day in range(days):
            base_proc = sim.process(base_gps.take_reading(307.7))
            ref_proc = sim.process(ref_gps.take_reading(307.7))
            yield sim.all_of([base_proc, ref_proc])
            solutions.append(differential_solve(base_proc.value, ref_proc.value))
            raw_solutions.append(raw_solve(base_proc.value))
            yield sim.timeout(DAY - 307.7)

    sim.process(campaign(sim))
    sim.run(until=start + (days + 1) * DAY)

    # Accuracy: differential vs raw against ground truth.
    errors = []
    for diff, raw in zip(solutions, raw_solutions):
        truth = glacier.surface_position_m(diff.time)
        errors.append((abs(diff.position_m - truth), abs(raw.position_m - truth)))
    mean_diff = sum(e[0] for e in errors) / len(errors)
    mean_raw = sum(e[1] for e in errors) / len(errors)
    print(format_table(
        ["Solution", "Mean position error (m)"],
        [("differential (both stations)", round(mean_diff, 4)),
         ("raw (base station alone)", round(mean_raw, 3))],
        title="Why the reference station exists",
    ))

    velocities = velocity_series(solutions)
    mean_v = sum(v for _t, v in velocities) / len(velocities)
    fast_days = [round(v, 3) for _t, v in velocities if v > mean_v * 1.3]
    print(f"\nMean ice velocity: {mean_v:.3f} m/day")
    if fast_days:
        print(f"Stick-slip candidates (>{mean_v * 1.3:.3f} m/day): {fast_days}")
    print()
    print(ascii_series(velocities, width=66, height=9,
                       label="Daily ice velocity (m/day)"))

    # The power price of the campaign (Table I arithmetic made concrete).
    base_bus.sync()
    gps_wh = base_bus.loads.get("base.gps").energy_j / 3600.0
    print(f"\nEnergy spent by the base dGPS over {days} days: {gps_wh:.1f} Wh "
          f"({gps_wh / days:.2f} Wh/day — the state-2 single-reading budget)")


if __name__ == "__main__":
    main()
