#!/usr/bin/env python3
"""Mission control: the Southampton end of a troubled month.

Runs a deployment in which things go wrong — a starving base battery,
a GPRS data budget, a code release — with the automated operations console
watching.  Prints the alerts it raised, the override it applied, and the
final mission report.

Run with::

    python examples/mission_control.py
"""

from repro.analysis.mission_report import mission_report
from repro.analysis.report import format_table
from repro.core import Deployment, DeploymentConfig
from repro.core.config import StationConfig
from repro.energy.battery import BatteryConfig
from repro.server.deployment import CodeRelease
from repro.server.operations import OperationsConsole
from repro.sim.simtime import DAY


def main() -> None:
    # A base station heading for trouble: weak charging, small battery.
    base = StationConfig(
        solar_w=1.0, wind_w=0.0, initial_soc=0.9,
        battery=BatteryConfig(capacity_ah=6.0),
    )
    deployment = Deployment(DeploymentConfig(seed=23, base=base))
    console = OperationsConsole(
        deployment.sim, deployment.server,
        auto_override=True,
        monthly_data_budget_mb=40.0,
    )

    print("Week 1: normal operations under the console's eye...")
    deployment.run_days(7)

    print("Publishing basestation.py v3 mid-deployment...")
    console.push_release(CodeRelease("basestation.py", 3, "v3 control", 60_000))
    deployment.run_days(14)

    print("\nAlerts raised over three weeks:")
    rows = [
        (round(a.time / DAY, 1), a.station, a.kind, a.detail[:48])
        for a in console.alerts
    ]
    if rows:
        print(format_table(["Day", "Station", "Kind", "Detail"], rows[:15]))
        if len(rows) > 15:
            print(f"  ... and {len(rows) - 15} more")
    else:
        print("  none")

    if console.override_actions:
        print("\nAutomatic override actions:")
        for time, state in console.override_actions[:8]:
            action = f"held system at state {state}" if state is not None else "released hold"
            print(f"  day {time / DAY:5.1f}: {action}")

    print(f"\nRelease status: basestation.py -> {console.release_status('basestation.py')}")
    print(f"Alert summary: {console.alerts_by_kind()}")

    print("\n" + "=" * 72)
    print(mission_report(deployment))


if __name__ == "__main__":
    main()
