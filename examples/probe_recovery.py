#!/usr/bin/env python3
"""The Section V story: 3000 readings across the summer's weakest link.

A base station damaged by deep snow comes back online after two months.
One probe has ~3000 buffered readings; the summer melt has made the probe
radio lossy (~13% packet loss).  Watch the NACK-free protocol stream the
task, record the ~400 missed packets, and recover them over subsequent
days — because the task is never marked complete in the probe until the
base holds everything.

Run with::

    python examples/probe_recovery.py
"""

from repro.analysis.report import format_table
from repro.comms.probe_radio import ProbeRadioLink
from repro.environment.glacier import GlacierModel
from repro.probes.probe import Probe
from repro.protocol.bulk import BulkFetcher
from repro.protocol.stopwait import StopWaitFetcher
from repro.sensors.probe_sensors import make_probe_sensor_suite
from repro.sim import Simulation
from repro.sim.simtime import DAY, HOUR


def build_backlogged_probe(sim, seed):
    glacier = GlacierModel(seed=seed)
    probe = Probe(
        sim, probe_id=25,
        sensors=make_probe_sensor_suite(glacier, 25),
        sampling_interval_s=30 * 60.0,
        lifetime_days=10_000.0,
    )
    print("Base station offline: probe 25 buffering for ~62 days...")
    sim.run_days(62.5)
    print(f"Buffered readings: {probe.buffered_count}")
    return probe


def main() -> None:
    sim = Simulation(seed=9)
    probe = build_backlogged_probe(sim, seed=9)
    summer_loss = 400.0 / 3000.0
    link = ProbeRadioLink(sim, loss_fn=lambda t: summer_loss, name="probe25.link")
    fetcher = BulkFetcher(sim)

    print(f"\nSummer link packet loss: {summer_loss:.1%}")
    print("Daily communication windows (NACK-free protocol):\n")
    rows = []
    bulk_airtime = 0
    for day in range(1, 11):
        proc = sim.process(fetcher.fetch(probe, link, budget_s=0.4 * 2 * HOUR))
        sim.run(until=sim.now + 4 * HOUR)
        result = proc.value
        bulk_airtime += result.airtime_bytes
        rows.append((day, result.strategy.value, result.received_new,
                     result.missing_after, result.complete))
        sim.run(until=sim.now + DAY - 4 * HOUR)
        if result.complete:
            break
    print(format_table(
        ["Day", "Strategy", "New readings", "Still missing", "Task complete"],
        rows,
    ))
    print(f"\nTask completed after {len(rows)} day(s); "
          f"probe marked complete: {probe.tasks_completed == 1}")
    print(f"Link totals: {link.packets_sent} packets sent, "
          f"{link.packets_lost} lost ({link.observed_loss_rate:.1%})")

    # The counterfactual: the classic ACK-per-packet protocol.
    print("\nFor comparison, the stop-and-wait baseline on the same task:")
    sim2 = Simulation(seed=9)
    probe2 = build_backlogged_probe(sim2, seed=9)
    link2 = ProbeRadioLink(sim2, loss_fn=lambda t: summer_loss, name="probe25.sw")
    stopwait = StopWaitFetcher(sim2, retries_per_reading=6)
    proc = sim2.process(stopwait.fetch(probe2, link2, budget_s=0.4 * 2 * HOUR))
    sim2.run(until=sim2.now + 4 * HOUR)
    sw = proc.value
    print(f"  stop-and-wait: delivered {sw.delivered}/{sw.total}, "
          f"airtime {sw.airtime_bytes:,} bytes (every reading ACKed)")
    print(f"  NACK-free:     delivered 3000/3000 over {len(rows)} day(s), "
          f"airtime {bulk_airtime:,} bytes "
          f"({sw.airtime_bytes / bulk_airtime:.2f}x less than stop-and-wait)")


if __name__ == "__main__":
    main()
