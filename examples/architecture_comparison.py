#!/usr/bin/env python3
"""Architecture shoot-out: the Norway radio relay vs dual GPRS.

Section II of the paper weighs the legacy design — base station data
relayed over a 466 MHz PPP link through the reference station — against
giving each station its own GPRS modem.  This example runs *both*
architectures for a week and prints the numbers behind the decision:
energy per delivered megabyte, failure coupling, and the radio link's
capacity problem.

Run with::

    python examples/architecture_comparison.py
"""

from repro.analysis.report import format_table
from repro.core import Deployment, DeploymentConfig
from repro.core.legacy import RadioRelayDeployment, RelayConfig

DAYS = 7
DAILY_BYTES = 1_200_000  # a volume the 2000 bps radio can actually move


def main() -> None:
    print(f"Running both architectures for {DAYS} days...\n")

    relay = RadioRelayDeployment(RelayConfig(
        seed=7, base_daily_bytes=DAILY_BYTES, reference_daily_bytes=DAILY_BYTES,
        uplink="gprs",
    ))
    relay.run_days(DAYS)

    dual = Deployment(DeploymentConfig(seed=7))
    dual.run_days(DAYS)

    dual_comms_wh = 0.0
    for station in dual.stations:
        station.bus.sync()
        dual_comms_wh += station.bus.loads.get(f"{station.name}.gprs").energy_j / 3600.0
    relay_wh = relay.comms_energy_wh()
    relay_mb = relay.server.received_bytes(kind="relay") / 1e6
    dual_mb = dual.server.received_bytes() / 1e6

    print(format_table(
        ["Architecture", "Comms energy (Wh)", "Delivered (MB)", "Wh/MB"],
        [
            ("radio relay (Norway design)", round(relay_wh, 1), round(relay_mb, 1),
             round(relay_wh / max(relay_mb, 0.01), 2)),
            ("dual GPRS (final design)", round(dual_comms_wh, 1), round(dual_mb, 1),
             round(dual_comms_wh / max(dual_mb, 0.01), 2)),
        ],
        title=f"One week of communications",
    ))

    print("\nThe capacity problem: a state-3 day is ~2.2 MB;")
    airtime_h = relay.base.radio.transfer_time_s(2_200_000) / 3600.0
    print(f"  at 2000 bps that needs {airtime_h:.1f} h of airtime — the whole "
          "2-hour window cannot hold it.")

    print("\nFailure coupling: kill the reference station in both designs...")
    relay.fail_reference()
    relay_before = relay.delivered_bytes()
    relay.run_days(3)
    dual.reference.bus.battery.soc = 0.0
    dual.reference.bus.sync()
    dual_before = dual.server.received_bytes(station="base")
    dual.run_days(3)
    print(format_table(
        ["Architecture", "Base data before (MB)", "3 days later (MB)"],
        [
            ("radio relay", round(relay_before / 1e6, 2),
             round(relay.delivered_bytes() / 1e6, 2)),
            ("dual GPRS", round(dual_before / 1e6, 2),
             round(dual.server.received_bytes(station='base') / 1e6, 2)),
        ],
    ))
    print("\nThe relay base went silent with the reference; the dual-GPRS base "
          "kept reporting.")
    print(f"PPP ambiguity cost this week: {relay.base.reconnect_hold_s_total / 60:.0f} "
          "minutes of radio held powered after unexplained drops.")


if __name__ == "__main__":
    main()
