"""Per-rule fixtures: each rule fires on a minimal violating snippet and
stays quiet on the compliant rewrite."""

import textwrap

from repro.lint.engine import lint_source
from repro.lint.findings import Severity
from repro.lint.rules import RULE_REGISTRY, default_rules


def findings_for(snippet, rule=None, path="src/repro/example.py"):
    rules = default_rules(select=[rule] if rule else None)
    return lint_source(textwrap.dedent(snippet), path=path, rules=rules)


def rule_ids(findings):
    return [f.rule for f in findings]


class TestWallClock:
    def test_fires_on_datetime_now(self):
        found = findings_for(
            """
            import datetime
            def stamp():
                return datetime.datetime.now()
            """,
            rule="wall-clock",
        )
        assert rule_ids(found) == ["wall-clock"]
        assert found[0].line == 4

    def test_fires_on_time_time_and_today(self):
        found = findings_for(
            """
            import time
            from datetime import date
            t = time.time()
            d = date.today()
            """,
            rule="wall-clock",
        )
        assert rule_ids(found) == ["wall-clock", "wall-clock"]

    def test_quiet_on_simclock(self):
        found = findings_for(
            """
            def stamp(sim):
                return sim.clock.utcnow()

            def now(sim):
                return sim.now
            """,
            rule="wall-clock",
        )
        assert found == []


class TestRngDiscipline:
    def test_fires_on_default_rng(self):
        found = findings_for(
            """
            import numpy as np
            rng = np.random.default_rng(42)
            """,
            rule="rng-discipline",
        )
        assert rule_ids(found) == ["rng-discipline"]

    def test_fires_on_stdlib_random_and_np_seed(self):
        found = findings_for(
            """
            import random
            import numpy as np
            x = random.random()
            random.shuffle([1, 2])
            np.random.seed(0)
            """,
            rule="rng-discipline",
        )
        assert rule_ids(found) == ["rng-discipline"] * 3

    def test_quiet_on_registry_stream(self):
        found = findings_for(
            """
            def draw(sim):
                return sim.rng.stream("weather").normal()
            """,
            rule="rng-discipline",
        )
        assert found == []

    def test_rng_module_itself_exempt(self):
        found = findings_for(
            """
            import numpy as np
            rng = np.random.default_rng(7)
            """,
            rule="rng-discipline",
            path="src/repro/sim/rng.py",
        )
        assert found == []


class TestFloatEquality:
    def test_fires_on_voltage_compare(self):
        found = findings_for(
            """
            def check(battery):
                return battery.voltage == 12.5
            """,
            rule="float-equality",
        )
        assert rule_ids(found) == ["float-equality"]

    def test_fires_on_float_literal_noteq(self):
        found = findings_for("ok = value != 0.0\n", rule="float-equality")
        assert rule_ids(found) == ["float-equality"]

    def test_quiet_on_int_and_string_compares(self):
        found = findings_for(
            """
            def route(args, count):
                if args.what == "snapshot":
                    return 1
                return count == 0
            """,
            rule="float-equality",
        )
        assert found == []

    def test_quiet_on_threshold_compare(self):
        found = findings_for("low = battery.voltage < 11.5\n", rule="float-equality")
        assert found == []


class TestMutableDefault:
    def test_fires_on_list_default(self):
        found = findings_for(
            """
            def collect(readings=[]):
                return readings
            """,
            rule="mutable-default",
        )
        assert rule_ids(found) == ["mutable-default"]

    def test_fires_on_dict_call_and_kwonly(self):
        found = findings_for(
            """
            def a(x=dict()):
                return x

            def b(*, y={}):
                return y
            """,
            rule="mutable-default",
        )
        assert rule_ids(found) == ["mutable-default"] * 2

    def test_quiet_on_none_sentinel(self):
        found = findings_for(
            """
            def collect(readings=None, label="x", n=3):
                if readings is None:
                    readings = []
                return readings
            """,
            rule="mutable-default",
        )
        assert found == []


class TestSilentExcept:
    def test_fires_on_bare_except(self):
        found = findings_for(
            """
            def run(proc):
                try:
                    proc.step()
                except:
                    pass
            """,
            rule="silent-except",
        )
        assert rule_ids(found) == ["silent-except"]

    def test_fires_on_exception_pass(self):
        found = findings_for(
            """
            def run(proc):
                try:
                    proc.step()
                except Exception:
                    pass
            """,
            rule="silent-except",
        )
        assert rule_ids(found) == ["silent-except"]

    def test_quiet_on_narrow_handler(self):
        found = findings_for(
            """
            def run(proc, trace):
                try:
                    proc.step()
                except ValueError as exc:
                    trace.emit("kernel", "error", message=str(exc))
                except Exception as exc:
                    trace.emit("kernel", "error", message=str(exc))
                    raise
            """,
            rule="silent-except",
        )
        assert found == []


class TestYieldDiscipline:
    def test_fires_on_literal_yield(self):
        found = findings_for(
            """
            def worker(sim):
                yield 5
            """,
            rule="yield-discipline",
        )
        assert rule_ids(found) == ["yield-discipline"]

    def test_fires_on_tuple_yield(self):
        found = findings_for(
            """
            def worker(sim):
                yield (1, 2)
            """,
            rule="yield-discipline",
        )
        assert rule_ids(found) == ["yield-discipline"]

    def test_quiet_on_event_yields(self):
        found = findings_for(
            """
            def worker(sim):
                yield sim.timeout(10.0)
                value = yield from sim.process(child(sim))
                yield sim.event("done")
                return value

            def marker():
                yield  # bare yield: the make-this-a-generator idiom
            """,
            rule="yield-discipline",
        )
        assert found == []


class TestNoPrint:
    def test_fires_on_library_print(self):
        found = findings_for(
            """
            def drain(queue):
                print("draining", len(queue))
            """,
            rule="no-print",
            path="src/repro/comms/transfer.py",
        )
        assert rule_ids(found) == ["no-print"]

    def test_quiet_in_cli_modules(self):
        snippet = """
            def main():
                print("summary")
            """
        for path in ("src/repro/cli.py", "src/repro/lint/cli.py"):
            assert findings_for(snippet, rule="no-print", path=path) == []

    def test_quiet_in_analysis_package(self):
        found = findings_for(
            """
            def render(rows):
                print(rows)
            """,
            rule="no-print",
            path="src/repro/analysis/report.py",
        )
        assert found == []

    def test_quiet_on_shadowed_or_method_print(self):
        found = findings_for(
            """
            def render(printer):
                printer.print("fine: not the builtin")
            """,
            rule="no-print",
        )
        assert found == []

    def test_inline_suppression(self):
        found = findings_for(
            """
            def main():
                print("cli in disguise")  # repro-lint: disable=no-print
            """,
            rule="no-print",
        )
        assert found == []


class TestNoHotPathAlloc:
    KERNEL_PATH = "src/repro/sim/kernel.py"

    def test_fires_on_list_literal_in_run(self):
        found = findings_for(
            """
            class Simulation:
                def run(self, until=None):
                    batch = []
                    batch.append(1)
            """,
            rule="no-hot-path-alloc",
            path=self.KERNEL_PATH,
        )
        assert rule_ids(found) == ["no-hot-path-alloc"]

    def test_fires_on_lambda_and_dict_in_step(self):
        found = findings_for(
            """
            class Simulation:
                def step(self):
                    hook = lambda evt: None
                    extra = {"when": 0.0}
            """,
            rule="no-hot-path-alloc",
            path=self.KERNEL_PATH,
        )
        assert sorted(rule_ids(found)) == ["no-hot-path-alloc", "no-hot-path-alloc"]

    def test_fires_on_comprehension_in_schedule(self):
        found = findings_for(
            """
            class Simulation:
                def schedule(self, event, delay=0.0):
                    pending = [e for e in self._queue]
            """,
            rule="no-hot-path-alloc",
            path=self.KERNEL_PATH,
        )
        assert rule_ids(found) == ["no-hot-path-alloc"]

    def test_quiet_outside_hot_functions(self):
        found = findings_for(
            """
            class Simulation:
                def schedule_many(self, delays):
                    batch = list(delays)
                    return [d for d in batch]

                def call_at(self, when, func):
                    return lambda: func()
            """,
            rule="no-hot-path-alloc",
            path=self.KERNEL_PATH,
        )
        assert found == []

    def test_quiet_outside_kernel_module(self):
        found = findings_for(
            """
            def run():
                return [1, 2, 3]
            """,
            rule="no-hot-path-alloc",
            path="src/repro/fleet/runner.py",
        )
        assert found == []

    def test_inline_suppression(self):
        found = findings_for(
            """
            class Simulation:
                def step(self):
                    debug = []  # repro-lint: disable=no-hot-path-alloc
            """,
            rule="no-hot-path-alloc",
            path=self.KERNEL_PATH,
        )
        assert found == []

    def test_shipped_kernel_is_clean(self):
        import pathlib

        source = pathlib.Path("src/repro/sim/kernel.py").read_text(encoding="utf-8")
        found = findings_for(source, rule="no-hot-path-alloc",
                             path="src/repro/sim/kernel.py")
        assert found == []


class TestEnergyConservation:
    def test_fires_on_direct_battery_apply(self):
        found = findings_for(
            """
            def tick(battery, dt):
                battery.apply(dt, load_w=1.0, source_w=0.0)
            """,
            rule="energy-conservation",
        )
        assert rule_ids(found) == ["energy-conservation"]

    def test_fires_on_attribute_battery_drain(self):
        found = findings_for(
            """
            class Heater:
                def pulse(self):
                    self.battery.drain_j(250.0)
            """,
            rule="energy-conservation",
        )
        assert rule_ids(found) == ["energy-conservation"]

    def test_quiet_on_bus_drain(self):
        found = findings_for(
            """
            def fire(bus):
                bus.drain_j(250.0, label="squib")
            """,
            rule="energy-conservation",
        )
        assert found == []

    def test_quiet_on_unrelated_apply(self):
        found = findings_for(
            """
            def patch(frame, delta):
                frame.apply(delta)
            """,
            rule="energy-conservation",
        )
        assert found == []

    def test_bus_and_battery_modules_exempt(self):
        snippet = """
            def sync(self, dt):
                self.battery.apply(dt, load_w=0.0, source_w=0.0)
            """
        for path in ("src/repro/energy/bus.py", "src/repro/energy/battery.py"):
            assert findings_for(snippet, rule="energy-conservation", path=path) == []

    def test_inline_suppression(self):
        found = findings_for(
            """
            def calibrate(battery):
                battery.drain_j(1.0)  # repro-lint: disable=energy-conservation
            """,
            rule="energy-conservation",
        )
        assert found == []


class TestNoPollingLoop:
    def test_fires_on_chunked_bernoulli_loop(self):
        found = findings_for(
            """
            def send(self, total_s):
                remaining = total_s
                while remaining > 0:
                    yield self.sim.timeout(self.chunk_s)
                    remaining -= self.chunk_s
                    if self._drop_rng.random() < 0.01:
                        raise RuntimeError("drop")
            """,
            rule="no-polling-loop",
        )
        assert rule_ids(found) == ["no-polling-loop"]
        assert found[0].line == 4

    def test_fires_on_constant_delay_with_named_rng(self):
        found = findings_for(
            """
            def watch(sim, rng):
                while True:
                    yield sim.timeout(30.0)
                    value = rng.uniform(0.0, 1.0)
            """,
            rule="no-polling-loop",
        )
        assert rule_ids(found) == ["no-polling-loop"]

    def test_quiet_without_rng_draw(self):
        found = findings_for(
            """
            def sampler(self):
                while True:
                    yield self.sim.timeout(self.sample_interval_s)
                    self.log.append(self.bus.terminal_voltage())
            """,
            rule="no-polling-loop",
        )
        assert found == []

    def test_quiet_on_recomputed_delay(self):
        # Variable-delay loops (backoff, adaptive cadence) are not polling.
        found = findings_for(
            """
            def backoff(sim, rng):
                delay = 1.0
                while True:
                    yield sim.timeout(delay * 2.0)
                    delay = rng.uniform(1.0, 4.0)
            """,
            rule="no-polling-loop",
        )
        assert found == []

    def test_quiet_on_rng_draw_outside_loop(self):
        found = findings_for(
            """
            def once(sim, rng):
                delay = rng.exponential(60.0)
                while True:
                    yield sim.timeout(delay)
            """,
            rule="no-polling-loop",
        )
        assert found == []

    def test_oracle_modules_exempt(self):
        snippet = """
            def _send_chunked(self, total_s):
                while total_s > 0:
                    yield self.sim.timeout(self.chunk_s)
                    total_s -= self.chunk_s
                    if self._drop_rng.random() < 0.01:
                        break
            """
        for path in ("src/repro/comms/link.py", "src/repro/environment/damage.py"):
            assert findings_for(snippet, rule="no-polling-loop", path=path) == []

    def test_shipped_tree_is_polling_clean(self):
        """Outside the sanctioned oracles, the real tree has no polling loops."""
        import pathlib

        from repro.lint.engine import lint_paths

        src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        findings = lint_paths([str(src)],
                              rules=default_rules(select=["no-polling-loop"]))
        assert findings == [], [str(f) for f in findings]


class TestLayering:
    def test_fires_on_upward_import(self):
        found = findings_for(
            """
            from repro.core.station import Station
            """,
            rule="layering",
            path="src/repro/hardware/msp430.py",
        )
        assert rule_ids(found) == ["layering"]

    def test_core_must_not_import_faults(self):
        """The load-bearing case: production code never depends on its own
        chaos harness."""
        found = findings_for(
            """
            from repro.faults import apply_fault_plan
            """,
            rule="layering",
            path="src/repro/core/deployment.py",
        )
        assert rule_ids(found) == ["layering"]

    def test_fires_on_equal_layer_sibling_import(self):
        found = findings_for(
            """
            import repro.environment.weather
            """,
            rule="layering",
            path="src/repro/energy/sources.py",
        )
        assert rule_ids(found) == ["layering"]

    def test_quiet_on_downward_import(self):
        found = findings_for(
            """
            from repro.sim.kernel import Simulation
            from repro.energy.bus import PowerBus
            from repro.core.deployment import Deployment
            """,
            rule="layering",
            path="src/repro/faults/harness.py",
        )
        assert found == []

    def test_quiet_on_same_package_import(self):
        found = findings_for(
            """
            from repro.core.config import DeploymentConfig
            """,
            rule="layering",
            path="src/repro/core/deployment.py",
        )
        assert found == []

    def test_obs_restricted_to_kernel_and_cli(self):
        snippet = """
            from repro.obs.metrics import MetricsRegistry
            """
        assert rule_ids(findings_for(
            snippet, rule="layering",
            path="src/repro/energy/bus.py")) == ["layering"]
        assert findings_for(snippet, rule="layering",
                            path="src/repro/sim/kernel.py") == []
        assert findings_for(snippet, rule="layering",
                            path="src/repro/cli.py") == []

    def test_type_checking_imports_exempt(self):
        found = findings_for(
            """
            from typing import TYPE_CHECKING
            if TYPE_CHECKING:
                from repro.core.station import Station

            def poke(station: "Station") -> None:
                station.daily_runs += 1
            """,
            rule="layering",
            path="src/repro/hardware/msp430.py",
        )
        assert found == []

    def test_quiet_outside_repro_tree(self):
        found = findings_for(
            """
            from repro.core.station import Station
            """,
            rule="layering",
            path="tests/hardware/test_msp430.py",
        )
        assert found == []

    def test_shipped_tree_is_layer_clean(self):
        """The real source tree must satisfy its own architecture diagram."""
        import pathlib

        from repro.lint.engine import lint_paths

        src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        findings = lint_paths([str(src)],
                              rules=default_rules(select=["layering"]))
        assert findings == [], [str(f) for f in findings]


class TestRegistry:
    def test_all_shipped_rules_registered(self):
        expected = {
            "wall-clock", "rng-discipline", "float-equality",
            "mutable-default", "silent-except", "yield-discipline",
            "no-print", "no-hot-path-alloc", "energy-conservation",
            "no-polling-loop", "layering",
        }
        assert expected <= set(RULE_REGISTRY)

    def test_every_rule_has_description_and_severity(self):
        for rule_cls in RULE_REGISTRY.values():
            assert rule_cls.id and rule_cls.description
            assert isinstance(rule_cls.severity, Severity)
