"""Fixtures for the event-ordering race rules (the static prong).

Each rule fires on a minimal violating snippet and stays quiet on the
compliant rewrite, mirroring ``test_rules.py``; the shipped tree check at
the bottom is the same gate CI runs via ``repro-sim races``.
"""

import textwrap

from repro.lint.engine import lint_source
from repro.lint.races import RACE_RULE_IDS
from repro.lint.rules import default_rules


def findings_for(snippet, rule=None, path="src/repro/example.py"):
    rules = default_rules(select=[rule] if rule else list(RACE_RULE_IDS))
    return lint_source(textwrap.dedent(snippet), path=path, rules=rules)


def rule_ids(findings):
    return [f.rule for f in findings]


class TestSameTimeSchedule:
    def test_fires_on_same_time_writers(self):
        found = findings_for(
            """
            def arm(sim, state):
                sim.call_at(10.0, lambda: state.update(a=1))
                sim.call_at(10.0, lambda: state.update(a=2))
            """,
            rule="same-time-schedule",
        )
        assert rule_ids(found) == ["same-time-schedule"]
        assert "state" in found[0].message
        assert found[0].line == 4  # anchored at the later call

    def test_fires_on_method_callbacks(self):
        found = findings_for(
            """
            class Station:
                def arm(self):
                    self.sim.call_at(3600.0, self.first)
                    self.sim.call_at(3600.0, self.second)

                def first(self):
                    self.backlog = []

                def second(self):
                    self.backlog = [1]
            """,
            rule="same-time-schedule",
        )
        assert rule_ids(found) == ["same-time-schedule"]

    def test_normalises_int_and_float_times(self):
        found = findings_for(
            """
            def arm(sim, state):
                sim.call_at(0, lambda: state.update(a=1))
                sim.call_at(0.0, lambda: state.update(a=2))
            """,
            rule="same-time-schedule",
        )
        assert rule_ids(found) == ["same-time-schedule"]

    def test_quiet_on_different_times(self):
        found = findings_for(
            """
            def arm(sim, state):
                sim.call_at(10.0, lambda: state.update(a=1))
                sim.call_at(20.0, lambda: state.update(a=2))
            """,
            rule="same-time-schedule",
        )
        assert found == []

    def test_quiet_on_disjoint_state(self):
        found = findings_for(
            """
            def arm(sim, first, second):
                sim.call_at(10.0, lambda: first.update(a=1))
                sim.call_at(10.0, lambda: second.update(a=2))
            """,
            rule="same-time-schedule",
        )
        assert found == []

    def test_inline_suppression(self):
        found = findings_for(
            """
            def arm(sim, state):
                sim.call_at(10.0, lambda: state.update(a=1))
                sim.call_at(10.0, lambda: state.update(a=2))  # repro-lint: disable=same-time-schedule
            """,
            rule="same-time-schedule",
        )
        assert found == []


class TestOrderDependentCallback:
    def test_fires_on_read_after_sibling_write(self):
        found = findings_for(
            """
            def arm(sim, trace, state):
                sim.call_at(10.0, lambda: state.update(a=1))
                sim.call_at(10.0, lambda: trace.emit(state))
            """,
            rule="order-dependent-callback",
        )
        assert rule_ids(found) == ["order-dependent-callback"]
        # Anchored at the reading callback.
        assert found[0].line == 4

    def test_fires_via_timeout_callbacks_append(self):
        found = findings_for(
            """
            def arm(sim, counter, trace):
                def bump():
                    counter.append(1)

                def report():
                    trace.emit(len(counter))

                first = sim.timeout(0)
                first.callbacks.append(bump)
                second = sim.timeout(0)
                second.callbacks.append(report)
            """,
            rule="order-dependent-callback",
        )
        assert rule_ids(found) == ["order-dependent-callback"]

    def test_quiet_when_reader_runs_later(self):
        found = findings_for(
            """
            def arm(sim, trace, state):
                sim.call_at(10.0, lambda: state.update(a=1))
                sim.call_at(10.5, lambda: trace.emit(state))
            """,
            rule="order-dependent-callback",
        )
        assert found == []

    def test_quiet_on_callback_locals(self):
        found = findings_for(
            """
            def arm(sim, trace):
                def first():
                    scratch = [1]
                    trace.note(scratch)

                def second():
                    scratch = [2]
                    trace.note(scratch)

                sim.call_at(10.0, first)
                sim.call_at(10.0, second)
            """,
            rule="same-time-schedule",
        )
        assert found == []


class TestTieBreakAssumption:
    def test_fires_on_queue_access(self):
        found = findings_for(
            """
            def depth(sim):
                return len(sim._queue)
            """,
            rule="tie-break-assumption",
        )
        assert rule_ids(found) == ["tie-break-assumption"]

    def test_fires_on_sequence_access(self):
        found = findings_for(
            """
            def scheduled(sim):
                return sim._sequence
            """,
            rule="tie-break-assumption",
        )
        assert rule_ids(found) == ["tie-break-assumption"]

    def test_kernel_files_exempt(self):
        snippet = """
            def depth(self):
                return len(self._queue)
            """
        assert findings_for(snippet, rule="tie-break-assumption",
                            path="src/repro/sim/kernel.py") == []
        assert findings_for(snippet, rule="tie-break-assumption",
                            path="src/repro/sim/process.py") == []

    def test_quiet_on_public_accessors(self):
        found = findings_for(
            """
            def depth(sim):
                return (sim.queue_depth, sim.events_scheduled, sim.peek())
            """,
            rule="tie-break-assumption",
        )
        assert found == []


class TestShippedTree:
    def test_shipped_tree_has_no_race_findings(self):
        """The real source tree is clean under all three race rules."""
        import pathlib

        from repro.lint.engine import lint_paths

        src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        findings = lint_paths([str(src)],
                              rules=default_rules(select=list(RACE_RULE_IDS)))
        assert findings == [], [str(f) for f in findings]
