"""Regression: same-seed missions replay bit-for-bit; different seeds don't."""

from repro.lint.determinism import (
    check_determinism,
    main as determinism_main,
    record_canonical,
    run_mission,
    trace_digest,
)
from repro.sim.trace import TraceRecord

#: Short but non-trivial: covers an MSP430 sampling cycle and sensor reads.
DAYS = 0.15


class TestDigest:
    def test_canonical_sorts_detail_keys(self):
        a = TraceRecord(time=1.0, source="s", kind="k", detail={"b": 2, "a": 1})
        b = TraceRecord(time=1.0, source="s", kind="k", detail={"a": 1, "b": 2})
        assert record_canonical(a) == record_canonical(b)

    def test_digest_sensitive_to_order_and_content(self):
        r1 = TraceRecord(time=1.0, source="s", kind="k", detail={"v": 1})
        r2 = TraceRecord(time=2.0, source="s", kind="k", detail={"v": 1})
        assert trace_digest([r1, r2]) != trace_digest([r2, r1])
        assert trace_digest([r1]) != trace_digest([r2])
        assert trace_digest([]) != trace_digest([r1])


class TestHarness:
    def test_same_seed_identical(self):
        report = check_determinism(seed=0, days=DAYS)
        assert report.identical, report.summary()
        assert report.digest_a == report.digest_b
        assert report.first_divergence is None
        assert "determinism OK" in report.summary()

    def test_run_mission_produces_records(self):
        digest, lines = run_mission(seed=0, days=DAYS)
        assert len(digest) == 64
        assert lines, "a mission this long must emit trace records"

    def test_different_seeds_diverge(self):
        """Sanity: the digest actually reflects the randomness, not just time."""
        digest_a, _ = run_mission(seed=0, days=DAYS)
        digest_b, _ = run_mission(seed=1, days=DAYS)
        assert digest_a != digest_b

    def test_main_exit_codes(self, capsys):
        assert determinism_main(["--seed", "0", "--days", str(DAYS)]) == 0
        assert "determinism OK" in capsys.readouterr().out


class TestDivergenceReporting:
    def test_summary_pinpoints_first_divergence(self):
        report = check_determinism(seed=0, days=DAYS)
        # Forge a diverged report from the real one to exercise the renderer.
        from repro.lint.determinism import DeterminismReport

        forged = DeterminismReport(
            seed=0, days=DAYS,
            digest_a=report.digest_a,
            digest_b="0" * 64,
            first_divergence=(3, "A-line", "B-line"),
        )
        text = forged.summary()
        assert "FAILED" in text and "record 3" in text
        assert "A-line" in text and "B-line" in text
