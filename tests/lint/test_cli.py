"""CLI contract: exit codes, JSON output schema, rule listing, forwarding."""

import json

from repro.lint.cli import main as lint_main

CLEAN = "x = 1\n"
VIOLATION = "import numpy as np\nrng = np.random.default_rng(1)\n"


def write(tmp_path, name, content):
    target = tmp_path / name
    target.write_text(content)
    return str(target)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        assert lint_main([write(tmp_path, "ok.py", CLEAN)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        assert lint_main([write(tmp_path, "bad.py", VIOLATION)]) == 1
        out = capsys.readouterr().out
        assert "rng-discipline" in out and "bad.py" in out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        code = lint_main([write(tmp_path, "ok.py", CLEAN), "--select", "nope"])
        assert code == 2

    def test_missing_path_exits_two(self, tmp_path, capsys):
        """A typo'd path must not report '0 findings' and pass the gate."""
        code = lint_main([str(tmp_path / "does-not-exist")])
        assert code == 2
        assert "no such file" in capsys.readouterr().err

    def test_disable_flag_silences(self, tmp_path):
        path = write(tmp_path, "bad.py", VIOLATION)
        assert lint_main([path, "--disable", "rng-discipline"]) == 0


class TestJsonOutput:
    def test_schema(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", VIOLATION)
        assert lint_main([path, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["counts"] == {"total": 1, "error": 1, "warning": 0}
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "path", "line", "col", "severity", "message"}
        assert finding["rule"] == "rng-discipline"
        assert finding["severity"] == "error"
        assert finding["line"] == 2

    def test_clean_json(self, tmp_path, capsys):
        assert lint_main([write(tmp_path, "ok.py", CLEAN), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["counts"]["total"] == 0

    def test_determinism_section(self, tmp_path, capsys):
        path = write(tmp_path, "ok.py", CLEAN)
        code = lint_main(
            [path, "--format", "json", "--check-determinism", "--days", "0.05"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        det = payload["determinism"]
        assert det["identical"] is True
        assert det["digest_a"] == det["digest_b"]
        assert len(det["digest_a"]) == 64


class TestListRules:
    def test_lists_all_six(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "wall-clock", "rng-discipline", "float-equality",
            "mutable-default", "silent-except", "yield-discipline",
        ):
            assert rule_id in out


class TestReproSimForwarding:
    def test_repro_sim_lint_subcommand(self, tmp_path, capsys):
        from repro.cli import main as sim_main

        path = write(tmp_path, "bad.py", VIOLATION)
        assert sim_main(["lint", path]) == 1
        assert "rng-discipline" in capsys.readouterr().out
        assert sim_main(["lint", write(tmp_path, "ok.py", CLEAN)]) == 0
