"""Perturbed-tie replay harness: robustness verdicts and bisection.

The harness replays one mission under several tie-break policies and
diffs tie-normalized trace digests.  A tie-robust toy mission must pass
under every policy; an intentionally order-dependent mission must fail
*and* bisect to the exact pair of schedule callsites that race.
"""

import pytest

from repro.lint.findings import Severity
from repro.lint.tie_replay import (
    DIVERGENCE_RULE,
    check_tie_robustness,
    main,
    normalize_tie_order,
)
from repro.sim import Simulation


class TestNormalizeTieOrder:
    def test_sorts_within_instants_only(self):
        lines = [
            "1.000000000|b|x|",
            "1.000000000|a|y|",
            "2.000000000|z|k|",
            "2.000000000|a|k|",
        ]
        assert normalize_tie_order(lines) == [
            "1.000000000|a|y|",
            "1.000000000|b|x|",
            "2.000000000|a|k|",
            "2.000000000|z|k|",
        ]

    def test_cross_instant_order_preserved(self):
        lines = ["5.000000000|a|x|", "1.000000000|b|y|"]
        # Instants arrive in trace order; normalization never re-sorts
        # across group boundaries, even if timestamps were (impossibly)
        # out of order.
        assert normalize_tie_order(lines) == lines

    def test_empty(self):
        assert normalize_tie_order([]) == []


class RobustMission:
    """Same-instant emissions whose *content* is tie-independent."""

    def __init__(self, policy):
        self.sim = Simulation(seed=0, tie_break=policy)

    def run_days(self, days):
        sim = self.sim
        for label in ("a", "b", "c"):
            sim.call_at(10.0, lambda label=label: sim.trace.emit(
                "toy", "ping", label=label))
        sim.run(until=days * 86400.0)


class RacyMission:
    """Two same-instant callbacks sharing a counter: a genuine race."""

    WRITER_OFFSET = 11  # lines below class def: the writer call_at
    READER_OFFSET = 12  # lines below class def: the reader call_at

    def __init__(self, policy):
        self.sim = Simulation(seed=0, tie_break=policy)
        self.counter = {"n": 0}

    def run_days(self, days):
        sim, counter = self.sim, self.counter

        def writer():
            counter["n"] += 1
            sim.trace.emit("toy", "write", n=counter["n"])

        def reader():
            sim.trace.emit("toy", "read", n=counter["n"])

        sim.call_at(10.0, writer)
        sim.call_at(10.0, reader)
        sim.run(until=days * 86400.0)


def _racy_callsite_lines():
    """Absolute line numbers of the two racing ``call_at`` calls."""
    import inspect

    source, start = inspect.getsourcelines(RacyMission)
    lines = {}
    for offset, text in enumerate(source):
        if "sim.call_at(10.0, writer)" in text:
            lines["writer"] = start + offset
        if "sim.call_at(10.0, reader)" in text:
            lines["reader"] = start + offset
    return lines


class TestRobustMission:
    def test_passes_under_all_policies(self):
        report = check_tie_robustness(
            days=0.01, policies=("fifo", "lifo", "shuffle:1", "shuffle:9"),
            mission_factory=RobustMission)
        assert report.robust
        assert report.divergences == ()
        assert report.findings == ()
        digests = {run.normalized_digest for run in report.runs}
        assert len(digests) == 1
        # The raw (un-normalized) digests need not agree: within-instant
        # order is presentation.
        assert len(report.runs) == 4

    def test_format_mentions_ok(self):
        report = check_tie_robustness(days=0.01, policies=("fifo", "lifo"),
                                      mission_factory=RobustMission)
        assert "tie replay OK" in report.format()


class TestRacyMission:
    @pytest.fixture(scope="class")
    def report(self):
        return check_tie_robustness(days=0.01, policies=("fifo", "lifo"),
                                    mission_factory=RacyMission)

    def test_detected(self, report):
        assert not report.robust
        assert len(report.divergences) == 1
        divergence = report.divergences[0]
        assert divergence.policy == "lifo"
        assert divergence.time == 10.0
        assert "read" in divergence.baseline_line

    def test_bisected_to_callsite_pair(self, report):
        lines = _racy_callsite_lines()
        assert set(lines) == {"writer", "reader"}
        located = {(f.path, f.line) for f in report.findings}
        assert {line for _path, line in located} == set(lines.values())
        assert all(path.endswith("test_tie_replay.py") for path, _line in located)
        for finding in report.findings:
            assert finding.rule == DIVERGENCE_RULE
            assert finding.severity is Severity.ERROR
            assert "dispatch order flipped" in finding.message

    def test_report_round_trips_to_dict(self, report):
        payload = report.to_dict()
        assert payload["robust"] is False
        assert payload["policies"] == ["fifo", "lifo"]
        assert len(payload["findings"]) == len(report.findings)
        assert payload["divergences"][0]["time"] == 10.0

    def test_format_shows_bisection(self, report):
        text = report.format()
        assert "tie replay FAILED" in text
        assert "first divergence" in text
        assert "tie-order-divergence" in text


class TestValidation:
    def test_needs_two_policies(self):
        with pytest.raises(ValueError):
            check_tie_robustness(policies=("fifo",),
                                 mission_factory=RobustMission)


class TestCanonicalMission:
    def test_short_canonical_mission_is_tie_robust(self):
        # The CI smoke runs 10 days; one day here keeps the suite quick
        # while still crossing the noon schedule boundary that produced
        # the original voltage_sample race.
        report = check_tie_robustness(seed=0, days=1.0,
                                      policies=("fifo", "lifo", "shuffle:1"))
        assert report.robust, report.format()


class TestMain:
    def test_exit_zero_on_robust_mission(self, capsys):
        assert main(["--days", "0.25", "--policies", "fifo,lifo"]) == 0
        assert "tie replay OK" in capsys.readouterr().out
