"""Engine behaviour: suppression comments, select/disable, file walking,
parse errors."""

import textwrap

import pytest

from repro.lint.engine import (
    lint_paths,
    lint_source,
    parse_file_suppressions,
    parse_suppressions,
)
from repro.lint.rules import default_rules

VIOLATION = "import numpy as np\nrng = np.random.default_rng(1)\n"


class TestSuppression:
    def test_inline_disable_silences_rule(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(1)  # repro-lint: disable=rng-discipline\n"
        )
        assert lint_source(source) == []

    def test_disable_all(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(1)  # repro-lint: disable=all\n"
        )
        assert lint_source(source) == []

    def test_wrong_rule_id_does_not_suppress(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(1)  # repro-lint: disable=wall-clock\n"
        )
        assert [f.rule for f in lint_source(source)] == ["rng-discipline"]

    def test_marker_inside_string_is_not_a_suppression(self):
        source = (
            'NOTE = "repro-lint: disable=rng-discipline"\n'
            "import numpy as np\n"
            "rng = np.random.default_rng(1)\n"
        )
        assert [f.rule for f in lint_source(source)] == ["rng-discipline"]

    def test_parse_suppressions_maps_lines(self):
        source = textwrap.dedent(
            """
            x = 1  # repro-lint: disable=wall-clock, rng-discipline
            y = 2
            z = 3  # repro-lint: disable=all
            """
        )
        mapping = parse_suppressions(source)
        assert mapping[2] == {"wall-clock", "rng-discipline"}
        assert 3 not in mapping
        assert mapping[4] == {"all"}


class TestFileSuppression:
    def test_disable_file_silences_rule_everywhere(self):
        source = (
            "# repro-lint: disable-file=rng-discipline\n"
            "import numpy as np\n"
            "rng = np.random.default_rng(1)\n"
            "other = np.random.default_rng(2)\n"
        )
        assert lint_source(source) == []

    def test_only_named_rules_suppressed(self):
        source = (
            "# repro-lint: disable-file=wall-clock\n"
            "import numpy as np\n"
            "rng = np.random.default_rng(1)\n"
        )
        assert [f.rule for f in lint_source(source)] == ["rng-discipline"]

    def test_disable_file_all_rejected(self):
        source = (
            "# repro-lint: disable-file=all\n"
            "import numpy as np\n"
            "rng = np.random.default_rng(1)\n"
        )
        assert [f.rule for f in lint_source(source)] == ["rng-discipline"]

    def test_directive_outside_window_ignored(self):
        source = (
            "a = 1\nb = 2\nc = 3\nd = 4\ne = 5\n"
            "# repro-lint: disable-file=rng-discipline\n"
            "import numpy as np\n"
            "rng = np.random.default_rng(1)\n"
        )
        assert [f.rule for f in lint_source(source)] == ["rng-discipline"]

    def test_directive_inside_docstring_ignored(self):
        source = (
            '"""# repro-lint: disable-file=rng-discipline"""\n'
            "import numpy as np\n"
            "rng = np.random.default_rng(1)\n"
        )
        assert [f.rule for f in lint_source(source)] == ["rng-discipline"]

    def test_comma_separated_rules(self):
        source = (
            "# repro-lint: disable-file=rng-discipline, wall-clock\n"
            "import numpy as np\n"
            "import time\n"
            "rng = np.random.default_rng(1)\n"
            "t = time.time()\n"
        )
        assert lint_source(source) == []

    def test_parse_file_suppressions(self):
        assert parse_file_suppressions(
            "# repro-lint: disable-file=a-rule,b-rule\n") == {"a-rule", "b-rule"}
        assert parse_file_suppressions("# repro-lint: disable-file=all\n") == set()
        assert parse_file_suppressions("# repro-lint: disable=a-rule\n") == set()


class TestSelection:
    def test_select_runs_only_named_rules(self):
        source = (
            "import numpy as np\n"
            "def f(x=[]):\n"
            "    return np.random.default_rng(1)\n"
        )
        only_mutable = lint_source(source, rules=default_rules(select=["mutable-default"]))
        assert [f.rule for f in only_mutable] == ["mutable-default"]

    def test_disable_removes_rule(self):
        source = "def f(x=[]):\n    return x\n"
        assert lint_source(source, rules=default_rules(disable=["mutable-default"])) == []

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError):
            default_rules(select=["no-such-rule"])
        with pytest.raises(KeyError):
            default_rules(disable=["no-such-rule"])


class TestFiles:
    def test_walks_directories_and_sorts(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "b.py").write_text(VIOLATION)
        (pkg / "a.py").write_text("x = 1\n")
        findings = lint_paths([str(tmp_path)])
        assert [f.rule for f in findings] == ["rng-discipline"]
        assert findings[0].path.endswith("b.py")

    def test_single_file_path(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text(VIOLATION)
        assert len(lint_paths([str(target)])) == 1

    def test_syntax_error_reported_not_raised(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        findings = lint_paths([str(target)])
        assert [f.rule for f in findings] == ["parse-error"]

    def test_findings_sorted_by_position(self, tmp_path):
        target = tmp_path / "multi.py"
        target.write_text(
            "import numpy as np\n"
            "def f(x=[]):\n"
            "    return np.random.default_rng(1)\n"
        )
        findings = lint_paths([str(target)])
        assert [f.line for f in findings] == sorted(f.line for f in findings)


class TestCurrentTree:
    def test_src_repro_is_clean(self):
        """The CI gate invariant: the shipped tree has zero findings."""
        import repro

        root = repro.__path__[0]
        findings = lint_paths([root])
        assert findings == [], "\n".join(f.render() for f in findings)
