"""Tests for the real-time clock: drift, set, power-loss reset."""

import datetime as dt

import pytest

from repro.hardware.rtc import RealTimeClock
from repro.sim import Simulation
from repro.sim.simtime import DAY, RTC_RESET_DATETIME


@pytest.fixture
def sim():
    return Simulation(seed=1)


class TestBasics:
    def test_starts_correct(self, sim):
        rtc = RealTimeClock(sim)
        assert rtc.now() == sim.utcnow()
        assert rtc.error_seconds() == pytest.approx(0.0)

    def test_tracks_time_without_drift(self, sim):
        rtc = RealTimeClock(sim)
        sim.run(until=1000.0)
        assert rtc.error_seconds() == pytest.approx(0.0, abs=1e-6)

    def test_positive_drift_runs_fast(self, sim):
        rtc = RealTimeClock(sim, drift_ppm=100.0)
        sim.run(until=DAY)
        # 100 ppm over a day = 8.64 s fast.
        assert rtc.error_seconds() == pytest.approx(8.64, rel=1e-3)

    def test_negative_drift_runs_slow(self, sim):
        rtc = RealTimeClock(sim, drift_ppm=-50.0)
        sim.run(until=DAY)
        assert rtc.error_seconds() == pytest.approx(-4.32, rel=1e-3)

    def test_set_to_clears_error(self, sim):
        rtc = RealTimeClock(sim, drift_ppm=200.0)
        sim.run(until=DAY)
        rtc.set_to(sim.utcnow())
        assert rtc.error_seconds() == pytest.approx(0.0, abs=1e-6)

    def test_set_from_true_time_with_skew(self, sim):
        rtc = RealTimeClock(sim)
        rtc.set_from_true_time(offset_s=30.0)
        assert rtc.error_seconds() == pytest.approx(30.0)

    def test_set_naive_datetime_is_utc(self, sim):
        rtc = RealTimeClock(sim)
        rtc.set_to(dt.datetime(2009, 6, 1, 12, 0))
        assert rtc.now().tzinfo is not None


class TestReset:
    def test_reset_goes_to_1970(self, sim):
        rtc = RealTimeClock(sim)
        sim.run(until=100 * DAY)
        rtc.reset()
        assert rtc.now() == RTC_RESET_DATETIME

    def test_reset_clock_still_advances(self, sim):
        rtc = RealTimeClock(sim)
        rtc.reset()
        sim.run(until=3600.0)
        assert rtc.now() == RTC_RESET_DATETIME + dt.timedelta(hours=1)

    def test_pre_deployment_detection(self, sim):
        rtc = RealTimeClock(sim)
        assert not rtc.is_pre_deployment
        rtc.reset()
        assert rtc.is_pre_deployment

    def test_reset_is_traced(self, sim):
        rtc = RealTimeClock(sim, name="t.rtc")
        rtc.reset()
        assert len(sim.trace.select(source="t.rtc", kind="rtc_reset")) == 1
