"""Integration tests: MSP430 supervisor + Gumstix + power bus + I2C."""

import datetime as dt

import pytest

from repro.energy.battery import Battery
from repro.energy.bus import PowerBus
from repro.energy.sources import ConstantSource
from repro.hardware.gumstix import Gumstix
from repro.hardware.i2c import I2CBus
from repro.hardware.msp430 import Msp430, ScheduleEntry
from repro.sim import Simulation
from repro.sim.simtime import DAY, HOUR, MINUTE


@pytest.fixture
def rig():
    """A minimal station rig: sim + bus + MSP430 + Gumstix + I2C."""
    sim = Simulation(seed=5)
    bus = PowerBus(sim, Battery(soc=0.9), name="rig.power")
    msp = Msp430(sim, bus, name="rig.msp430")
    gumstix = Gumstix(sim, bus, name="rig.gumstix")
    msp.register_action("wake_gumstix", lambda: msp.supervise_gumstix(gumstix))
    i2c = I2CBus(sim, msp)
    return sim, bus, msp, gumstix, i2c


class TestVoltageSampling:
    def test_samples_every_30_minutes(self, rig):
        sim, _bus, msp, _gumstix, _i2c = rig
        sim.run(until=6 * HOUR)
        assert len(msp.voltage_log) == 12

    def test_samples_are_plausible_voltages(self, rig):
        sim, _bus, msp, _g, _i2c = rig
        sim.run(until=2 * HOUR)
        for _t, volts in msp.voltage_log:
            assert 10.0 < volts < 15.0

    def test_i2c_download_consumes_log(self, rig):
        sim, _bus, msp, _g, i2c = rig
        sim.run(until=3 * HOUR)
        log = i2c.read_voltage_log()
        assert len(log) == 6
        assert msp.voltage_log == []
        assert i2c.transactions[-1].command == "read_voltage_log"

    def test_buffer_capacity_bounded(self, rig):
        sim, _bus, msp, _g, _i2c = rig
        msp.BUFFER_CAPACITY = 10
        sim.run(until=DAY)
        assert len(msp.voltage_log) == 10


class TestScheduler:
    def test_wakes_gumstix_at_scheduled_hour(self, rig):
        sim, _bus, msp, gumstix, _i2c = rig
        gumstix.on_boot = None  # no job: boots then completes immediately
        # Default flash schedule is 12:00; epoch starts at midnight.
        sim.run(until=13 * HOUR)
        assert gumstix.power_cycles == 1
        fires = sim.trace.select(kind="schedule_fire")
        assert fires[0].time == pytest.approx(12 * HOUR, abs=1.0)

    def test_fires_daily(self, rig):
        sim, _bus, _msp, gumstix, _i2c = rig
        sim.run(until=3 * DAY)
        assert gumstix.power_cycles == 3

    def test_schedule_rewrite_takes_effect(self, rig):
        sim, _bus, msp, gumstix, _i2c = rig
        sim.run(until=1 * HOUR)
        msp.set_schedule([ScheduleEntry(hour=2.0, action="wake_gumstix")])
        sim.run(until=3 * HOUR)
        assert gumstix.power_cycles == 1
        fires = sim.trace.select(kind="schedule_fire")
        assert fires[0].time == pytest.approx(2 * HOUR, abs=1.0)

    def test_multiple_entries_per_day(self, rig):
        sim, _bus, msp, _gumstix, _i2c = rig
        count = []
        msp.register_action("tick", lambda: count.append(sim.now))
        msp.set_schedule([ScheduleEntry(hour=h, action="tick") for h in (2.0, 8.0, 14.0)])
        sim.run(until=DAY)
        assert len(count) == 3

    def test_empty_schedule_sleeps_until_rewritten(self, rig):
        sim, _bus, msp, gumstix, _i2c = rig
        msp.set_schedule([])
        sim.run(until=2 * DAY)
        assert gumstix.power_cycles == 0
        msp.set_schedule([ScheduleEntry(hour=1.0, action="wake_gumstix")])
        sim.run(until=2 * DAY + 23 * HOUR)
        assert gumstix.power_cycles == 1

    def test_schedule_follows_rtc_not_true_time(self, rig):
        """If the RTC is 6 h fast, a 12:00 slot fires at 06:00 true time."""
        sim, _bus, msp, gumstix, _i2c = rig
        msp.rtc.set_from_true_time(offset_s=6 * HOUR)
        sim.run(until=7 * HOUR)
        assert gumstix.power_cycles == 1

    def test_invalid_hour_rejected(self):
        with pytest.raises(ValueError):
            ScheduleEntry(hour=24.0, action="x")


class TestGumstixLifecycle:
    def test_boot_runs_job_then_powers_off(self, rig):
        sim, bus, msp, gumstix, _i2c = rig
        ran = []

        def job():
            ran.append(sim.now)
            yield sim.timeout(10 * MINUTE)

        gumstix.on_boot = job
        sim.run(until=13 * HOUR)
        assert len(ran) == 1
        assert not gumstix.is_on
        assert gumstix.total_on_time_s == pytest.approx(gumstix.boot_s + 10 * MINUTE)
        assert not bus.loads.get("rig.gumstix").on

    def test_energy_charged_for_session(self, rig):
        sim, bus, _msp, gumstix, _i2c = rig

        def job():
            yield sim.timeout(30 * MINUTE)

        gumstix.on_boot = job
        sim.run(until=13 * HOUR)
        bus.sync()
        expected = gumstix.load.power_w * (gumstix.boot_s + 30 * MINUTE)
        assert bus.loads.get("rig.gumstix").energy_j == pytest.approx(expected, rel=1e-6)

    def test_watchdog_cuts_after_two_hours(self, rig):
        sim, _bus, msp, gumstix, _i2c = rig

        def hung_job():
            yield sim.timeout(10 * DAY)  # a hung SCP transfer

        gumstix.on_boot = hung_job
        sim.run(until=15 * HOUR)
        assert not gumstix.is_on
        assert msp.watchdog_cuts == 1
        assert gumstix.unclean_shutdowns == 1
        cuts = sim.trace.select(kind="watchdog_cut")
        assert cuts[0].time == pytest.approx(12 * HOUR + 2 * HOUR, abs=1.0)

    def test_watchdog_does_not_cut_short_job(self, rig):
        sim, _bus, msp, gumstix, _i2c = rig

        def short_job():
            yield sim.timeout(20 * MINUTE)

        gumstix.on_boot = short_job
        sim.run(until=15 * HOUR)
        assert msp.watchdog_cuts == 0
        assert gumstix.unclean_shutdowns == 0

    def test_power_on_idempotent(self, rig):
        sim, _bus, _msp, gumstix, _i2c = rig
        gumstix.power_on()
        session = gumstix.power_on()
        assert gumstix.power_cycles == 1
        assert session is not None


class TestBrownoutLifecycle:
    def make_starving_rig(self):
        sim = Simulation(seed=6)
        bus = PowerBus(sim, Battery(soc=0.01), name="s.power", step_s=60.0)
        msp = Msp430(sim, bus, name="s.msp430")
        gumstix = Gumstix(sim, bus, name="s.gumstix")
        msp.register_action("wake_gumstix", lambda: msp.supervise_gumstix(gumstix))
        return sim, bus, msp, gumstix

    def test_brownout_clears_ram_and_resets_rtc(self):
        sim, bus, msp, gumstix = self.make_starving_rig()
        msp.set_schedule([ScheduleEntry(hour=h % 24, action="wake_gumstix") for h in range(0, 24, 2)])
        bus.add_load("drain", 20.0)
        bus.loads.switch_on("drain")
        sim.run(until=1 * DAY)
        assert msp.halted
        assert msp.voltage_log == []
        assert msp.rtc.is_pre_deployment

    def test_recovery_reboots_with_flash_default_schedule(self):
        sim, bus, msp, gumstix = self.make_starving_rig()
        msp.set_schedule([ScheduleEntry(hour=3.0, action="wake_gumstix")])
        bus.add_load("drain", 20.0)
        bus.loads.switch_on("drain")
        source = ConstantSource(0.0)
        bus.add_source(source)

        def recharge(sim):
            yield sim.timeout(6 * HOUR)
            source.watts = 60.0

        sim.process(recharge(sim))
        sim.run(until=3 * DAY)
        assert not msp.halted
        assert [(e.hour, e.action) for e in msp.schedule] == [(12.0, "wake_gumstix")]
        # The RTC is wrong (reset to 1970) but the default schedule still
        # wakes the Gumstix once per RTC-day.
        assert gumstix.power_cycles >= 1
