"""Tests for the compact-flash card model."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.storage import CompactFlashCard, StorageCorruption


@pytest.fixture
def card():
    return CompactFlashCard(capacity_bytes=1000, name="test.cf")


class TestFileOperations:
    def test_write_and_read(self, card):
        card.write("a.dat", 100, created=1.0, payload={"x": 1})
        stored = card.read("a.dat")
        assert stored.size_bytes == 100
        assert stored.payload == {"x": 1}

    def test_exists(self, card):
        assert not card.exists("a")
        card.write("a", 1, created=0.0)
        assert card.exists("a")

    def test_missing_file(self, card):
        with pytest.raises(FileNotFoundError):
            card.read("nope")

    def test_delete(self, card):
        card.write("a", 100, created=0.0)
        card.delete("a")
        assert not card.exists("a")
        assert card.used_bytes == 0

    def test_delete_missing(self, card):
        with pytest.raises(FileNotFoundError):
            card.delete("nope")

    def test_overwrite_replaces_size(self, card):
        card.write("a", 400, created=0.0)
        card.write("a", 100, created=1.0)
        assert card.used_bytes == 100

    def test_list_files_sorted_by_age(self, card):
        card.write("c", 10, created=3.0)
        card.write("a", 10, created=1.0)
        card.write("b", 10, created=2.0)
        assert [f.name for f in card.list_files()] == ["a", "b", "c"]

    def test_list_files_prefix(self, card):
        card.write("gps/1", 10, created=1.0)
        card.write("gps/2", 10, created=2.0)
        card.write("log/1", 10, created=3.0)
        assert len(card.list_files("gps/")) == 2


class TestCapacity:
    def test_card_full(self, card):
        card.write("a", 900, created=0.0)
        with pytest.raises(IOError, match="full"):
            card.write("b", 200, created=1.0)

    def test_overwrite_fits_when_replacing(self, card):
        card.write("a", 900, created=0.0)
        card.write("a", 950, created=1.0)  # replaces, so it fits
        assert card.used_bytes == 950

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CompactFlashCard(capacity_bytes=0)

    def test_negative_size_rejected(self, card):
        with pytest.raises(ValueError):
            card.write("a", -1, created=0.0)

    @given(st.lists(st.integers(min_value=0, max_value=200), max_size=10))
    def test_used_plus_free_is_capacity(self, sizes):
        card = CompactFlashCard(capacity_bytes=10_000)
        for i, size in enumerate(sizes):
            card.write(f"f{i}", size, created=float(i))
        assert card.used_bytes + card.free_bytes == card.capacity_bytes


class TestCorruption:
    def test_corruption_on_bad_roll(self, card):
        card.corruption_probability = 0.1
        assert card.unclean_power_removal(roll=0.05)
        assert card.corrupted

    def test_no_corruption_on_good_roll(self, card):
        card.corruption_probability = 0.1
        assert not card.unclean_power_removal(roll=0.5)

    def test_corrupted_read_fails(self, card):
        card.write("a", 10, created=0.0)
        card.corrupted = True
        with pytest.raises(StorageCorruption):
            card.read("a")
        with pytest.raises(StorageCorruption):
            card.list_files()

    def test_recover_restores_data(self, card):
        """The field-trip experience: the card corrupted but the data proved
        recoverable."""
        card.write("a", 10, created=0.0, payload="data")
        card.corrupted = True
        recovered = card.recover()
        assert not card.corrupted
        assert [f.name for f in recovered] == ["a"]
        assert card.read("a").payload == "data"

    def test_writes_still_possible_when_corrupted(self, card):
        # New appends may land; it's reads that fail (as in the deployment,
        # where the corruption was only noticed on inspection).
        card.corrupted = True
        card.write("b", 10, created=0.0)
        assert card.used_bytes == 10
