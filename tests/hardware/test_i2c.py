"""Tests for the I2C command channel (the Fig 2 processor split)."""

import datetime as dt

import pytest

from repro.energy.battery import Battery
from repro.energy.bus import PowerBus
from repro.hardware.i2c import I2CBus
from repro.hardware.msp430 import Msp430, ScheduleEntry
from repro.sim import Simulation
from repro.sim.simtime import HOUR


@pytest.fixture
def rig():
    sim = Simulation(seed=130)
    bus = PowerBus(sim, Battery(soc=0.9), name="i.power")
    msp = Msp430(sim, bus, name="i.msp430")
    return sim, msp, I2CBus(sim, msp, name="i.i2c")


class TestTransactions:
    def test_every_command_logged(self, rig):
        sim, msp, i2c = rig
        sim.run(until=2 * HOUR)
        i2c.read_voltage_log()
        i2c.read_sensor_log()
        i2c.read_rtc()
        i2c.read_battery_voltage()
        i2c.set_schedule([ScheduleEntry(hour=12.0, action="wake_gumstix")])
        commands = [t.command for t in i2c.transactions]
        assert commands == [
            "read_voltage_log",
            "read_sensor_log",
            "read_rtc",
            "read_battery_voltage",
            "set_schedule",
        ]

    def test_transaction_sizes_scale_with_payload(self, rig):
        sim, msp, i2c = rig
        sim.run(until=4 * HOUR)  # 8 voltage samples
        i2c.read_voltage_log()
        assert i2c.transactions[-1].nbytes == 8 * 8

    def test_transfer_time(self, rig):
        _sim, _msp, i2c = rig
        assert i2c.transfer_time_s(8000) == pytest.approx(1.0)


class TestCommandEffects:
    def test_set_rtc_moves_msp_clock(self, rig):
        sim, msp, i2c = rig
        target = dt.datetime(2009, 6, 1, 12, 0, tzinfo=dt.timezone.utc)
        i2c.set_rtc(target)
        assert msp.rtc.now() == target

    def test_read_rtc_reflects_msp(self, rig):
        sim, msp, i2c = rig
        sim.run(until=HOUR)
        assert i2c.read_rtc() == msp.rtc.now()

    def test_set_schedule_reaches_ram(self, rig):
        _sim, msp, i2c = rig
        entries = [ScheduleEntry(hour=h, action="wake_gumstix") for h in (6.0, 18.0)]
        i2c.set_schedule(entries)
        assert msp.schedule == entries

    def test_battery_voltage_matches_bus(self, rig):
        _sim, msp, i2c = rig
        assert i2c.read_battery_voltage() == pytest.approx(msp.battery_voltage_now())

    def test_consume_semantics(self, rig):
        sim, msp, i2c = rig
        sim.run(until=3 * HOUR)
        first = i2c.read_voltage_log(consume=False)
        second = i2c.read_voltage_log(consume=True)
        assert first == second
        assert i2c.read_voltage_log() == []
