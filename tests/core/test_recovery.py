"""Tests for automatic schedule resetting after exhaustion (Section IV / E11)."""

import datetime as dt

import pytest

from repro.core.recovery import LAST_RUN_FILE, ScheduleRecovery
from repro.energy.battery import Battery
from repro.energy.bus import PowerBus
from repro.gps.receiver import GpsReceiver
from repro.hardware.i2c import I2CBus
from repro.hardware.msp430 import Msp430
from repro.hardware.storage import CompactFlashCard
from repro.sim import Simulation
from repro.sim.simtime import DAY, HOUR


@pytest.fixture
def rig():
    sim = Simulation(seed=51)
    bus = PowerBus(sim, Battery(soc=0.9), name="r.power")
    msp = Msp430(sim, bus, name="r.msp430")
    i2c = I2CBus(sim, msp)
    card = CompactFlashCard(name="r.cf")
    gps = GpsReceiver(sim, bus, name="r.gps", position_fn=lambda t: 0.0)
    recovery = ScheduleRecovery(sim, "r", card, gps, i2c)
    return sim, msp, i2c, card, gps, recovery


class TestRtcTrust:
    def test_fresh_station_is_trusted(self, rig):
        _sim, _msp, _i2c, _card, _gps, recovery = rig
        assert recovery.rtc_trusted()

    def test_normal_operation_stays_trusted(self, rig):
        sim, _msp, _i2c, _card, _gps, recovery = rig
        recovery.record_successful_run()
        sim.run(until=DAY)
        assert recovery.rtc_trusted()

    def test_rtc_reset_detected(self, rig):
        """After a reset the RTC says 1970, which is before the last run."""
        sim, msp, _i2c, _card, _gps, recovery = rig
        sim.run(until=DAY)
        recovery.record_successful_run()
        msp.rtc.reset()
        assert not recovery.rtc_trusted()

    def test_last_run_persisted_on_card(self, rig):
        sim, _msp, _i2c, card, _gps, recovery = rig
        recovery.record_successful_run()
        assert card.exists(LAST_RUN_FILE)
        assert isinstance(recovery.last_run_time(), dt.datetime)

    def test_corrupted_card_treated_as_no_record(self, rig):
        sim, msp, _i2c, card, _gps, recovery = rig
        recovery.record_successful_run()
        card.corrupted = True
        assert recovery.last_run_time() is None
        assert recovery.rtc_trusted()  # nothing to compare against


class TestClockRecovery:
    def test_gps_fix_restores_clock(self, rig):
        sim, msp, _i2c, _card, _gps, recovery = rig
        sim.run(until=10 * DAY)
        recovery.record_successful_run()
        msp.rtc.reset()
        proc = sim.process(recovery.recover_clock())
        sim.run(until=sim.now + HOUR)
        assert proc.value is True
        assert abs(msp.rtc.error_seconds()) < 1.0
        assert recovery.recoveries == 1

    def test_recovered_clock_is_trusted_again(self, rig):
        sim, msp, _i2c, _card, _gps, recovery = rig
        sim.run(until=10 * DAY)
        recovery.record_successful_run()
        msp.rtc.reset()
        assert not recovery.rtc_trusted()
        proc = sim.process(recovery.recover_clock())
        sim.run(until=sim.now + HOUR)
        assert recovery.rtc_trusted()

    def test_gps_failure_reports_false(self, rig):
        """'If the system cannot set the time using GPS then the system
        will sleep for a day and try again' — recover_clock just reports."""
        sim, msp, _i2c, _card, gps, recovery = rig
        gps.satellites_visible = lambda t: 3  # storm: no fix possible
        msp.rtc.reset()
        proc = sim.process(recovery.recover_clock())
        sim.run(until=sim.now + HOUR)
        assert proc.value is False
        assert recovery.failed_attempts == 1

    def test_retry_next_day_succeeds(self, rig):
        sim, msp, _i2c, _card, gps, recovery = rig
        real_sats = gps.satellites_visible
        gps.satellites_visible = lambda t: 3
        msp.rtc.reset()
        proc = sim.process(recovery.recover_clock())
        sim.run(until=sim.now + HOUR)
        assert proc.value is False
        # Sky clears overnight.
        gps.satellites_visible = real_sats
        sim.run(until=sim.now + DAY)
        proc = sim.process(recovery.recover_clock())
        sim.run(until=sim.now + HOUR)
        assert proc.value is True


def make_ntp_rig(seed=52, with_modem=True, outage_probability=0.0):
    """A station whose GPS never fixes, forcing the NTP fallback path."""
    sim = Simulation(seed=seed)
    bus = PowerBus(sim, Battery(soc=0.9), name="n.power")
    msp = Msp430(sim, bus, name="n.msp430")
    i2c = I2CBus(sim, msp)
    card = CompactFlashCard(name="n.cf")
    gps = GpsReceiver(sim, bus, name="n.gps", position_fn=lambda t: 0.0)
    gps.satellites_visible = lambda t: 0
    modem = None
    if with_modem:
        from repro.comms.gprs import GprsModem

        modem = GprsModem(sim, bus, name="n.gprs",
                          outage_probability=outage_probability)
    recovery = ScheduleRecovery(sim, "n", card, gps, i2c,
                                ntp_fallback=True, gprs_modem=modem)
    return sim, msp, modem, recovery


class TestNtpFallback:
    def test_ntp_used_when_gps_fails(self):
        """The paper's future-work extension, implemented."""
        sim, msp, _modem, recovery = make_ntp_rig()
        msp.rtc.reset()
        proc = sim.process(recovery.recover_clock())
        sim.run(until=sim.now + HOUR)
        assert proc.value is True
        assert abs(msp.rtc.error_seconds()) < 1.0
        assert len(sim.trace.select(kind="ntp_fix")) == 1

    def test_fallback_enabled_without_modem_fails_cleanly(self):
        """ntp_fallback=True with no modem fitted must report failure, not
        crash the daily run on a None modem."""
        sim, msp, _modem, recovery = make_ntp_rig(with_modem=False)
        msp.rtc.reset()
        proc = sim.process(recovery.recover_clock())
        sim.run(until=sim.now + HOUR)
        assert proc.value is False
        assert recovery.failed_attempts == 1
        assert len(sim.trace.select(kind="clock_recovery_failed")) == 1

    def test_gprs_outage_leaves_session_closed(self):
        """A coverage outage mid-NTP must power the modem back off; a
        latched session load would drain the battery until the next run."""
        sim, msp, modem, recovery = make_ntp_rig()
        modem.available = lambda t: False  # total outage
        msp.rtc.reset()
        proc = sim.process(recovery.recover_clock())
        sim.run(until=sim.now + HOUR)
        assert proc.value is False
        assert not modem.connected
        assert modem.load.current_power() == 0.0
        failures = sim.trace.select(kind="ntp_failed")
        assert len(failures) == 1
        assert failures[0].detail["error"] == "LinkDown"

    def test_unexpected_error_mid_ntp_leaves_session_closed(self):
        """Non-LinkDown failures take the same cleanup path (the bug this
        guards against: only LinkDown used to disconnect)."""
        sim, msp, modem, recovery = make_ntp_rig()

        def broken_send(nbytes, label=""):
            raise RuntimeError("modem firmware wedged")
            yield  # pragma: no cover - makes this a generator function

        modem.send = broken_send
        msp.rtc.reset()
        proc = sim.process(recovery.recover_clock())
        sim.run(until=sim.now + HOUR)
        assert proc.value is False
        assert not modem.connected
        assert modem.load.current_power() == 0.0
        failures = sim.trace.select(kind="ntp_failed")
        assert len(failures) == 1
        assert failures[0].detail["error"] == "RuntimeError"
