"""Tests for Table II: states, thresholds, schedules, clamps."""

import pytest
from hypothesis import given, strategies as st

from repro.core.controller import daily_average_voltage, decide_local_state
from repro.core.power_policy import (
    POWER_STATE_TABLE,
    PowerPolicy,
    PowerState,
    PowerStateSpec,
)
from repro.core.sync import clamp_override


@pytest.fixture
def policy():
    return PowerPolicy()


class TestTableII:
    """The table exactly as printed in the paper."""

    def test_state3_row(self):
        spec = POWER_STATE_TABLE[PowerState.S3]
        assert spec.min_threshold_v == 12.5
        assert spec.probe_jobs and spec.sensor_readings
        assert spec.gps_readings_per_day == 12
        assert spec.gprs

    def test_state2_row(self):
        spec = POWER_STATE_TABLE[PowerState.S2]
        assert spec.min_threshold_v == 12.0
        assert spec.gps_readings_per_day == 1
        assert spec.gprs

    def test_state1_row(self):
        spec = POWER_STATE_TABLE[PowerState.S1]
        assert spec.min_threshold_v == 11.5
        assert spec.gps_readings_per_day == 0
        assert spec.gprs

    def test_state0_row(self):
        spec = POWER_STATE_TABLE[PowerState.S0]
        assert spec.min_threshold_v is None
        assert spec.probe_jobs and spec.sensor_readings  # sensing never stops
        assert spec.gps_readings_per_day == 0
        assert not spec.gprs

    def test_probe_jobs_always_allowed(self):
        """Winter ice is *better* for probe radio, so probe jobs run in
        every state."""
        assert all(spec.probe_jobs for spec in POWER_STATE_TABLE.values())


class TestStateForVoltage:
    @pytest.mark.parametrize(
        "voltage,expected",
        [
            (13.0, PowerState.S3),
            (12.5, PowerState.S3),
            (12.49, PowerState.S2),
            (12.0, PowerState.S2),
            (11.99, PowerState.S1),
            (11.5, PowerState.S1),
            (11.49, PowerState.S0),
            (10.0, PowerState.S0),
        ],
    )
    def test_threshold_sweep(self, policy, voltage, expected):
        assert policy.state_for_voltage(voltage) is expected

    @given(st.floats(min_value=8.0, max_value=15.0))
    def test_state_monotone_in_voltage(self, voltage):
        policy = PowerPolicy()
        lower = policy.state_for_voltage(voltage - 0.25)
        upper = policy.state_for_voltage(voltage)
        assert upper >= lower


class TestGpsSchedule:
    def test_state3_twelve_readings_every_two_hours(self, policy):
        hours = policy.gps_hours(PowerState.S3)
        assert len(hours) == 12
        assert hours == [i * 2.0 for i in range(12)]

    def test_state2_single_reading(self, policy):
        assert policy.gps_hours(PowerState.S2) == [11.0]

    def test_states_0_and_1_no_gps(self, policy):
        assert policy.gps_hours(PowerState.S1) == []
        assert policy.gps_hours(PowerState.S0) == []

    def test_reading_duration_calibrated_to_117_days(self, policy):
        """The paper's pair: 5 days continuous, 117 days at state 3."""
        battery_wh = 36.0 * 12.0
        daily_wh = policy.daily_gps_energy_j(PowerState.S3) / 3600.0
        assert battery_wh / daily_wh == pytest.approx(117.0, rel=1e-9)

    def test_continuous_vs_state3_ratio(self, policy):
        continuous_daily_wh = 3.6 * 24.0
        state3_daily_wh = policy.daily_gps_energy_j(PowerState.S3) / 3600.0
        assert continuous_daily_wh / state3_daily_wh == pytest.approx(117.0 / 5.0, rel=1e-9)


class TestDailyAverage:
    def test_empty_log_is_none(self):
        assert daily_average_voltage([]) is None

    def test_mean(self):
        samples = [(0.0, 12.0), (1.0, 12.5), (2.0, 13.0)]
        assert daily_average_voltage(samples) == pytest.approx(12.5)

    def test_decide_uses_average_not_midday_peak(self):
        """The averaging rationale: midday is the daily *peak*, so a midday
        instantaneous reading would overstate battery health."""
        policy = PowerPolicy()
        overnight = [(float(h), 11.8) for h in range(24)]
        midday_peak = 12.6
        state, used = decide_local_state(policy, overnight, midday_peak)
        assert used == pytest.approx(11.8)
        assert state is PowerState.S1
        # Without the log the instantaneous reading would have said state 3.
        state_no_log, _ = decide_local_state(policy, [], midday_peak)
        assert state_no_log is PowerState.S3


class TestClampOverride:
    def test_none_override_keeps_local(self):
        assert clamp_override(PowerState.S2, None) is PowerState.S2

    def test_override_lowers(self):
        assert clamp_override(PowerState.S3, 2) is PowerState.S2

    def test_override_cannot_raise_above_battery(self):
        """'does not allow the state to be set higher than the battery
        voltage allows'."""
        assert clamp_override(PowerState.S1, 3) is PowerState.S1

    def test_cannot_force_state_zero(self):
        """'or for the station to be forced into power state 0'."""
        assert clamp_override(PowerState.S3, 0) is PowerState.S1

    def test_local_zero_stays_zero(self):
        # Local state 0 is the battery's own verdict, not a remote force.
        assert clamp_override(PowerState.S0, 3) is PowerState.S0

    @given(
        st.sampled_from(list(PowerState)),
        st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
    )
    def test_clamp_invariants(self, local, override):
        effective = clamp_override(local, override)
        assert effective <= local
        if override is not None and local >= PowerState.S1:
            assert effective >= PowerState.S1


class TestCustomPolicy:
    def test_threshold_override(self):
        table = dict(POWER_STATE_TABLE)
        table[PowerState.S3] = PowerStateSpec(PowerState.S3, 13.0, True, True, 12, True)
        policy = PowerPolicy(table=table)
        assert policy.state_for_voltage(12.7) is PowerState.S2
