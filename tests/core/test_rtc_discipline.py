"""Tests for routine RTC discipline and dGPS window alignment (§II)."""

import pytest

from repro.core import Deployment, DeploymentConfig
from repro.core.config import StationConfig, reference_defaults
from repro.server.archive import ScienceArchive
from repro.sim.simtime import DAY


def drifting_deployment(daily_rtc_sync, days, seed=115):
    base = StationConfig(rtc_drift_ppm=60.0, daily_rtc_sync=daily_rtc_sync)
    reference = reference_defaults()
    reference.rtc_drift_ppm = -60.0  # drifting the *other* way: 120 ppm relative
    reference.daily_rtc_sync = daily_rtc_sync
    deployment = Deployment(DeploymentConfig(
        seed=seed, base=base, reference=reference,
        probe_lifetimes_days=[10_000.0] * 7))
    deployment.run_days(days)
    return deployment


class TestRtcDiscipline:
    def test_synced_stations_hold_tight_clocks(self):
        deployment = drifting_deployment(daily_rtc_sync=True, days=8)
        assert abs(deployment.base.msp.rtc.error_seconds()) < 10.0
        assert abs(deployment.reference.msp.rtc.error_seconds()) < 10.0

    def test_unsynced_stations_drift(self):
        deployment = drifting_deployment(daily_rtc_sync=False, days=8)
        # 60 ppm over 8 days ~ 41 s each way.
        assert abs(deployment.base.msp.rtc.error_seconds()) > 30.0
        assert abs(deployment.reference.msp.rtc.error_seconds()) > 30.0

    def test_discipline_only_runs_with_gps_states(self):
        """State 1 has no GPS budget, so no routine fixes happen."""
        base = StationConfig(solar_w=0.0, wind_w=0.0, initial_soc=0.50,
                             rtc_drift_ppm=60.0, daily_rtc_sync=True)
        deployment = Deployment(DeploymentConfig(seed=116, base=base))
        deployment.run_days(5)
        fixes = deployment.sim.trace.select(source="base.gps", kind="time_fix_ok")
        assert fixes == []


class TestDgpsWindowAlignment:
    """The consequence §II warns about: relative clock drift slides the
    MSP-driven dGPS windows apart until differencing fails."""

    def test_aligned_windows_with_discipline(self):
        deployment = drifting_deployment(daily_rtc_sync=True, days=12)
        archive = ScienceArchive(deployment.server)
        assert archive.differential_fraction() > 0.8

    def test_windows_slide_apart_without_discipline(self):
        # 120 ppm relative drift: ~10.4 s/day; the 307.7 s readings need
        # >=60 s of overlap, so alignment fails after ~24 days.
        deployment = drifting_deployment(daily_rtc_sync=False, days=40, seed=117)
        archive = ScienceArchive(deployment.server)
        readings_base = archive.gps_readings("base")
        readings_ref = archive.gps_readings("reference")
        assert readings_base and readings_ref
        # Late-deployment readings no longer overlap.
        from repro.gps.dgps import pair_readings

        late_base = [r for r in readings_base if r.start_time > 32 * DAY]
        late_ref = [r for r in readings_ref if r.start_time > 32 * DAY]
        pairs = pair_readings(late_base, late_ref)
        unmatched = sum(1 for _b, match in pairs if match is None)
        assert unmatched > len(pairs) * 0.8
