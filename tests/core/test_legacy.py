"""Tests for the Norway-era radio-relay architecture (Section II)."""

import pytest

from repro.core.legacy import ADSL_UPLINK, RadioRelayDeployment, RelayConfig
from repro.sim.simtime import DAY, HOUR


def make_relay(seed=3, **overrides):
    config = RelayConfig(seed=seed, **overrides)
    return RadioRelayDeployment(config)


# A daily volume the 2000 bps radio link can actually carry in one window.
FITTING_BYTES = 1_200_000


class TestRelayHappyPath:
    def test_data_flows_base_to_southampton(self):
        relay = make_relay(base_daily_bytes=FITTING_BYTES)
        relay.run_days(5)
        assert relay.base.bytes_delivered_to_reference > 0
        assert relay.delivered_bytes() > 0
        assert relay.server.received_bytes(kind="relay") > 0

    def test_reference_forwards_both_stations_data(self):
        relay = make_relay(base_daily_bytes=FITTING_BYTES)
        relay.run_days(5)
        # Forwarded volume includes the reference's own data every day.
        assert relay.reference.bytes_forwarded >= relay.base.bytes_delivered_to_reference

    def test_energy_is_accounted_on_both_buses(self):
        relay = make_relay(base_daily_bytes=FITTING_BYTES)
        relay.run_days(5)
        assert relay.base.comms_energy_wh() > 0
        assert relay.reference.comms_energy_wh() > 0

    def test_radio_peer_power_follows_sessions(self):
        relay = make_relay(base_daily_bytes=FITTING_BYTES)
        relay.run_days(2)
        # Outside the window the peer radio must be off.
        assert not relay.reference.radio_load.on


class TestVolumeLimit:
    def test_state3_volume_cannot_cross_the_radio_link(self):
        """A quantitative reason the relay had to go: 2.2 MB/day needs
        8800 s of airtime at 2000 bps — more than the whole 2-hour window,
        so the daily transfer can never complete cleanly."""
        relay = make_relay(base_daily_bytes=2_200_000, max_reconnects=0)
        airtime = relay.base.radio.transfer_time_s(2_200_000)
        assert airtime > relay.config.window_s
        relay.run_days(4)
        assert relay.base.bytes_delivered_to_reference == 0 or relay.base.days_failed > 0


class TestCoupledFailure:
    def test_reference_failure_silences_the_base(self):
        """'if the reference station failed in any way then all
        communication with the base station would also cease'."""
        relay = make_relay(base_daily_bytes=FITTING_BYTES)
        relay.run_days(4)
        delivered_before = relay.delivered_bytes()
        relay.fail_reference()
        relay.run_days(4)
        assert relay.delivered_bytes() == delivered_before
        assert relay.base.days_failed >= 3

    def test_dual_gprs_is_decoupled(self):
        """The redesign's advantage: in the Iceland architecture, killing
        the reference does not stop base data."""
        from repro.core import Deployment, DeploymentConfig

        deployment = Deployment(DeploymentConfig(seed=3))
        deployment.run_days(2)
        # Kill the reference station outright.
        deployment.reference.bus.battery.soc = 0.0
        deployment.reference.bus.sync()
        before = deployment.server.received_bytes(station="base")
        deployment.run_days(3)
        assert deployment.server.received_bytes(station="base") > before


class TestDisconnectAmbiguityCost:
    def test_interference_drops_cost_reconnect_holds(self):
        relay = make_relay(base_daily_bytes=FITTING_BYTES)
        # Make the link drop aggressively.
        relay.base.radio.drop_hazard_per_s = lambda t: 5e-3
        relay.run_days(4)
        assert relay.base.ppp.failed_sessions > 0
        assert relay.base.reconnect_hold_s_total > 0

    def test_clean_finishes_cost_nothing(self):
        relay = make_relay(base_daily_bytes=FITTING_BYTES)
        relay.base.radio.drop_hazard_per_s = lambda t: 0.0
        relay.base.radio.available = lambda t: True
        relay.run_days(4)
        assert relay.base.reconnect_hold_s_total == 0.0


class TestUplinkVariants:
    def test_adsl_is_the_default(self):
        relay = make_relay()
        assert relay.reference.uplink_spec is ADSL_UPLINK

    def test_gprs_uplink_variant(self):
        relay = make_relay(uplink="gprs", base_daily_bytes=FITTING_BYTES)
        relay.run_days(3)
        assert relay.reference.uplink_spec.name == "GPRS Modem"
        assert relay.server.received_bytes(kind="relay") > 0

    def test_no_mains_reference_drains(self):
        relay = make_relay(reference_has_mains=False, base_daily_bytes=FITTING_BYTES)
        relay.run_days(10)
        with_mains = make_relay(seed=3, base_daily_bytes=FITTING_BYTES)
        with_mains.run_days(10)
        assert relay.reference.bus.battery.soc <= with_mains.reference.bus.battery.soc
