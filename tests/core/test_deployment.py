"""Deployment-level tests: determinism, failure injection, lessons-learnt."""

import pytest

from repro.core import Deployment, DeploymentConfig
from repro.core.config import StationConfig, reference_defaults
from repro.sim.simtime import DAY, HOUR


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        a = Deployment(DeploymentConfig(seed=33))
        b = Deployment(DeploymentConfig(seed=33))
        a.run_days(4)
        b.run_days(4)
        assert a.server.received_bytes() == b.server.received_bytes()
        assert a.base.readings_collected == b.base.readings_collected
        assert a.voltage_series("base") == b.voltage_series("base")

    def test_different_seed_differs(self):
        a = Deployment(DeploymentConfig(seed=33))
        b = Deployment(DeploymentConfig(seed=34))
        a.run_days(4)
        b.run_days(4)
        assert a.server.received_bytes() != b.server.received_bytes()

    def test_probe_lifetime_override_validated(self):
        with pytest.raises(ValueError, match="probe_lifetimes_days"):
            Deployment(DeploymentConfig(probe_lifetimes_days=[1.0, 2.0]))


class TestLogVolumeLesson:
    """Section VI: a probe reconnecting after months produces >1 MB of log."""

    def config(self, wired_lifetime):
        return DeploymentConfig(
            seed=44,
            probe_lifetimes_days=[10_000.0] * 7,
            wired_probe_lifetime_days=wired_lifetime,
        )

    def log_sizes_by_day(self, deployment):
        return {
            int(u.time // DAY): u.nbytes
            for u in deployment.server.uploads
            if u.station == "base" and u.kind == "logs"
        }

    OUTAGE_RUN_DAYS = 12  # wired probe dead from day 2: ~10 days of backlog

    def test_backlog_day_log_exceeds_a_megabyte(self):
        deployment = Deployment(self.config(wired_lifetime=2.0))
        deployment.run_days(self.OUTAGE_RUN_DAYS)
        quiet_logs = self.log_sizes_by_day(deployment)
        deployment.wired_probe.schedule_repair(deployment.sim.now)
        deployment.run_days(2)
        all_logs = self.log_sizes_by_day(deployment)
        # Days with no probe comms have small logs; the reconnect day's
        # per-packet logging blows past a megabyte.
        assert max(all_logs.values()) > 1_000_000
        assert max(quiet_logs.values()) < 200_000

    def test_trimmed_logging_fix(self):
        """The lesson applied: reduce per-reading verbosity before
        deployment and the reconnect log stays modest."""
        config = self.config(wired_lifetime=2.0)
        config.base.log_bytes_per_reading = 10.0
        deployment = Deployment(config)
        deployment.run_days(self.OUTAGE_RUN_DAYS)
        deployment.wired_probe.schedule_repair(deployment.sim.now)
        deployment.run_days(2)
        sizes = self.log_sizes_by_day(deployment)
        assert max(sizes.values()) < 300_000

    def test_log_transfer_costs_money(self):
        """The verbose log is paid for per megabyte over GPRS."""
        deployment = Deployment(self.config(wired_lifetime=2.0))
        deployment.run_days(self.OUTAGE_RUN_DAYS)
        cost_before = deployment.base.modem.cost_total
        deployment.wired_probe.schedule_repair(deployment.sim.now)
        deployment.run_days(2)
        cost_after = deployment.base.modem.cost_total
        assert cost_after - cost_before > deployment.base.modem.cost_per_mb  # >1 MB paid


class TestCfCorruptionResilience:
    def test_corrupted_card_does_not_crash_daily_cycle(self):
        deployment = Deployment(DeploymentConfig(seed=45))
        deployment.run_days(2)
        deployment.base.card.corrupted = True
        deployment.run_days(2)
        # The station keeps running and flags the condition...
        assert deployment.base.daily_runs == 4
        skips = deployment.sim.trace.select(source="base", kind="cf_corrupted_skipping_upload")
        assert len(skips) >= 1

    def test_recovery_resumes_uploads(self):
        deployment = Deployment(DeploymentConfig(seed=45))
        deployment.run_days(2)
        deployment.base.card.corrupted = True
        deployment.run_days(2)
        bytes_during = deployment.server.received_bytes(station="base")
        deployment.base.card.recover()
        deployment.run_days(2)
        assert deployment.server.received_bytes(station="base") > bytes_during


class TestGprsAccounting:
    def test_costs_accumulate_with_data(self):
        deployment = Deployment(DeploymentConfig(seed=46))
        deployment.run_days(5)
        base_mb = deployment.server.received_bytes(station="base") / 1e6
        # Billed at cost_per_mb for delivered payload (plus small control).
        assert deployment.base.modem.cost_total >= base_mb * deployment.base.modem.cost_per_mb * 0.95

    def test_state3_station_sends_about_2mb_per_day(self):
        deployment = Deployment(DeploymentConfig(seed=46))
        deployment.run_days(6)
        gps_bytes = deployment.server.received_bytes(station="base", kind="gps")
        per_day = gps_bytes / 5.0  # schedule active from day 1
        assert 1.2e6 < per_day < 3.0e6  # ~12 x 165 KB


class TestSeasonalEffects:
    def test_winter_reference_runs_on_battery_alone(self):
        """After 30 September the café loses power; with a mostly-buried
        panel the reference drains through October."""
        reference = reference_defaults()
        reference.solar_w = 1.0  # mostly-buried panel
        deployment = Deployment(DeploymentConfig(seed=47, reference=reference))
        deployment.run_days(30)  # 1 October: mains just ended
        soc_mains_end = deployment.reference.bus.battery.soc
        deployment.run_days(20)
        soc_late_october = deployment.reference.bus.battery.soc
        assert soc_late_october < soc_mains_end

    def test_probe_loss_rate_follows_melt_season(self):
        deployment = Deployment(DeploymentConfig(seed=48))
        september = deployment.glacier.probe_radio_loss(deployment.sim.now + 10 * DAY)
        january = deployment.glacier.probe_radio_loss(deployment.sim.now + 130 * DAY)
        assert september > january


class TestWatchdogUncleanShutdowns:
    def test_hung_comms_session_is_cut_and_next_day_continues(self):
        deployment = Deployment(DeploymentConfig(seed=49))

        # Sabotage day 2: make the modem hang forever mid-transfer by
        # dropping its rate to nearly zero for a day.
        def sabotage():
            deployment.base.modem.spec = type(deployment.base.modem.spec)(
                "GPRS Modem", power_w=2.64, transfer_rate_bps=0.5
            )

        def repair():
            from repro.energy.components import GPRS_MODEM

            deployment.base.modem.spec = GPRS_MODEM

        deployment.sim.call_at(1 * DAY + 6 * HOUR, sabotage)
        deployment.sim.call_at(2 * DAY + 6 * HOUR, repair)
        deployment.run_days(4)
        # The watchdog fired exactly once (the sabotaged day)...
        assert deployment.base.msp.watchdog_cuts == 1
        assert deployment.base.gumstix.unclean_shutdowns == 1
        # ...and later days completed normally.
        assert deployment.base.daily_runs >= 3
        completes = deployment.sim.trace.select(source="base.gumstix", kind="job_complete")
        assert any(r.time > 3 * DAY for r in completes)

    def test_unsent_files_carry_over_after_watchdog_cut(self):
        deployment = Deployment(DeploymentConfig(seed=49))

        def sabotage():
            deployment.base.modem.spec = type(deployment.base.modem.spec)(
                "GPRS Modem", power_w=2.64, transfer_rate_bps=0.5
            )

        def repair():
            from repro.energy.components import GPRS_MODEM

            deployment.base.modem.spec = GPRS_MODEM

        deployment.sim.call_at(1 * DAY + 6 * HOUR, sabotage)
        deployment.sim.call_at(2 * DAY + 6 * HOUR, repair)
        deployment.run_days(4)
        # Day 2's data was not lost: day 3+ upload volume includes it.
        day3_bytes = sum(
            u.nbytes for u in deployment.server.uploads
            if u.station == "base" and 2 * DAY < u.time
        )
        day1_bytes = sum(
            u.nbytes for u in deployment.server.uploads
            if u.station == "base" and u.time < 2 * DAY
        )
        assert day3_bytes > day1_bytes  # backlog + normal production


class TestTiltSensorsOption:
    def test_tilt_channels_reach_southampton(self):
        config = DeploymentConfig(seed=50, station_tilt_sensors=True)
        deployment = Deployment(config)
        deployment.run_days(3)
        from repro.server.archive import ScienceArchive

        archive = ScienceArchive(deployment.server)
        pitch = archive.sensor_series("base", "enclosure_pitch_deg")
        roll = archive.sensor_series("base", "enclosure_roll_deg")
        assert len(pitch) > 50 and len(roll) > 50

    def test_disabled_by_default(self):
        deployment = Deployment(DeploymentConfig(seed=50))
        deployment.run_days(2)
        from repro.server.archive import ScienceArchive

        archive = ScienceArchive(deployment.server)
        assert archive.sensor_series("base", "enclosure_pitch_deg") == []
