"""Edge-case tests of the station daily cycle."""

import pytest

from repro.core import Deployment, DeploymentConfig, PowerState
from repro.core.config import StationConfig
from repro.sim.simtime import DAY, HOUR


class TestTableIIBehaviourBinding:
    def test_state1_skips_gps_file_collection(self):
        """Fig 4: 'Power state >1 -> Get GPS files'; state 1 does not."""
        base = StationConfig(solar_w=0.0, wind_w=0.0, initial_soc=0.50)  # ~11.7 V
        deployment = Deployment(DeploymentConfig(seed=81, base=base))
        deployment.run_days(3)
        assert deployment.base.local_state is PowerState.S1
        # No GPS data staged or uploaded.
        assert deployment.server.received_bytes(station="base", kind="gps") == 0
        # But GPRS comms continued (state 1 keeps GPRS per Table II).
        assert deployment.server.received_bytes(station="base", kind="sensors") > 0

    def test_state1_takes_no_gps_readings(self):
        base = StationConfig(solar_w=0.0, wind_w=0.0, initial_soc=0.50)
        deployment = Deployment(DeploymentConfig(seed=81, base=base))
        deployment.run_days(3)
        # After the first schedule application there are no gps_reading
        # slots, so at most the pre-decision day produced any.
        assert deployment.base.gps.readings_taken == 0

    def test_probe_jobs_run_even_in_state_zero(self):
        """Table II: probe jobs in every state (winter ice is better)."""
        base = StationConfig(solar_w=0.0, wind_w=0.0, initial_soc=0.30)
        deployment = Deployment(DeploymentConfig(
            seed=82, base=base, probe_lifetimes_days=[10_000.0] * 7))
        deployment.run_days(3)
        assert deployment.base.skipped_comms_days >= 2
        assert deployment.base.readings_collected > 0  # collected, not sent

    def test_state2_single_gps_reading_per_day(self):
        base = StationConfig(solar_w=0.0, wind_w=0.0, initial_soc=0.70)  # ~12.2 V
        deployment = Deployment(DeploymentConfig(seed=83, base=base))
        deployment.run_days(4)
        assert deployment.base.local_state is PowerState.S2
        # Schedule applied end of day 0 -> readings on days 1-3: one each.
        assert 2 <= deployment.base.gps.readings_taken <= 4


class TestCommsFailureDays:
    def test_total_gprs_outage_day_carries_data_over(self):
        base = StationConfig(gprs_outage_probability=1.0,
                             gprs_summer_outage_probability=1.0)
        deployment = Deployment(DeploymentConfig(seed=84, base=base))
        deployment.run_days(2)
        # Nothing reached the server, but the outbox retains everything.
        assert deployment.server.received_bytes(station="base") == 0
        assert len(deployment.base.card.list_files("outbox/")) > 0
        failures = deployment.sim.trace.select(source="base", kind="comms_failed")
        assert len(failures) == 2

    def test_outage_recovery_uploads_backlog(self):
        base = StationConfig(gprs_outage_probability=1.0,
                             gprs_summer_outage_probability=1.0)
        deployment = Deployment(DeploymentConfig(seed=84, base=base))
        deployment.run_days(2)
        deployment.base.modem.outage_probability = 0.0
        deployment.base.modem.summer_outage_probability = 0.0
        deployment.run_days(2)
        # Multiple days' worth arrived once the network returned.
        assert deployment.server.received_bytes(station="base", kind="sensors") > 0
        assert deployment.server.received_bytes(station="base", kind="logs") > 0


class TestScheduleConfig:
    def test_custom_comms_hour(self):
        base = StationConfig(wake_hour=6.0, comms_hour=6.25)
        deployment = Deployment(DeploymentConfig(seed=85, base=base))
        deployment.run_days(1)
        starts = deployment.sim.trace.select(source="base", kind="run_start")
        assert starts
        assert starts[0].time == pytest.approx(6.0 * HOUR + 60.0, abs=120.0)

    def test_reference_fixed_position(self):
        deployment = Deployment(DeploymentConfig(seed=85))
        t = deployment.sim.now + 40 * DAY
        assert deployment.reference.gps.position_fn(t) == 0.0
        assert deployment.base.gps.position_fn(t) > 0.0


class TestWatchdogUptimeAccounting:
    def test_total_on_time_counts_all_sessions(self):
        deployment = Deployment(DeploymentConfig(seed=86))
        deployment.run_days(3)
        gumstix = deployment.base.gumstix
        assert gumstix.power_cycles == 3
        assert gumstix.total_on_time_s > 3 * gumstix.boot_s
        assert gumstix.total_on_time_s < 3 * deployment.config.base.max_runtime_s


class TestAutoUpdate:
    def test_published_release_installs_on_next_session(self):
        from repro.server.deployment import CodeRelease

        deployment = Deployment(DeploymentConfig(seed=87))
        deployment.run_days(1)
        release = CodeRelease("basestation.py", 2, "v2", 50_000)
        deployment.server.publish_release(release)
        deployment.run_days(1)
        assert deployment.base.installed_versions.get("basestation.py") == 2
        assert deployment.reference.installed_versions.get("basestation.py") == 2
        report = deployment.server.last_checksum_report("basestation.py")
        assert report is not None and report[3] == release.md5

    def test_same_version_not_redownloaded(self):
        from repro.server.deployment import CodeRelease

        deployment = Deployment(DeploymentConfig(seed=87))
        deployment.server.publish_release(CodeRelease("basestation.py", 2, "v2", 50_000))
        deployment.run_days(3)
        installs = deployment.sim.trace.select(source="base", kind="code_installed")
        assert len(installs) == 1

    def test_corrupt_download_retries_next_day(self):
        from repro.server.deployment import CodeRelease

        base = StationConfig(code_corruption_probability=1.0)
        deployment = Deployment(DeploymentConfig(seed=87, base=base))
        deployment.server.publish_release(CodeRelease("basestation.py", 2, "v2", 50_000))
        deployment.run_days(3)
        # Every day it tries, fails the checksum, and keeps the old file.
        mismatches = deployment.sim.trace.select(source="base",
                                                 kind="code_checksum_mismatch")
        assert len(mismatches) >= 2
        assert deployment.base.installed_versions.get("basestation.py") is None

    def test_auto_update_disabled(self):
        from repro.server.deployment import CodeRelease

        base = StationConfig(auto_update=False)
        deployment = Deployment(DeploymentConfig(seed=87, base=base))
        deployment.server.publish_release(CodeRelease("basestation.py", 2, "v2", 50_000))
        deployment.run_days(2)
        assert deployment.base.installed_versions.get("basestation.py") is None
