"""Integration tests: the full station daily run (Fig 4 / E3)."""

import pytest

from repro.core import Deployment, DeploymentConfig, PowerState
from repro.core.config import StationConfig, reference_defaults
from repro.sim.simtime import DAY, HOUR


def make_deployment(**overrides) -> Deployment:
    config = DeploymentConfig(seed=7, **overrides)
    return Deployment(config)


@pytest.fixture(scope="class")
def five_day_deployment():
    deployment = make_deployment()
    deployment.run_days(5)
    return deployment


class TestDailyCycle:
    def test_both_stations_run_daily(self, five_day_deployment):
        d = five_day_deployment
        assert d.base.daily_runs == 5
        assert d.reference.daily_runs == 5

    def test_gumstix_duty_cycle_is_small(self, five_day_deployment):
        """The whole point of the platform: the Gumstix runs only a small
        fraction of the day."""
        d = five_day_deployment
        duty = d.base.gumstix.total_on_time_s / (5 * DAY)
        assert duty < 0.10

    def test_runs_never_exceed_watchdog(self, five_day_deployment):
        d = five_day_deployment
        for record in d.sim.trace.select(kind="job_complete"):
            assert record.detail["uptime_s"] <= d.config.base.max_runtime_s + 1.0

    def test_power_states_uploaded_to_server(self, five_day_deployment):
        d = five_day_deployment
        assert d.server.power_states.report_for("base") is not None
        assert d.server.power_states.report_for("reference") is not None

    def test_data_reaches_southampton(self, five_day_deployment):
        d = five_day_deployment
        assert d.server.received_bytes(station="base", kind="gps") > 0
        assert d.server.received_bytes(station="base", kind="probes") > 0
        assert d.server.received_bytes(station="base", kind="sensors") > 0
        assert d.server.received_bytes(station="reference", kind="gps") > 0

    def test_probe_data_collected(self, five_day_deployment):
        d = five_day_deployment
        assert d.base.readings_collected > 500

    def test_gps_readings_follow_state3_schedule(self, five_day_deployment):
        d = five_day_deployment
        # September, healthy battery: state 3 -> ~12 readings/day once the
        # schedule is applied on day 1.
        assert d.base.gps.readings_taken >= 4 * 12

    def test_reference_station_has_no_probe_traffic(self, five_day_deployment):
        d = five_day_deployment
        assert d.server.received_bytes(station="reference", kind="probes") == 0

    def test_run_sequence_order(self, five_day_deployment):
        """Fig 4: probe data, then MSP readings, then state upload, then
        data upload, then override fetch (deployed order)."""
        d = five_day_deployment
        trace = d.sim.trace
        day_start, day_end = 0.0, 1.0 * DAY
        fetch = [r.time for r in trace.select(kind="fetch_done", start=day_start, end=day_end)]
        state_up = [
            r.time
            for r in trace.select(source="server", kind="power_state_upload", end=day_end)
        ]
        override = [
            r.time for r in trace.select(source="server", kind="override_served", end=day_end)
        ]
        sent = [
            r.time
            for r in trace.select(source="base.gprs", kind="sent", end=day_end)
            if r.detail.get("label", "").startswith("outbox/")
        ]
        assert fetch and state_up and override and sent
        assert max(fetch) < min(state_up)
        assert min(state_up) < min(sent)
        assert max(sent) < max(override)


class TestStateDynamics:
    def test_starving_station_descends_states(self):
        """No charging at all: the station descends through the states as
        the battery drains, never climbing back up."""
        from repro.energy.battery import BatteryConfig

        # A small battery compresses the months-long winter descent into a
        # testable couple of weeks; thresholds scale with SoC, not Ah.
        base = StationConfig(
            solar_w=0.0, wind_w=0.0, initial_soc=0.9,
            battery=BatteryConfig(capacity_ah=2.0),
        )
        deployment = make_deployment(base=base)
        deployment.run_days(16)
        states = [s for _t, s in deployment.state_series("base")]
        assert states[0] >= 2
        assert states[-1] <= 1
        assert all(b <= a for a, b in zip(states, states[1:]))  # monotone descent
        assert 2 in states  # passes through the intermediate state

    def test_state0_does_no_comms(self):
        base = StationConfig(solar_w=0.0, wind_w=0.0, initial_soc=0.30)
        deployment = make_deployment(base=base)
        deployment.run_days(10)
        d = deployment
        assert d.base.skipped_comms_days > 0
        # Once in state 0, nothing more reaches the server from base.
        state0_day = next(t for t, s in d.state_series("base") if s == 0)
        later_uploads = [
            u for u in d.server.uploads if u.station == "base" and u.time > state0_day + DAY
        ]
        assert later_uploads == []

    def test_manual_override_holds_station_down(self):
        """The Fig 5 situation: voltage allows state 3 but the server holds
        the station at 2."""
        deployment = make_deployment()
        deployment.set_manual_override(2)
        deployment.run_days(4)
        states = [s for _t, s in deployment.state_series("base")]
        assert all(s <= 2 for s in states)
        assert deployment.base.local_state is PowerState.S3  # battery is fine

    def test_releasing_override_restores_state3(self):
        deployment = make_deployment()
        deployment.set_manual_override(2)
        deployment.run_days(3)
        deployment.set_manual_override(None)
        deployment.run_days(3)
        states = [s for _t, s in deployment.state_series("base")]
        assert states[-1] == 3

    def test_min_rule_couples_the_stations(self):
        """A starving reference station drags the healthy base down."""
        reference = reference_defaults()
        reference.solar_w = 0.0
        reference.mains_w = 0.0
        reference.initial_soc = 0.45
        deployment = make_deployment(reference=reference)
        deployment.run_days(8)
        base_states = [s for _t, s in deployment.state_series("base")]
        ref_states = [s for _t, s in deployment.state_series("reference")]
        assert min(ref_states) <= 1
        # Base follows reference down (with up to a day's lag) despite a
        # healthy battery.
        assert min(base_states) <= 1
        assert deployment.base.local_state is PowerState.S3


class TestBrownoutRecoveryEndToEnd:
    def test_full_exhaustion_then_schedule_reset(self):
        """E11: starve the base station to brown-out, recharge, and watch
        the Section IV recovery bring it back in state 0."""
        base = StationConfig(solar_w=0.0, wind_w=0.0, initial_soc=0.18)
        deployment = make_deployment(base=base)
        deployment.run_days(1)
        # A winter of leakage, compressed: a stuck load flattens the battery.
        deployment.base.bus.add_load("test.leak", 12.0)
        deployment.base.bus.loads.switch_on("test.leak")
        deployment.run_days(11)
        trace = deployment.sim.trace
        assert len(trace.select(source="base.power", kind="brownout")) == 1
        assert len(trace.select(source="base.msp430.rtc", kind="rtc_reset")) == 1

        # Field-style rescue: attach solar retroactively via direct charge.
        deployment.base.bus.battery.soc = 0.5
        deployment.base.bus.sync()
        deployment.run_days(3)
        assert len(trace.select(source="base.power", kind="recovery")) == 1
        # The reboot ran the RTC-untrusted path and recovered the clock.
        assert len(trace.select(source="base", kind="rtc_untrusted")) >= 1
        assert deployment.base.recovery.recoveries >= 1
        assert abs(deployment.base.msp.rtc.error_seconds()) < 1.0
        # Restarted in state 0 (Table II floor) until the next daily cycle.
        applied = [s for _t, s in deployment.state_series("base")]
        assert 0 in applied


class TestSpecialCommands:
    def test_special_executes_and_output_arrives_next_day(self):
        """E13: the 24-hour output delay of the deployed ordering."""
        deployment = make_deployment()
        deployment.run_days(1)  # day 1 cycle done
        deployment.server.stage_special("base", lambda: "df -h output")
        deployment.run_days(2)
        trace = deployment.sim.trace
        executed = trace.select(source="base", kind="special_executed")
        assert len(executed) == 1
        # Output travels in the *next* day's log upload.
        log_uploads = [
            u for u in deployment.server.uploads
            if u.station == "base" and u.kind == "logs" and u.payload["special_outputs"]
        ]
        assert len(log_uploads) == 1
        delay = log_uploads[0].time - executed[0].time
        assert 0.9 * DAY < delay < 1.1 * DAY

    def test_special_before_data_variant(self):
        base = StationConfig(special_before_data=True)
        deployment = make_deployment(base=base)
        deployment.run_days(1)
        deployment.server.stage_special("base", lambda: "ok")
        deployment.run_days(1)
        trace = deployment.sim.trace
        executed = trace.select(source="base", kind="special_executed")
        sent = [
            r.time
            for r in trace.select(source="base.gprs", kind="sent")
            if r.detail.get("label", "").startswith("outbox/")
            and r.time > executed[0].time - 2 * HOUR
        ]
        assert executed
        # With the fix, the special ran before that day's data upload.
        assert any(t > executed[0].time for t in sent)
