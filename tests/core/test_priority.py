"""Tests for data-priority communication (paper §VII future work)."""

import pytest

from repro.core.priority import DataPrioritizer, PriorityEvent, PrioritizerConfig


def reading(probe_id, conductivity=None, pressure=None):
    channels = {}
    if conductivity is not None:
        channels["conductivity_us"] = conductivity
    if pressure is not None:
        channels["pressure_m"] = pressure
    return {"probe_id": probe_id, "channels": channels}


@pytest.fixture
def prioritizer():
    return DataPrioritizer(PrioritizerConfig(baseline_window=8))


class TestMeltOnsetDetection:
    def test_flat_baseline_no_event(self, prioritizer):
        for _day in range(20):
            events = prioritizer.analyse([reading(21, conductivity=0.8)], [21])
            assert events == []

    def test_jump_above_baseline_triggers(self, prioritizer):
        for _ in range(10):
            prioritizer.analyse([reading(21, conductivity=0.8)], [21])
        events = prioritizer.analyse([reading(21, conductivity=6.0)], [21])
        assert any(e.kind == "melt_onset" and e.probe_id == 21 for e in events)

    def test_needs_history_before_triggering(self, prioritizer):
        # First-ever reading can't be compared to anything.
        events = prioritizer.analyse([reading(21, conductivity=50.0)], [21])
        assert all(e.kind != "melt_onset" for e in events)

    def test_slow_ramp_does_not_trigger(self):
        prioritizer = DataPrioritizer(PrioritizerConfig(baseline_window=8,
                                                        conductivity_jump_us=3.0))
        value = 0.8
        for _ in range(60):
            events = prioritizer.analyse([reading(21, conductivity=value)], [21])
            assert all(e.kind != "melt_onset" for e in events)
            value += 0.05  # gentler than the jump threshold per step

    def test_per_probe_baselines(self, prioritizer):
        for _ in range(10):
            prioritizer.analyse(
                [reading(21, conductivity=0.8), reading(24, conductivity=10.0)],
                [21, 24],
            )
        # Probe 24 at 10 is normal *for probe 24*; 10 on probe 21 is a jump.
        events = prioritizer.analyse(
            [reading(21, conductivity=10.0), reading(24, conductivity=10.0)],
            [21, 24],
        )
        kinds = {(e.kind, e.probe_id) for e in events}
        assert ("melt_onset", 21) in kinds
        assert ("melt_onset", 24) not in kinds


class TestPressureAndSilence:
    def test_pressure_surge(self, prioritizer):
        events = prioritizer.analyse([reading(25, pressure=90.0)], [25])
        assert any(e.kind == "pressure_surge" for e in events)

    def test_normal_pressure_quiet(self, prioritizer):
        events = prioritizer.analyse([reading(25, pressure=40.0)], [25])
        assert events == []

    def test_probe_silence_detected_once(self, prioritizer):
        prioritizer.analyse([reading(21, pressure=30.0)], [21, 24])
        events = prioritizer.analyse([reading(21, pressure=30.0)], [21])  # 24 vanished
        assert any(e.kind == "probe_silent" and e.probe_id == 24 for e in events)
        # Not re-reported the next day.
        events = prioritizer.analyse([reading(21, pressure=30.0)], [21])
        assert all(e.kind != "probe_silent" for e in events)


class TestBudget:
    def test_silence_alone_does_not_force_comms(self, prioritizer):
        events = [PriorityEvent("probe_silent", 24, 0.0, "")]
        assert not prioritizer.should_force_comms(events, month=1)

    def test_science_event_forces_comms(self, prioritizer):
        events = [PriorityEvent("melt_onset", 21, 9.0, "")]
        assert prioritizer.should_force_comms(events, month=1)

    def test_monthly_budget_enforced(self, prioritizer):
        events = [PriorityEvent("pressure_surge", 21, 90.0, "")]
        grants = [prioritizer.should_force_comms(events, month=2) for _ in range(6)]
        assert grants == [True, True, True, False, False, False]

    def test_budget_resets_next_month(self, prioritizer):
        events = [PriorityEvent("pressure_surge", 21, 90.0, "")]
        for _ in range(3):
            prioritizer.should_force_comms(events, month=3)
        assert prioritizer.should_force_comms(events, month=4)


class TestEndToEnd:
    def test_state0_station_uploads_priority_event(self):
        """A starving (state 0) station with priority comms enabled still
        reports a pressure surge; without the flag it stays silent."""
        from repro.core import Deployment, DeploymentConfig
        from repro.core.config import StationConfig
        from repro.core.priority import PrioritizerConfig

        def run(enabled):
            base = StationConfig(
                solar_w=0.0, wind_w=0.0, initial_soc=0.30,  # state 0 at once
                data_priority_comms=enabled,
            )
            deployment = Deployment(DeploymentConfig(
                seed=55, base=base, probe_lifetimes_days=[10_000.0] * 7))
            if enabled:
                # Make the surge easy to trigger in September.
                deployment.base.prioritizer.config.pressure_surge_m = 30.0
            deployment.run_days(3)
            return deployment

        silent = run(enabled=False)
        speaking = run(enabled=True)
        assert silent.server.received_bytes(station="base", kind="priority") == 0
        assert speaking.server.received_bytes(station="base", kind="priority") > 0
        assert speaking.base.priority_uploads >= 1
        assert speaking.base.skipped_comms_days >= 1  # it *was* in state 0
        # The upload is tiny: marginal power, minimal spend.
        assert speaking.server.received_bytes(station="base", kind="priority") < 20_000
