"""Tests for the server-mediated state synchronisation (Section III / E10)."""

import pytest

from repro.comms.gprs import GprsModem
from repro.core.power_policy import PowerState
from repro.core.sync import StateSynchronizer
from repro.energy.battery import Battery
from repro.energy.bus import PowerBus
from repro.server.server import SouthamptonServer
from repro.sim import Simulation
from repro.sim.simtime import DAY, HOUR


def make_rig(outage=0.0):
    sim = Simulation(seed=41)
    server = SouthamptonServer(sim)
    bus = PowerBus(sim, Battery(soc=0.95), name="y.power")
    modem = GprsModem(sim, bus, name="y.gprs", outage_probability=outage)
    sync = StateSynchronizer(sim, "base", server, modem)
    return sim, server, modem, sync


def connected(sim, modem):
    proc = sim.process(modem.connect())
    sim.run(until=sim.now + HOUR)
    assert modem.connected


class TestUploadAndFetch:
    def test_upload_reaches_server(self):
        sim, server, modem, sync = make_rig()
        connected(sim, modem)

        def session(sim):
            yield from sync.upload_state(PowerState.S2)

        sim.process(session(sim))
        sim.run(until=sim.now + HOUR)
        assert server.power_states.report_for("base").state == 2

    def test_fetch_applies_min_rule_and_clamps(self):
        sim, server, modem, sync = make_rig()
        connected(sim, modem)
        server.upload_power_state("reference", 1)

        def session(sim):
            result = yield from sync.fetch_override(PowerState.S3)
            return result

        proc = sim.process(session(sim))
        sim.run(until=sim.now + HOUR)
        effective, override = proc.value
        assert override == 1
        assert effective is PowerState.S1

    def test_fetch_failure_falls_back_to_local(self):
        """'If the fetching of the over-ride state from the server fails
        for any reason then the system will just rely on its local state.'"""
        sim, server, modem, sync = make_rig()
        # never connected: send raises LinkDown
        def session(sim):
            result = yield from sync.fetch_override(PowerState.S2)
            return result

        proc = sim.process(session(sim))
        sim.run(until=sim.now + HOUR)
        effective, override = proc.value
        assert effective is PowerState.S2
        assert override is None
        assert sync.override_fetch_failures == 1

    def test_fetch_failure_on_non_linkdown_exception(self):
        """The "never raises" contract covers *any* server-side failure,
        not just LinkDown — a malformed response or a server bug must
        degrade to local state exactly like a dead link."""
        sim, server, modem, sync = make_rig()
        connected(sim, modem)

        def broken(station):
            raise KeyError("malformed override table")

        server.get_override_state = broken

        def session(sim):
            result = yield from sync.fetch_override(PowerState.S2)
            return result

        proc = sim.process(session(sim))
        sim.run(until=sim.now + HOUR)
        effective, override = proc.value
        assert effective is PowerState.S2
        assert override is None
        assert sync.override_fetch_failures == 1
        failures = sim.trace.select(kind="override_fetch_failed")
        assert failures and failures[-1].detail["error"] == "KeyError"

    def test_batched_sync_failure_falls_back_to_local(self):
        """The batched endpoint honours the same never-raises contract."""
        sim, server, modem, sync = make_rig()
        connected(sim, modem)

        def broken(station, state):
            raise RuntimeError("shard crashed mid-request")

        server.sync_session = broken

        def session(sim):
            result = yield from sync.batched_sync(PowerState.S2)
            return result

        proc = sim.process(session(sim))
        sim.run(until=sim.now + HOUR)
        effective, override, special, loads = proc.value
        assert effective is PowerState.S2
        assert override is None and special is None and loads is None
        assert sync.override_fetch_failures == 1

    def test_batched_sync_applies_min_rule(self):
        sim, server, modem, sync = make_rig()
        connected(sim, modem)
        server.upload_power_state("reference", 1)

        def session(sim):
            result = yield from sync.batched_sync(PowerState.S3)
            return result

        proc = sim.process(session(sim))
        sim.run(until=sim.now + HOUR)
        effective, override, special, loads = proc.value
        assert override == 1
        assert effective is PowerState.S1
        assert special is None
        # The server recorded this station's state from the same request.
        assert server.power_states.report_for("base").state == 3

    def test_manual_override_respected_but_floored(self):
        sim, server, modem, sync = make_rig()
        connected(sim, modem)
        server.power_states.set_manual_override(0)  # operator mistake

        def session(sim):
            result = yield from sync.fetch_override(PowerState.S3)
            return result

        proc = sim.process(session(sim))
        sim.run(until=sim.now + HOUR)
        effective, override = proc.value
        assert override == 0
        assert effective is PowerState.S1  # never forced to 0


class TestTwoStationConvergence:
    """The E10 scenario: both stations converge through the server."""

    def run_daily_cycles(self, skew_s, days=3):
        """Simulate the upload/download ordering of two stations whose
        clocks differ by ``skew_s``; upload takes ``upload_s``."""
        sim = Simulation(seed=42)
        server = SouthamptonServer(sim)
        upload_s = 300.0  # "the upload of data is known to take a few minutes"
        states = {"base": 3, "reference": 2}
        history = []

        def station_cycle(sim, name, offset_s):
            yield sim.timeout(DAY / 2 + offset_s)  # first noon + clock error
            while True:
                server.upload_power_state(name, states[name])
                yield sim.timeout(upload_s)  # data upload happens here
                override = server.get_override_state(name)
                effective = min(states[name], max(override, 1))
                history.append((sim.now, name, effective))
                yield sim.timeout(DAY - upload_s)

        sim.process(station_cycle(sim, "base", 0.0))
        sim.process(station_cycle(sim, "reference", skew_s))
        sim.run(until=(days + 1) * DAY)
        return history

    def test_small_skew_converges_same_day(self):
        """Skew below the upload duration: the later station's download sees
        the earlier station's fresh state the same day."""
        history = self.run_daily_cycles(skew_s=60.0)
        day1 = [h for h in history if h[0] < 1.6 * DAY]
        base_day1 = [h for h in day1 if h[1] == "base"]
        # Base (state 3) sees reference's 2 on day one.
        assert base_day1[0][2] == 2

    def test_large_skew_one_day_lag(self):
        """Skew beyond the upload window: 'there will be a one day lag in
        the states being updated' — for the station that runs *first*."""
        history = self.run_daily_cycles(skew_s=900.0)  # ref runs 15 min later
        base_entries = [h for h in history if h[1] == "base"]
        # Base runs before reference has uploaded; day 1 sees no reference
        # state (override = base's own 3), day 2 sees the 2.
        assert base_entries[0][2] == 3
        assert base_entries[1][2] == 2
